"""Runtime checkpoint-buffer measurement and alias soundness regressions."""

import pytest

from repro.analysis import AliasAnalysis
from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.ir import Constant, IRBuilder, MemRef, Module, WORD_BYTES
from repro.runtime import Interpreter
from repro.workloads import build_workload
from helpers import build_counted_loop


class TestRuntimeCheckpointStorage:
    def test_peak_buffer_tracked(self):
        built = build_workload("g721decode")
        report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
        interp = Interpreter(report.module)
        interp.run(built.entry, built.args)
        assert interp.peak_ckpt_words, "no checkpoints were recorded"
        # Table 1's envelope: runtime buffers stay in the tens-of-bytes
        # to low-kilobyte range, orders below architectural schemes.
        peak_bytes = max(interp.peak_ckpt_words.values()) * WORD_BYTES
        assert peak_bytes < 100_000

    def test_idempotent_region_buffers_tiny(self):
        module, _ = build_counted_loop(50)
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        interp = Interpreter(report.module)
        interp.run("main")
        # Only entry register checkpoints: a few words at most.
        for words in interp.peak_ckpt_words.values():
            assert words <= 8

    def test_buffer_resets_per_activation(self):
        # Per-sample state checkpoints accumulate within one activation
        # (the whole loop) but reset across runs of the region.
        built = build_workload("rawdaudio")
        report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
        a = Interpreter(report.module)
        a.run(built.entry, built.args)
        c = Interpreter(report.module)
        c.run(built.entry, built.args)
        assert a.peak_ckpt_words == c.peak_ckpt_words


class TestAliasSoundnessRegressions:
    def test_indirect_constant_index_not_absolute(self):
        """Regression: `p = &arr[4]; store p[0]` must NOT must-alias
        arr[0] — the pointer's base offset is unknown statically."""
        module = Module()
        arr = module.add_global("arr", 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 4)
        store_ref = MemRef(p, Constant(0))
        direct_ref = MemRef(arr, Constant(0))
        b.store(store_ref, 1)
        b.ret(0)
        aa = AliasAnalysis(module)
        k_ind = aa.key("main", store_ref)
        k_dir = aa.key("main", direct_ref)
        assert not aa.must_alias(k_ind, k_dir)
        assert aa.may_alias(k_ind, k_dir)  # same object: may overlap

    def test_indirect_store_does_not_guard_direct_load(self):
        """The unsound pre-fix behaviour: a store through &arr[4] with
        constant index 0 'guarding' a load of arr[0] would wrongly make
        this region idempotent."""
        module = Module()
        arr = module.add_global("arr", 8, init=[9] * 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        from repro.ir import Type

        b.block("entry")
        p = b.addrof(arr, 4)
        b.store(p, 0, 77)        # actually writes arr[4]
        v = b.load(arr, 0)       # NOT guarded: different word
        b.store(arr, 0, b.add(v, 1))  # genuine WAR on arr[0]
        b.ret(v)
        analyzer = IdempotenceAnalyzer(module)
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_points_to_refined_store_checkpointable_at_runtime(self):
        """A store through a tracked pointer resolves its real address
        dynamically when checkpointed, so recovery restores correctly."""
        import copy

        module = Module()
        arr = module.add_global("arr", 8, init=[5] * 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 3)
        v = b.load(arr, 3)
        b.store(p, 0, b.add(v, 1))   # WAR via pointer
        b.ret(b.load(arr, 3))
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["arr"]
        )
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), clone=True
        )
        from repro.runtime import bitflip

        state = {"done": False, "rec": False}

        def hook(interp, event):
            if not state["done"] and event.inst.opcode == "load":
                dest = event.inst.dest
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), 4)
                state["done"] = True
                state["site"] = event.index
            elif state["done"] and not state["rec"] and (
                event.index >= state["site"] + 2
            ):
                state["rec"] = interp.trigger_recovery()

        result = Interpreter(report.module, post_step=hook).run(
            "main", output_objects=["arr"]
        )
        assert state["rec"]
        assert result.output == golden.output
        assert result.value == golden.value
