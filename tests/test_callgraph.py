"""Tests for call-graph construction and SCC detection."""

from repro.analysis import CallGraph, build_call_graph
from repro.frontend import compile_source


def _graph(source):
    return build_call_graph(compile_source(source))


class TestCallGraph:
    def test_simple_chain(self):
        graph = _graph(
            """
            int a(int x) { return x; }
            int b(int x) { return a(x); }
            int main() { return b(1); }
            """
        )
        assert graph.callees["main"] == {"b"}
        assert graph.callees["b"] == {"a"}
        assert graph.callers_of("a") == ["b"]
        order = graph.bottom_up()
        assert order.index("a") < order.index("b") < order.index("main")

    def test_direct_recursion_detected(self):
        graph = _graph(
            """
            int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }
            int main() { return f(3); }
            """
        )
        assert graph.is_recursive("f")
        assert not graph.is_recursive("main")

    def test_mutual_recursion_scc(self):
        graph = _graph(
            """
            int is_odd(int n);
            int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
            int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
            int main() { return is_even(4); }
            """
            .replace("int is_odd(int n);\n", "")  # no prototypes in MC
        ) if False else build_call_graph(_mutual_module())
        assert graph.is_recursive("is_even")
        assert graph.is_recursive("is_odd")
        scc = next(s for s in graph.sccs if "is_even" in s)
        assert set(scc) == {"is_even", "is_odd"}

    def test_external_callees_tracked(self):
        graph = _graph(
            """
            extern sys_write;
            int main() { sys_write(1); return 0; }
            """
        )
        assert graph.calls_external("main")
        assert graph.callees["main"] == set()

    def test_quicksort_example_scc(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "examples", "mc", "quicksort.mc"
        )
        graph = build_call_graph(compile_source(open(path).read()))
        assert graph.is_recursive("qsort_range")
        assert not graph.is_recursive("partition")
        order = graph.bottom_up()
        assert order.index("partition") < order.index("qsort_range")


def _mutual_module():
    """MC has no forward declarations; build mutual recursion in IR."""
    from repro.ir import IRBuilder, Module, VirtualRegister

    module = Module()
    n1 = VirtualRegister("n")
    even = module.add_function("is_even", params=[n1])
    eb = IRBuilder(even)
    eb.block("entry")
    c = eb.cmp("eq", n1, 0)
    eb.br(c, "base", "rec")
    eb.block("base")
    eb.ret(1)
    eb.block("rec")
    eb.ret(eb.call("is_odd", [eb.sub(n1, 1)]))
    n2 = VirtualRegister("n")
    odd = module.add_function("is_odd", params=[n2])
    ob = IRBuilder(odd)
    ob.block("entry")
    c2 = ob.cmp("eq", n2, 0)
    ob.br(c2, "base", "rec")
    ob.block("base")
    ob.ret(0)
    ob.block("rec")
    ob.ret(ob.call("is_even", [ob.sub(n2, 1)]))
    main = module.add_function("main")
    mb = IRBuilder(main)
    mb.block("entry")
    mb.ret(mb.call("is_even", [4]))
    return module
