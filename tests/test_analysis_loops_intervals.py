"""Tests for natural-loop discovery and interval partitioning."""

from repro.analysis import CFGView, IntervalHierarchy, LoopForest, partition_into_intervals
from repro.ir import IRBuilder, Module
from helpers import build_counted_loop, build_diamond, build_figure4_region, build_nested_loops


class TestLoops:
    def test_simple_loop_found(self):
        module, _ = build_counted_loop()
        forest = LoopForest(CFGView(module.function("main")))
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.header == "header"
        assert loop.blocks == {"header", "body"}
        assert loop.latches == {"body"}
        assert not forest.irreducible

    def test_acyclic_has_no_loops(self):
        module, _ = build_diamond()
        forest = LoopForest(CFGView(module.function("main")))
        assert len(forest) == 0

    def test_nested_loops_nesting(self):
        module, _ = build_nested_loops()
        forest = LoopForest(CFGView(module.function("main")))
        assert len(forest) == 2
        inner = forest.loop_with_header("inner_header")
        outer = forest.loop_with_header("outer_header")
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.depth == 2 and outer.depth == 1
        assert inner.blocks < outer.blocks

    def test_inner_to_outer_ordering(self):
        module, _ = build_nested_loops()
        forest = LoopForest(CFGView(module.function("main")))
        ordered = forest.inner_to_outer()
        assert ordered[0].header == "inner_header"
        assert ordered[1].header == "outer_header"

    def test_exiting_and_exit_blocks(self):
        module, _ = build_counted_loop()
        cfg = CFGView(module.function("main"))
        loop = LoopForest(cfg).loops[0]
        assert loop.exiting_blocks(cfg) == ["header"]
        assert loop.exit_blocks(cfg) == ["exit"]

    def test_innermost_loop_of(self):
        module, _ = build_nested_loops()
        forest = LoopForest(CFGView(module.function("main")))
        assert forest.innermost_loop_of("inner_body").header == "inner_header"
        assert forest.innermost_loop_of("outer_latch").header == "outer_header"
        assert forest.innermost_loop_of("entry") is None

    def test_irreducible_graph_detected(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.br(1, "a", "b")
        b.block("a")
        b.br(1, "b", "exit")
        b.block("b")
        b.br(1, "a", "exit")
        b.block("exit")
        b.ret(0)
        forest = LoopForest(CFGView(func))
        assert forest.irreducible

    def test_self_loop(self):
        module = Module()
        arr = module.add_global("arr", 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, i)
        b.jmp("spin")
        b.block("spin")
        b.store(arr, i, i)
        b.add(i, 1, i)
        c = b.cmp("slt", i, 8)
        b.br(c, "spin", "exit")
        b.block("exit")
        b.ret(0)
        forest = LoopForest(CFGView(func))
        assert len(forest) == 1
        assert forest.loops[0].blocks == {"spin"}
        assert forest.loops[0].latches == {"spin"}


class TestIntervalPartitioning:
    def test_diamond_single_interval(self):
        module, _ = build_diamond()
        cfg = CFGView(module.function("main"))
        raw = partition_into_intervals(cfg.succs, cfg.preds, cfg.entry)
        assert len(raw) == 1
        assert raw[0][0] == "entry"
        assert set(raw[0]) == set(cfg.labels)

    def test_loop_interval_structure(self):
        module, _ = build_counted_loop()
        cfg = CFGView(module.function("main"))
        raw = partition_into_intervals(cfg.succs, cfg.preds, cfg.entry)
        headers = [iv[0] for iv in raw]
        assert "entry" in headers and "header" in headers
        by_header = {iv[0]: set(iv) for iv in raw}
        # The loop interval contains the loop body and the dangling exit.
        assert by_header["header"] >= {"header", "body", "exit"}

    def test_intervals_are_single_entry(self):
        module, _ = build_figure4_region()
        cfg = CFGView(module.function("main"))
        raw = partition_into_intervals(cfg.succs, cfg.preds, cfg.entry)
        for members in raw:
            header, member_set = members[0], set(members)
            for node in members:
                if node == header:
                    continue
                for pred in cfg.preds[node]:
                    assert pred in member_set, (
                        f"{node} entered from outside interval {header}"
                    )

    def test_every_node_in_exactly_one_interval(self):
        module, _ = build_nested_loops()
        cfg = CFGView(module.function("main"))
        raw = partition_into_intervals(cfg.succs, cfg.preds, cfg.entry)
        seen = [n for iv in raw for n in iv]
        assert sorted(seen) == sorted(cfg.labels)


class TestIntervalHierarchy:
    def test_hierarchy_converges_to_single_interval(self):
        module, _ = build_nested_loops()
        hierarchy = IntervalHierarchy(CFGView(module.function("main")))
        assert hierarchy.depth >= 1
        top = hierarchy.levels[-1]
        # Reducible graphs collapse to one interval at the limit.
        assert len(top) == 1
        assert top[0].block_set == set(CFGView(module.function("main")).labels)

    def test_level_zero_intervals_cover_cfg(self):
        module, _ = build_figure4_region()
        cfg = CFGView(module.function("main"))
        hierarchy = IntervalHierarchy(cfg)
        covered = set()
        for iv in hierarchy.levels[0]:
            covered |= iv.block_set
        assert covered == set(cfg.labels)

    def test_interval_headers_are_blocks(self):
        module, _ = build_counted_loop()
        hierarchy = IntervalHierarchy(CFGView(module.function("main")))
        for iv in hierarchy.all_intervals():
            assert iv.header_block in iv.block_set

    def test_intervals_at_clamps(self):
        module, _ = build_diamond()
        hierarchy = IntervalHierarchy(CFGView(module.function("main")))
        assert hierarchy.intervals_at(99) == hierarchy.levels[-1]
        assert hierarchy.intervals_at(1) == hierarchy.levels[0]

    def test_nested_loop_levels_grow(self):
        module, _ = build_nested_loops()
        hierarchy = IntervalHierarchy(CFGView(module.function("main")))
        sizes = [max(len(iv.block_set) for iv in level) for level in hierarchy.levels]
        assert sizes == sorted(sizes)  # coarser regions at higher levels
