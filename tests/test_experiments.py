"""Tests for the experiment harnesses (run on a small workload subset)."""

import pytest

from repro.encore import EncoreConfig
from repro.experiments import (
    EXPERIMENTS,
    fig1_traces,
    fig5_idempotence,
    fig6_breakdown,
    fig7_overheads,
    fig8_coverage,
    table1,
)
from repro.experiments.harness import PipelineCache, config_key
from repro.experiments.reporting import Table, fmt_num, fmt_pct, suite_order_with_means

SUBSET = ["164.gzip", "172.mgrid", "rawdaudio"]


class TestReporting:
    def test_fmt_helpers(self):
        assert fmt_pct(0.1234) == "12.3%"
        assert fmt_pct(1.0, 2) == "100.00%"
        assert fmt_num(3.14159, 2) == "3.14"

    def test_table_rendering(self):
        table = Table("Title", ["A", "B"])
        table.add_row("x", 1)
        table.add_rule()
        table.add_row("longer-label", 22)
        text = table.render()
        assert "Title" in text
        assert "longer-label" in text
        lines = text.splitlines()
        assert any(set(line) == {"-"} for line in lines)

    def test_suite_order_with_means(self):
        per = {
            "164.gzip": {"m": 0.2},
            "172.mgrid": {"m": 0.4},
            "cjpeg": {"m": 0.6},
        }
        rows = suite_order_with_means(per, ["m"])
        labels = [r[0] for r in rows]
        assert labels.index("164.gzip") < labels.index("172.mgrid") < labels.index("cjpeg")
        assert "SPEC2K-INT Mean" in labels
        assert labels[-1] == "Overall Mean"
        overall = rows[-1][1]["m"]
        assert overall == pytest.approx((0.2 + 0.4 + 0.6) / 3)


class TestHarness:
    def test_cache_memoizes(self):
        cache = PipelineCache()
        from repro.workloads import get_workload

        spec = get_workload("rawdaudio")
        a = cache.run(spec, EncoreConfig())
        c = cache.run(spec, EncoreConfig())
        assert a is c

    def test_config_key_distinguishes(self):
        assert config_key(EncoreConfig()) != config_key(EncoreConfig(pmin=0.1))
        assert config_key(EncoreConfig()) == config_key(EncoreConfig())

    def test_run_all_subset(self):
        cache = PipelineCache()
        results = cache.run_all(EncoreConfig(), SUBSET)
        assert [r.spec.name for r in results] == SUBSET


class TestExperimentModules:
    def test_fig1_runs_on_subset(self):
        data = fig1_traces.run(SUBSET, window_sizes=(10, 100), samples_per_size=20)
        assert set(data.fully) == {10, 100}
        text = fig1_traces.render(data)
        assert "Figure 1" in text

    def test_table1_runs_on_subset(self):
        data = table1.run(SUBSET)
        assert data.interval_mean > 0
        assert "Encore (measured)" in table1.render(data)

    def test_fig5_runs_on_subset(self):
        data = fig5_idempotence.run(SUBSET, pmin_values=(None, 0.0))
        for name in SUBSET:
            total = sum(data.fractions[name][0.0].values())
            assert total == pytest.approx(1.0)
        assert "Figure 5" in fig5_idempotence.render(data)

    def test_fig6_runs_on_subset(self):
        data = fig6_breakdown.run(SUBSET)
        assert set(data.breakdown) == set(SUBSET)
        assert "Figure 6" in fig6_breakdown.render(data)

    def test_fig7_runs_on_subset(self):
        data = fig7_overheads.run(SUBSET, measure=False)
        for name in SUBSET:
            assert 0.0 <= data.overheads[name]["static"] <= 0.30
            assert data.storage[name]["total"] >= 0.0
        assert "Figure 7a" in fig7_overheads.render(data)

    def test_fig8_runs_on_subset(self):
        data = fig8_coverage.run(SUBSET, latencies=(100, 10))
        for name in SUBSET:
            assert data.coverage[name][10]["total"] >= data.coverage[name][100]["total"] - 1e-9
        assert "Figure 8" in fig8_coverage.render(data)

    def test_registry_lists_all_experiments(self):
        assert set(EXPERIMENTS) == {"fig1", "table1", "fig5", "fig6", "fig7", "fig8"}

    def test_cli_help_and_dispatch(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--help"]) == 0
        assert main(["nonsense"]) == 2
        assert main(["table1", "rawdaudio"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestCSVExport:
    def test_every_experiment_exports_csv(self):
        import csv as csv_module
        import io

        modules = {
            "fig1": lambda: fig1_traces.run(
                SUBSET, window_sizes=(10, 100), samples_per_size=10
            ),
            "table1": lambda: table1.run(SUBSET),
            "fig5": lambda: fig5_idempotence.run(SUBSET, pmin_values=(0.0,)),
            "fig6": lambda: fig6_breakdown.run(SUBSET),
            "fig7": lambda: fig7_overheads.run(SUBSET, measure=False),
            "fig8": lambda: fig8_coverage.run(SUBSET, latencies=(100,)),
        }
        for key, runner in modules.items():
            data = runner()
            text = EXPERIMENTS[key].to_csv(data)
            rows = list(csv_module.reader(io.StringIO(text)))
            assert len(rows) >= 2, key  # header + data
            width = len(rows[0])
            assert all(len(r) == width for r in rows), key

    def test_csv_escaping(self):
        from repro.experiments.reporting import csv_escape, rows_to_csv

        assert csv_escape("plain") == "plain"
        assert csv_escape('has,comma') == '"has,comma"'
        assert csv_escape('has"quote') == '"has""quote"'
        text = rows_to_csv(["a", "b"], [(1, "x,y")])
        assert text == 'a,b\n1,"x,y"\n'

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "--csv", str(tmp_path), "rawdaudio"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "table1.csv").exists()
