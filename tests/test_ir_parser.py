"""Round-trip tests for the textual IR parser."""

import pytest

from repro.ir import ParseError, module_to_text, parse_module, verify_module
from repro.runtime import Interpreter
from helpers import (
    build_call_program,
    build_counted_loop,
    build_diamond,
    build_figure4_region,
    build_linear_sum,
    build_nested_loops,
)


def roundtrip(module):
    text = module_to_text(module)
    reparsed = parse_module(text)
    assert module_to_text(reparsed) == text
    verify_module(reparsed)
    return reparsed


class TestRoundTrip:
    def test_fixtures_roundtrip_and_run_identically(self):
        cases = [
            (build_linear_sum, (), ("out",)),
            (build_diamond, (), ("out",)),
            (build_counted_loop, (), ("arr",)),
            (build_nested_loops, (), ("mat",)),
            (build_call_program, (), ("out",)),
            (build_figure4_region, (5,), ("mem",)),
        ]
        for build, args, outputs in cases:
            module = build()[0]
            reparsed = roundtrip(module)
            original = Interpreter(module).run(
                "main", args, output_objects=outputs
            )
            again = Interpreter(reparsed).run(
                "main", args, output_objects=outputs
            )
            assert again.value == original.value, build.__name__
            assert again.output == original.output, build.__name__
            assert again.events == original.events, build.__name__

    def test_workloads_roundtrip(self):
        from repro.workloads import build_workload

        for name in ("164.gzip", "172.mgrid", "g721decode", "175.vpr"):
            built = build_workload(name)
            reparsed = roundtrip(built.module)
            original = Interpreter(built.module).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            again = Interpreter(reparsed).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            assert again.output == original.output, name

    def test_every_shipped_workload_roundtrips(self):
        """Printer ↔ parser is the identity over the whole corpus.

        Property: for every registered workload (spec_int, spec_fp,
        mediabench), print → parse → print is a fixpoint, the reparsed
        module verifies, and it executes identically to the original.
        """
        from repro.workloads import all_workloads

        for spec in all_workloads():
            built = spec.build()
            reparsed = roundtrip(built.module)
            original = Interpreter(built.module).run(
                built.entry, built.args,
                output_objects=built.output_objects,
            )
            again = Interpreter(reparsed).run(
                built.entry, built.args,
                output_objects=built.output_objects,
            )
            assert again.value == original.value, spec.name
            assert again.output == original.output, spec.name
            assert again.events == original.events, spec.name

    def test_every_shipped_workload_roundtrips_instrumented(self):
        from repro.encore import EncoreConfig, compile_for_encore
        from repro.workloads import all_workloads

        config = EncoreConfig()
        for spec in all_workloads():
            built = spec.build()
            report = compile_for_encore(built.module, config, clone=True)
            roundtrip(report.module)

    def test_every_threaded_workload_roundtrips(self):
        """spawn/join survive the printer ↔ parser round trip.

        Same property as the single-threaded corpus test, but over the
        multithreaded suite and executed through the full scheduler:
        the reparsed module must reproduce the value, outputs, event
        count *and* every scheduler switch decision.
        """
        from repro.runtime import make_interpreter
        from repro.workloads import threaded_workloads

        for spec in threaded_workloads():
            built = spec.build()
            text = module_to_text(built.module)
            assert spec.name == "serial_stencil" or "spawn" in text
            reparsed = roundtrip(built.module)

            def run(module):
                interp = make_interpreter(module)
                result = interp.run(
                    built.entry, built.args,
                    output_objects=built.output_objects,
                )
                sched = interp.scheduler
                switches = None if sched is None else tuple(sched.switch_log)
                return result, switches

            original, switches = run(built.module)
            again, switches_again = run(reparsed)
            assert again.value == original.value, spec.name
            assert again.output == original.output, spec.name
            assert again.events == original.events, spec.name
            assert switches_again == switches, spec.name

    def test_every_threaded_workload_roundtrips_instrumented(self):
        from repro.encore import EncoreConfig, compile_for_encore
        from repro.workloads import threaded_workloads

        config = EncoreConfig()
        for spec in threaded_workloads():
            built = spec.build()
            report = compile_for_encore(
                built.module, config, clone=True,
                function=built.entry, args=built.args,
            )
            roundtrip(report.module)

    def test_comment_lines_skipped(self):
        """``#`` lines (example/corpus provenance headers) parse away."""
        text = (
            "# provenance: checked-in example\n"
            "module commented\n"
            "# mid-file comment\n"
            "func main() {\n"
            "entry:\n"
            "  # indented comment\n"
            "  %x = mov 5\n"
            "  ret %x\n"
            "}\n"
        )
        module = parse_module(text)
        assert Interpreter(module).run("main").value == 5

    def test_empty_initializer_roundtrips(self):
        """Regression: ``= []`` used to reparse as *no* initializer."""
        from repro.ir import Module

        module = Module("empties")
        module.add_global("empty", 2, init=[])
        module.add_global("bare", 2)
        reparsed = roundtrip(module)
        assert reparsed.globals["empty"].init == []
        assert reparsed.globals["bare"].init is None

    def test_instrumented_module_roundtrips(self):
        from repro.encore import EncoreConfig, compile_for_encore

        module, _ = build_counted_loop(10)
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        reparsed = roundtrip(report.module)
        a = Interpreter(report.module).run("main", output_objects=["arr"])
        c = Interpreter(reparsed).run("main", output_objects=["arr"])
        assert a.output == c.output
        assert c.instrumentation_cost == a.instrumentation_cost

    def test_initializers_preserved(self):
        from repro.ir import IRBuilder, Module

        module = Module("init")
        module.add_global("data", 4, init=[1, -2, 3])
        module.add_global("fdata", 2, init=[0.5, -1.25])
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        x = b.load(module.globals["data"], 1)
        y = b.load(module.globals["fdata"], 1)
        b.ret(x)
        reparsed = roundtrip(module)
        assert reparsed.globals["data"].init == [1, -2, 3]
        assert reparsed.globals["fdata"].init == [0.5, -1.25]

    def test_stack_objects_preserved(self):
        from repro.ir import IRBuilder, Module

        module = Module("stacky")
        func = module.add_function("main")
        buf = func.add_stack_object("buf", 3, init=[9])
        b = IRBuilder(func)
        b.block("entry")
        v = b.load(buf, 0)
        b.ret(v)
        reparsed = roundtrip(module)
        obj = reparsed.function("main").stack_objects["buf"]
        assert obj.kind == "stack" and obj.size == 3 and obj.init == [9]

    def test_pointer_type_inference(self):
        from repro.ir import IRBuilder, Module, Type

        module = Module("ptrs")
        arr = module.add_global("arr", 4)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 1)
        b.store(p, 0, 42)
        q = b.alloc(2)
        b.store(q, 1, 7)
        v = b.load(arr, 1)
        b.ret(v)
        reparsed = roundtrip(module)
        assert Interpreter(reparsed).run("main").value == 42


class TestParseErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_module("")

    def test_missing_module_header(self):
        with pytest.raises(ParseError, match="module header"):
            parse_module("func f() {\nentry:\n  ret\n}")

    def test_unknown_instruction(self):
        text = "module m\n\nfunc main() {\nentry:\n  %x = frobnicate 1\n  ret\n}"
        with pytest.raises(ParseError, match="unknown instruction"):
            parse_module(text)

    def test_unknown_memory_object(self):
        text = "module m\n\nfunc main() {\nentry:\n  %x = load @ghost[0]\n  ret\n}"
        with pytest.raises(ParseError, match="unknown memory object"):
            parse_module(text)

    def test_instruction_outside_block(self):
        text = "module m\n\nfunc main() {\n  %x = mov 1\n}"
        with pytest.raises(ParseError, match="outside a block"):
            parse_module(text)

    def test_bad_operand(self):
        text = "module m\n\nfunc main() {\nentry:\n  %x = mov banana\n  ret\n}"
        with pytest.raises(ParseError, match="bad operand"):
            parse_module(text)
