"""Tests for the incremental injection subsystem.

Covers the three layers end to end: section fingerprints (stable across
print/parse round-trips and ``deepcopy``, sensitive to any instruction
change), bit-level pruning (statically-dead bits are provably
outcome-free, and the analytic classifier matches executed ground
truth), and compositional campaigns (a no-change compose reproduces the
full campaign's aggregates exactly, is byte-deterministic across
``--jobs``, and an edit re-injects only the edited function's
sections) — plus the ``--incremental``/``--by-section`` CLI surface.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from helpers import build_counted_loop, build_two_function_workload
from repro.cli import main
from repro.encore import compile_for_encore
from repro.incremental import (
    DEAD_SECTION,
    IncrementalError,
    SectionStore,
    capture_attribution,
    classify_dead_site,
    dead_sites,
    module_dead_masks,
    module_fingerprints,
    run_incremental_campaign,
    section_function,
)
from repro.ir import module_to_text, parse_module
from repro.runtime import DetectionModel, run_campaign
from repro.runtime.journal import CampaignJournal, load_journal
from repro.runtime.sfi import FaultPlan, run_planned_trial


@pytest.fixture(scope="module")
def twofn():
    module, _ = build_two_function_workload()
    return compile_for_encore(module, clone=True).module


@pytest.fixture(scope="module")
def twofn_edited():
    module, _ = build_two_function_workload(g_mult=5)
    return compile_for_encore(module, clone=True).module


class TestFingerprints:
    def test_round_trip_identical(self, twofn):
        fps = module_fingerprints(twofn)
        reparsed = parse_module(module_to_text(twofn))
        assert module_fingerprints(reparsed) == fps

    def test_deepcopy_identical(self, twofn):
        assert module_fingerprints(copy.deepcopy(twofn)) == \
            module_fingerprints(twofn)

    def test_edit_changes_only_edited_function(self, twofn, twofn_edited):
        before = module_fingerprints(twofn)
        after = module_fingerprints(twofn_edited)
        assert set(before) == set(after)
        assert before["g"] != after["g"]
        assert before["f"] == after["f"]
        assert before["main"] == after["main"]

    def test_any_instruction_change_changes_fingerprint(self):
        module, _ = build_counted_loop(8)
        before = module_fingerprints(module)["main"]
        edited, _ = build_counted_loop(9)
        assert module_fingerprints(edited)["main"] != before


class TestBitmask:
    def test_truncation_kills_high_bits(self, twofn):
        masks = module_dead_masks(twofn, output_objects=("arr",))
        # g's products feed only ``and 255``: bits 8..31 of the mul
        # dest are provably dead at the campaign width.
        g_masks = [m for (f, _b, _i), m in masks.items() if f == "g"]
        assert any(mask & 0xFFFFFF00 == 0xFFFFFF00 for mask in g_masks)

    def test_dead_bits_are_outcome_free(self, twofn):
        """Ground truth: executing a trial on a statically-masked bit
        produces exactly the outcome the analytic classifier predicts."""
        profile = capture_attribution(twofn, output_objects=("arr",))
        masks = module_dead_masks(twofn, output_objects=("arr",))
        pairs = dead_sites(profile, masks, limit=10)
        assert pairs, "workload should expose provably-dead bits"
        for event, bit in pairs:
            for latency in (None, 0, 5):
                plan = FaultPlan(
                    trial_index=0, sites=(event,), bits=(bit,),
                    latencies=(latency,),
                )
                trial = run_planned_trial(
                    twofn, profile.golden, plan, output_objects=("arr",),
                )
                assert trial.outcome == classify_dead_site(
                    event, latency, profile
                ), (event, bit, latency)


class TestCompose:
    DETECTOR = DetectionModel(dmax=20)

    def _run(self, module, store, trials=120, **kwargs):
        return run_incremental_campaign(
            module, store, output_objects=("arr",),
            detector=self.DETECTOR, trials=trials, seed=3, **kwargs,
        )

    def test_no_change_compose_is_exact(self, twofn, tmp_path):
        store = SectionStore.open(str(tmp_path / "s.json"))
        full = self._run(twofn, store)
        composed = self._run(twofn, store)
        assert composed.executed_trials == 0
        assert composed.composed_fraction == 1.0
        for outcome in set(t.outcome for t in full.trials):
            assert composed.fraction(outcome) == pytest.approx(
                full.fraction(outcome), abs=1e-12
            )
        assert composed.covered_fraction == pytest.approx(
            full.covered_fraction, abs=1e-12
        )

    def test_edit_reinjects_only_edited_function(
        self, twofn, twofn_edited, tmp_path
    ):
        store = SectionStore.open(str(tmp_path / "s.json"))
        full = self._run(twofn, store)
        incremental = self._run(twofn_edited, store)
        reinjected = [
            section
            for section, status in incremental.section_status.items()
            if status in ("reinjected", "analytic")
        ]
        assert reinjected, "the edit must invalidate g's sections"
        for section in reinjected:
            if section == DEAD_SECTION:
                continue  # keyed by module fingerprint: any edit hits it
            assert section_function(section) == "g"
        assert 0.0 < incremental.composed_fraction < 1.0
        assert incremental.executed_trials < len(full.trials) / 2
        # The composed estimate stays near the full campaign's.
        estimate, half = incremental.coverage_interval()
        assert abs(estimate - full.covered_fraction) < max(2 * half, 0.1)

    def test_jobs_do_not_change_results(self, twofn, twofn_edited, tmp_path):
        runs = []
        for jobs in (1, 2):
            store = SectionStore.open(str(tmp_path / f"s{jobs}.json"))
            self._run(twofn, store, jobs=jobs)
            runs.append(self._run(twofn_edited, store, jobs=jobs))
        first, second = (
            [dataclasses.asdict(t) for t in run.trials] for run in runs
        )
        assert first == second

    def test_store_refuses_different_campaign(self, twofn, tmp_path):
        store = SectionStore.open(str(tmp_path / "s.json"))
        self._run(twofn, store)
        with pytest.raises(IncrementalError):
            run_incremental_campaign(
                twofn, store, output_objects=("arr",),
                detector=self.DETECTOR, trials=120, seed=4,
            )

    def test_trials_carry_section_attribution(self, twofn, tmp_path):
        store = SectionStore.open(str(tmp_path / "s.json"))
        full = self._run(twofn, store, trials=40)
        assert all(t.section for t in full.trials)
        sections = set(t.section for t in full.trials)
        assert any(s.startswith("f@") for s in sections)

    def test_plain_campaign_unchanged_by_section_field(self, twofn):
        """The ``section`` field defaults to None and plain campaigns
        journal byte-identically to the pre-incremental format."""
        campaign = run_campaign(
            twofn, output_objects=("arr",), detector=self.DETECTOR,
            trials=10, seed=3,
        )
        assert all(t.section is None for t in campaign.trials)

    def test_journal_round_trips_section(self, twofn, tmp_path):
        store = SectionStore.open(str(tmp_path / "s.json"))
        path = str(tmp_path / "journal.jsonl")
        journal = CampaignJournal(path)
        journal.write_header({"seed": 3, "incremental": {"mode": "build"}})
        full = self._run(twofn, store, trials=20, on_result=journal.record)
        journal.close()
        metadata, completed = load_journal(path)
        assert metadata["incremental"] == {"mode": "build"}
        assert len(completed) == 20
        for index, trial in completed.items():
            assert trial.section == full.trials[index].section


class TestIncrementalCli:
    @pytest.fixture
    def twofn_ir(self, tmp_path):
        module, _ = build_two_function_workload()
        path = tmp_path / "twofn.ir"
        path.write_text(module_to_text(module) + "\n")
        return path

    def test_inject_incremental_build_then_compose(
        self, twofn_ir, tmp_path, capsys
    ):
        store = str(tmp_path / "store.json")
        argv = ["inject", str(twofn_ir), "--incremental", store,
                "--trials", "40", "--outputs", "arr", "--seed", "3"]
        assert main(argv) == 0
        build_out = capsys.readouterr().out
        assert "coverage estimate" in build_out
        assert "sections" in build_out
        assert main(argv) == 0
        compose_out = capsys.readouterr().out
        assert "0 trials executed" in compose_out

    def test_inject_incremental_by_section(self, twofn_ir, tmp_path, capsys):
        store = str(tmp_path / "store.json")
        assert main(["inject", str(twofn_ir), "--incremental", store,
                     "--trials", "40", "--outputs", "arr",
                     "--by-section"]) == 0
        out = capsys.readouterr().out
        assert "section" in out and "status" in out
        assert "f@" in out

    def test_inject_incremental_rejects_multifault(
        self, twofn_ir, tmp_path, capsys
    ):
        assert main(["inject", str(twofn_ir), "--incremental",
                     str(tmp_path / "s.json"), "--faults-per-trial",
                     "2"]) == 2
        assert "incremental" in capsys.readouterr().err

    def test_plain_inject_by_section(self, twofn_ir, capsys):
        assert main(["inject", str(twofn_ir), "--trials", "20",
                     "--outputs", "arr", "--by-section"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL covered" in out
        assert "executed" in out and "f@" in out

    def test_status_store(self, twofn_ir, tmp_path, capsys):
        store = str(tmp_path / "store.json")
        main(["inject", str(twofn_ir), "--incremental", store,
              "--trials", "40", "--outputs", "arr"])
        capsys.readouterr()
        assert main(["status", "--store", store, "--by-section"]) == 0
        out = capsys.readouterr().out
        assert "incremental store" in out
        assert "basis trials: 40" in out
        assert "f@" in out

    def test_status_store_missing(self, tmp_path, capsys):
        assert main(["status", "--store",
                     str(tmp_path / "missing.json")]) == 1
        assert "no incremental store" in capsys.readouterr().err
