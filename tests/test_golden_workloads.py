"""Golden-output regression for the workload suite.

The experiment numbers in EXPERIMENTS.md are only comparable across
sessions if the workloads themselves are frozen; this test pins every
benchmark's return value, dynamic length, and an output digest.  If a
workload is intentionally changed, regenerate the goldens (see the
module docstring of the JSON-producing snippet in the repo history) and
re-baseline EXPERIMENTS.md.
"""

import json
import os

import pytest

from repro.runtime import Interpreter
from repro.workloads import all_workloads

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_workloads.json")

with open(GOLDEN_PATH) as _handle:
    GOLDENS = json.load(_handle)


def _digest(output):
    digest = 0
    for name in sorted(output):
        for v in output[name]:
            word = int(v * 1024) if isinstance(v, float) else int(v)
            digest = (digest * 1000003 + (word & 0xFFFFFFFF)) % (2**61 - 1)
    return digest


def test_golden_file_covers_all_workloads():
    assert set(GOLDENS) == {spec.name for spec in all_workloads()}


@pytest.mark.parametrize(
    "name", sorted(GOLDENS), ids=sorted(GOLDENS)
)
def test_workload_matches_golden(name):
    spec = next(s for s in all_workloads() if s.name == name)
    built = spec.build()
    result = Interpreter(built.module).run(
        built.entry, built.args, output_objects=built.output_objects
    )
    golden = GOLDENS[name]
    value = result.value if isinstance(result.value, int) else round(result.value, 6)
    assert value == golden["value"], "return value drifted"
    assert result.events == golden["events"], "dynamic length drifted"
    assert _digest(result.output) == golden["output_digest"], "output drifted"
