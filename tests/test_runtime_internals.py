"""Unit tests for runtime internals: memory model, coverage model math,
profiling counters, and interpreter edge cases."""

import pytest

from repro.encore import RegionStatus, alpha, full_system_coverage, region_coverage
from repro.encore.coverage_model import CoverageBreakdown
from repro.encore.regions import Region
from repro.ir import IRBuilder, MemoryObject, Module, Type, VirtualRegister
from repro.profiling import ProfileData, profile_and_result, profile_module
from repro.runtime import Interpreter, MachineMemory, MemoryError_, Pointer, Trap
from helpers import build_call_program, build_counted_loop, build_diamond


class TestMachineMemory:
    def test_materialize_and_access(self):
        memory = MachineMemory()
        obj = MemoryObject("buf", 4, init=[1, 2])
        memory.materialize(obj)
        assert memory.read("buf", 0) == 1
        assert memory.read("buf", 3) == 0
        memory.write("buf", 3, 9)
        assert memory.read("buf", 3) == 9

    def test_bounds_checks(self):
        memory = MachineMemory()
        memory.materialize(MemoryObject("buf", 2))
        with pytest.raises(MemoryError_):
            memory.read("buf", 2)
        with pytest.raises(MemoryError_):
            memory.write("buf", -1, 0)

    def test_release_and_dead_access(self):
        memory = MachineMemory()
        memory.materialize(MemoryObject("buf", 2))
        memory.release("buf")
        assert not memory.exists("buf")
        with pytest.raises(MemoryError_):
            memory.read("buf", 0)

    def test_heap_allocation_unique_names(self):
        memory = MachineMemory()
        a = memory.allocate_heap(4, "site")
        c = memory.allocate_heap(4, "site")
        assert a != c
        with pytest.raises(MemoryError_):
            memory.allocate_heap(0, "site")

    def test_snapshot_skips_missing(self):
        memory = MachineMemory()
        memory.materialize(MemoryObject("a", 1, init=[5]))
        snap = memory.snapshot(["a", "ghost"])
        assert snap == {"a": [5]}

    def test_pointer_value(self):
        p = Pointer("obj", 3)
        assert p.advanced(2) == Pointer("obj", 5)
        assert str(p) == "&obj+3"


class TestCoverageModelPieces:
    def _region(self, dyn, entries, status, selected=True):
        region = Region(
            id=0, func="f", header="h", blocks=frozenset({"h"}), level=1
        )
        region.dyn_instructions = dyn
        region.entries = entries
        region.selected = selected

        class _FakeIdem:
            pass

        fake = _FakeIdem()
        fake.status = status
        fake.checkpoint_sites = []
        fake.checkpoint_stores = []
        fake.checkpointable = True
        region.idem = fake
        return region

    def test_region_coverage_partition(self):
        regions = [
            self._region(600, 1, RegionStatus.IDEMPOTENT),
            self._region(300, 1, RegionStatus.NON_IDEMPOTENT),
        ]
        breakdown = region_coverage(regions, 1000, dmax=0)
        # dmax=0: alpha == 1, so fractions are exact.
        assert breakdown.recoverable_idempotent == pytest.approx(0.6)
        assert breakdown.recoverable_checkpointed == pytest.approx(0.3)
        assert breakdown.not_recoverable == pytest.approx(0.1)

    def test_unselected_regions_do_not_count(self):
        regions = [self._region(600, 1, RegionStatus.IDEMPOTENT, selected=False)]
        breakdown = region_coverage(regions, 1000, dmax=0)
        assert breakdown.recoverable == 0.0
        assert breakdown.not_recoverable == 1.0

    def test_alpha_scaling_applied(self):
        regions = [self._region(1000, 1, RegionStatus.IDEMPOTENT)]
        breakdown = region_coverage(regions, 1000, dmax=1000)
        assert breakdown.recoverable_idempotent == pytest.approx(alpha(1000, 1000))

    def test_full_system_composition_math(self):
        breakdown = CoverageBreakdown(
            dmax=100,
            recoverable_idempotent=0.5,
            recoverable_checkpointed=0.3,
            not_recoverable=0.2,
        )
        fs = full_system_coverage(breakdown, masking_rate=0.9)
        assert fs.masked == 0.9
        assert fs.recoverable_idempotent == pytest.approx(0.05)
        assert fs.recoverable_checkpointed == pytest.approx(0.03)
        assert fs.not_recoverable == pytest.approx(0.02)
        assert fs.total_covered == pytest.approx(0.98)


class TestProfileData:
    def test_merge(self):
        a = ProfileData()
        a.record_block("f", "bb", 3)
        a.record_edge("f", "bb", "cc", 2)
        a.record_call("f")
        a.total_instructions = 10
        c = ProfileData()
        c.record_block("f", "bb", 1)
        c.record_call("f", 2)
        c.total_instructions = 5
        a.merge(c)
        assert a.block_count("f", "bb") == 4
        assert a.function_entries("f") == 3
        assert a.total_instructions == 15

    def test_probabilities(self):
        profile = ProfileData()
        profile.record_call("f", 10)
        profile.record_block("f", "hot", 10)
        profile.record_block("f", "cold", 1)
        profile.record_block("f", "loopy", 100)
        assert profile.block_probability("f", "hot") == 1.0
        assert profile.block_probability("f", "cold") == pytest.approx(0.1)
        assert profile.block_probability("f", "loopy") == 1.0  # clamped
        assert profile.block_probability("f", "never") == 0.0

    def test_pruning_semantics(self):
        profile = ProfileData()
        profile.record_call("f", 10)
        profile.record_block("f", "cold", 1)
        assert profile.is_pruned("f", "never", 0.0)
        assert not profile.is_pruned("f", "cold", 0.0)
        assert profile.is_pruned("f", "cold", 0.1)
        assert not profile.is_pruned("f", "cold", None)

    def test_edge_probability_and_hottest(self):
        profile = ProfileData()
        profile.record_block("f", "src", 10)
        profile.record_edge("f", "src", "a", 7)
        profile.record_edge("f", "src", "c", 3)
        assert profile.edge_probability("f", "src", "a") == pytest.approx(0.7)
        assert profile.hottest_successor("f", "src", ["a", "c"]) == "a"
        assert profile.edge_probability("f", "ghost", "a") == 0.0

    def test_profiler_counts_against_interpreter(self):
        module, _ = build_counted_loop(7)
        profile, result = profile_and_result(module, output_objects=["arr"])
        assert profile.block_count("main", "body") == 7
        assert profile.block_count("main", "header") == 8
        assert profile.function_entries("main") == 1
        assert profile.total_instructions == result.events

    def test_profiler_counts_calls(self):
        module, _ = build_call_program()
        profile = profile_module(module)
        assert profile.function_entries("square") == 2

    def test_multiple_runs_accumulate(self):
        module, _ = build_diamond()
        profile = profile_module(module, runs=3)
        assert profile.function_entries("main") == 3


class TestInterpreterEdges:
    def test_fell_off_block_traps(self):
        module = Module()
        func = module.add_function("main")
        block = func.add_block("entry")
        from repro.ir import Constant, Move

        block.instructions.append(Move(VirtualRegister("x"), Constant(1)))
        # No terminator.
        with pytest.raises(Trap, match="fell off"):
            Interpreter(module).run("main")

    def test_pointer_compare_and_truthiness(self):
        module = Module()
        arr = module.add_global("arr", 4)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 0)
        q = b.addrof(arr, 0)
        r = b.addrof(arr, 1)
        eq = b.cmp("eq", p, q)
        ne = b.cmp("ne", p, r)
        b.ret(b.add(eq, ne))
        assert Interpreter(module).run("main").value == 2

    def test_pointer_difference(self):
        module = Module()
        arr = module.add_global("arr", 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 6)
        q = b.addrof(arr, 2)
        b.ret(b.sub(p, q))
        assert Interpreter(module).run("main").value == 4

    def test_invalid_pointer_arith_traps(self):
        module = Module()
        arr = module.add_global("arr", 4)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 0)
        b.mul(p, 2)
        b.ret(0)
        with pytest.raises(Trap, match="pointer"):
            Interpreter(module).run("main")

    def test_instrumentation_cost_accounting(self):
        from repro.encore import EncoreConfig, compile_for_encore

        module, _ = build_counted_loop(5)
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        result = Interpreter(report.module).run("main")
        assert result.cost == result.app_cost + result.instrumentation_cost
        assert result.events <= result.cost


class TestProfileSerialization:
    def test_round_trip(self):
        from repro.profiling import ProfileData

        module, _ = build_counted_loop(9)
        profile = profile_module(module)
        clone = ProfileData.from_json(profile.to_json())
        assert clone.block_counts == profile.block_counts
        assert clone.edge_counts == profile.edge_counts
        assert clone.call_counts == profile.call_counts
        assert clone.total_instructions == profile.total_instructions

    def test_serialized_profile_drives_pipeline(self):
        from repro.encore import EncoreConfig
        from repro.encore.pipeline import EncoreCompiler
        from repro.profiling import ProfileData

        module, _ = build_counted_loop(20)
        profile = profile_module(module)
        revived = ProfileData.from_json(profile.to_json())
        report = EncoreCompiler(module, EncoreConfig()).compile(profile=revived)
        assert report.selected_regions
