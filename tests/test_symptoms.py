"""Tests for the likely-invariant symptom detector."""

import copy

import pytest

from repro.encore import EncoreConfig, compile_for_encore
from repro.ir import IRBuilder, Module
from repro.runtime import (
    InvariantProfile,
    Interpreter,
    run_symptom_campaign,
    run_symptom_trial,
    train_invariants,
)
from repro.runtime.symptoms import (
    SymptomCampaignResult,
    SymptomTrial,
    ValueRange,
)
from repro.workloads import build_workload
from helpers import build_counted_loop


class TestValueRange:
    def test_contains_and_widen(self):
        rng = ValueRange(10.0, 20.0)
        assert rng.contains(15.0)
        assert not rng.contains(25.0)
        wide = rng.widen(0.5)
        assert wide.contains(25.0)
        assert wide.lo == 5.0 and wide.hi == 25.0

    def test_degenerate_range_gets_unit_span(self):
        rng = ValueRange(7.0, 7.0).widen(1.0)
        assert rng.contains(6.5) and rng.contains(7.5)
        assert not rng.contains(100.0)


class TestInvariantProfile:
    def test_observation_and_violation(self):
        profile = InvariantProfile(slack=0.0)
        site = ("f", "bb", 0)
        for v in (3, 5, 9):
            profile.observe(site, v)
        profile.finalize()
        assert not profile.violates(site, 4)
        assert profile.violates(site, 100)
        assert profile.violates(site, -50)

    def test_untrained_site_never_violates(self):
        profile = InvariantProfile()
        profile.finalize()
        assert not profile.violates(("f", "bb", 0), 10**9)

    def test_pointers_and_bools_ignored(self):
        from repro.runtime import Pointer

        profile = InvariantProfile()
        site = ("f", "bb", 0)
        profile.observe(site, Pointer("obj", 3))
        profile.observe(site, True)
        profile.finalize()
        assert len(profile) == 0

    def test_training_covers_clean_run(self):
        # A clean run must raise no symptoms against its own training.
        module, _ = build_counted_loop(20)
        invariants = train_invariants(module, slack=0.0)
        assert len(invariants) > 0
        violations = []

        def hook(interp, event):
            defs = event.inst.defs()
            if defs:
                site = (event.func, event.block, event.inst_index)
                value = interp.current_frame.regs.get(defs[0])
                if invariants.violates(site, value):
                    violations.append(site)

        Interpreter(module, post_step=hook).run("main")
        assert violations == []


class TestSymptomTrials:
    def _protected(self, name="rawdaudio"):
        built = build_workload(name)
        report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
        return built, report.module

    def test_out_of_range_fault_detected_and_recovered(self):
        built, module = self._protected()
        invariants = train_invariants(module, args=built.args)
        golden = Interpreter(module).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        # Flip a high bit mid-run: a wildly out-of-range value.
        trial = run_symptom_trial(
            module, invariants, golden, site=golden.events // 2, bit=28,
            args=built.args, output_objects=built.output_objects,
        )
        assert trial.outcome in ("recovered", "masked")
        if trial.outcome == "recovered":
            assert trial.detection_latency is not None
            assert trial.detection_latency >= 0

    def test_campaign_statistics(self):
        built, module = self._protected()
        campaign = run_symptom_campaign(
            module, args=built.args, output_objects=built.output_objects,
            trials=40, seed=9,
        )
        fractions = [
            campaign.fraction(o)
            for o in ("masked", "recovered", "detected_unrecoverable", "sdc")
        ]
        assert sum(fractions) == pytest.approx(1.0)
        assert campaign.covered_fraction > 0.5
        # Some faults produce observable symptoms with finite latency.
        assert campaign.observed_latencies()
        assert campaign.detection_rate > 0.3

    def test_tighter_slack_detects_faster(self):
        built, module = self._protected("g721decode")
        tight = run_symptom_campaign(
            module, args=built.args, output_objects=built.output_objects,
            trials=40, seed=4, slack=0.1,
        )
        loose = run_symptom_campaign(
            module, args=built.args, output_objects=built.output_objects,
            trials=40, seed=4, slack=8.0,
        )
        # A tighter detector sees at least as many symptoms.
        assert tight.detection_rate >= loose.detection_rate - 0.05

    def test_unprotected_module_gives_up(self):
        # Without Encore, a detected symptom has nowhere to roll back.
        built = build_workload("rawdaudio")
        module = built.module
        campaign = run_symptom_campaign(
            module, args=built.args, output_objects=built.output_objects,
            trials=30, seed=2,
        )
        assert campaign.fraction("recovered") == 0.0
        assert campaign.fraction("detected_unrecoverable") > 0.0


class TestCampaignAggregateEdges:
    """SymptomCampaignResult must stay well-defined on degenerate inputs."""

    def test_empty_campaign(self):
        campaign = SymptomCampaignResult(trials=[])
        assert campaign.fraction("recovered") == 0.0
        assert campaign.covered_fraction == 0.0
        assert campaign.observed_latencies() == []
        assert campaign.mean_latency == 0.0
        assert campaign.detection_rate == 0.0

    def test_all_masked_campaign(self):
        trials = [
            SymptomTrial(
                outcome="masked", fault_event=i, detection_latency=None,
                recoveries=0,
            )
            for i in range(5)
        ]
        campaign = SymptomCampaignResult(trials=trials)
        assert campaign.covered_fraction == 1.0
        # No non-masked faults: a detection rate over zero trials is 0,
        # not a ZeroDivisionError.
        assert campaign.detection_rate == 0.0
        assert campaign.mean_latency == 0.0

    def test_trapped_without_latency_counts_as_noticed(self):
        trials = [
            SymptomTrial(
                outcome="detected_unrecoverable", fault_event=3,
                detection_latency=None, recoveries=0, trapped=True,
            ),
            SymptomTrial(
                outcome="sdc", fault_event=4, detection_latency=None,
                recoveries=0,
            ),
        ]
        campaign = SymptomCampaignResult(trials=trials)
        # The trap is a detection even though no invariant latency was
        # observed; the silent corruption is the miss.
        assert campaign.detection_rate == pytest.approx(0.5)
        assert campaign.observed_latencies() == []
        assert campaign.mean_latency == 0.0

    def test_mixed_latency_aggregation(self):
        trials = [
            SymptomTrial("recovered", 1, 10, 1),
            SymptomTrial("recovered", 2, 30, 1),
            SymptomTrial("masked", 3, None, 0),
        ]
        campaign = SymptomCampaignResult(trials=trials)
        assert campaign.observed_latencies() == [10, 30]
        assert campaign.mean_latency == pytest.approx(20.0)
        assert campaign.covered_fraction == pytest.approx(1.0)
        assert campaign.detection_rate == pytest.approx(1.0)
