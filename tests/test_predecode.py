"""Unit tests for the pre-decode layer itself: cache, fusion, tiers.

``tests/test_engine_equivalence.py`` proves the fast engine *behaves*
like the reference; this file pins the machinery underneath — the
decode cache's hit/invalidation contract, superinstruction fusion, the
fast/slow tier switch, and the single-run interpreter contract.
"""

from __future__ import annotations

import copy

import pytest

from repro.ir import IRBuilder, Module
from repro.runtime import (
    DecodeCache,
    ExecutionLimit,
    FastInterpreter,
    MachineMemory,
    ReferenceInterpreter,
    decode_module,
    invalidate_decode,
)
from repro.runtime.predecode import DECODE_CACHE


def _loop_module(trips: int = 10) -> Module:
    """A counted loop whose header is a fusible cmp+br pair and whose
    body is a fusible ckpt-free store."""
    module = Module("loop")
    out = module.add_global("out", 16)
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    i = b.fresh("i")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    c = b.cmp("slt", i, trips)
    b.br(c, "body", "exit")
    b.block("body")
    b.store((out, b.binop("and", i, 15)), i)
    b.mov(b.add(i, 1), dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(i)
    return module


def _run(cls, module, **kwargs):
    interp = cls(module, **kwargs)
    return interp, interp.run("main", output_objects=("out",))


# ---------------------------------------------------------------------------
# Decode cache
# ---------------------------------------------------------------------------


class TestDecodeCache:
    def test_module_hit(self):
        cache = DecodeCache()
        module = _loop_module()
        first = cache.program_for(module)
        second = cache.program_for(module)
        assert first is second
        assert cache.stats["module_hits"] == 1
        assert cache.stats["decodes"] == 1

    def test_fingerprint_hit_shares_across_copies(self):
        """Content-equal module copies (deepcopies, forked workers)
        share one decoded program through the fingerprint level."""
        cache = DecodeCache()
        module = _loop_module()
        program = cache.program_for(module)
        twin = cache.program_for(copy.deepcopy(module))
        assert twin is program
        assert cache.stats["fingerprint_hits"] == 1
        assert cache.stats["decodes"] == 1

    def test_structural_change_invalidates(self):
        """Swapping a block's instruction list is caught by the
        structural signature — no explicit invalidation needed."""
        cache = DecodeCache()
        module = _loop_module()
        stale = cache.program_for(module)
        b = IRBuilder(module.functions["main"])
        b.position_at("exit")
        ret = b.current_block.instructions.pop()
        b.mov(99)
        b.current_block.append(ret)
        fresh = cache.program_for(module)
        assert fresh is not stale
        assert fresh.fingerprint != stale.fingerprint

    def test_field_mutation_needs_invalidate(self):
        """In-place *field* rewrites are invisible to the signature —
        exactly the hazard :func:`invalidate_decode` exists for."""
        module = _loop_module()
        DECODE_CACHE.program_for(module)
        stale = DECODE_CACHE.program_for(module)
        add = next(
            inst
            for inst in module.functions["main"].blocks["body"].instructions
            if inst.opcode == "binop" and inst.op == "add"
        )
        add.op = "sub"
        assert DECODE_CACHE.program_for(module) is stale  # hazard
        invalidate_decode(module)
        fresh = DECODE_CACHE.program_for(module)
        assert fresh is not stale
        assert fresh.fingerprint != stale.fingerprint

    def test_pass_manager_invalidates_after_transforms(self):
        """The optimizer's transform passes mutate modules; running the
        pipeline must leave no stale decode behind."""
        from repro.ir import module_to_text
        from repro.opt import optimize_module

        module = Module("foldable")
        out = module.add_global("out", 4)
        b = IRBuilder(module.add_function("main"))
        b.block("entry")
        t = b.add(2, 3)  # constant-foldable: the optimizer rewrites it
        b.store((out, 0), t)
        b.ret(t)
        before = module_to_text(module)
        stale = DECODE_CACHE.program_for(module)
        optimize_module(module)
        assert module_to_text(module) != before, "optimizer did nothing"
        fresh = DECODE_CACHE.program_for(module)
        assert fresh is not stale
        ref = ReferenceInterpreter(module).run("main", output_objects=("out",))
        fast = FastInterpreter(module).run("main", output_objects=("out",))
        assert ref == fast

    def test_lru_bound(self):
        cache = DecodeCache(max_programs=2)
        modules = [_loop_module(trips) for trips in (3, 4, 5)]
        for module in modules:
            cache.program_for(module)
        assert cache.stats["programs"] == 2


# ---------------------------------------------------------------------------
# Superinstruction fusion
# ---------------------------------------------------------------------------


class TestFusion:
    def test_cmp_br_pairs_fuse(self):
        program = decode_module(_loop_module())
        assert program.fused["cmp_br"] >= 1

    def test_fused_pair_charges_like_reference(self):
        """Fusion must not change any counter: the pair still counts
        two events and two cost units per execution."""
        module = _loop_module(trips=7)
        _, ref = _run(ReferenceInterpreter, module)
        _, fast = _run(FastInterpreter, module)
        assert ref == fast

    def test_limit_mid_fused_pair_identical(self):
        """A step budget that expires *between* the halves of a fused
        pair must park the same (block, ip) as the reference engine."""
        module = _loop_module(trips=1000)
        program = decode_module(module)
        assert program.fused["cmp_br"] >= 1
        for budget in range(3, 12):
            pair = []
            for cls in (FastInterpreter, ReferenceInterpreter):
                interp = cls(module, max_steps=budget)
                with pytest.raises(ExecutionLimit):
                    interp.run("main")
                frame = interp.frames[-1]
                pair.append(
                    (interp.events, interp.cost, frame.block, frame.ip,
                     dict(frame.regs))
                )
            assert pair[0] == pair[1], f"diverged at budget {budget}"


# ---------------------------------------------------------------------------
# Tier switching: hooks installed and removed mid-run
# ---------------------------------------------------------------------------


def _external_call_module() -> Module:
    module = Module("tiers")
    out = module.add_global("out", 8)
    module.externals.add("toggle")
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    i = b.fresh("i")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    c = b.cmp("slt", i, 6)
    b.br(c, "body", "exit")
    b.block("body")
    b.call("toggle", [i])
    b.store((out, b.binop("and", i, 7)), b.mul(i, i))
    b.mov(b.add(i, 1), dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(i)
    return module


class TestTierSwitching:
    def test_hook_install_and_removal_mid_run(self):
        """An external call installs a post-step hook (fast → slow
        tier), a later one removes it (slow → fast tier); the recorded
        window and the final result must match the reference engine."""
        module = _external_call_module()
        results = {}
        windows = {}
        for cls in (FastInterpreter, ReferenceInterpreter):
            seen = []
            holder = {}

            def hook(interp, event):
                seen.append((event.index, event.inst.opcode))

            def toggle(args):
                interp = holder["interp"]
                if args[0] == 1:
                    interp.post_step = hook
                elif args[0] == 4:
                    interp.post_step = None
                return 0

            interp = cls(module, externals={"toggle": toggle})
            holder["interp"] = interp
            results[cls] = interp.run("main", output_objects=("out",))
            windows[cls] = tuple(seen)
        assert results[FastInterpreter] == results[ReferenceInterpreter]
        assert windows[FastInterpreter] == windows[ReferenceInterpreter]
        assert windows[FastInterpreter], "hook never observed a step"

    def test_fast_tier_resumes_after_hook_removal(self):
        """After the hook is gone the fast engine decodes again — the
        cache sees exactly one decode for the whole run."""
        module = _external_call_module()
        DECODE_CACHE.invalidate(module)
        before = DECODE_CACHE.decodes
        holder = {}

        def toggle(args):
            interp = holder["interp"]
            interp.post_step = (lambda i, e: None) if args[0] == 1 else None
            return 0

        interp = FastInterpreter(module, externals={"toggle": toggle})
        holder["interp"] = interp
        interp.run("main")
        assert DECODE_CACHE.decodes - before <= 1


# ---------------------------------------------------------------------------
# Single-run contract (and what may be shared between runs)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cls", [FastInterpreter, ReferenceInterpreter])
class TestSingleRunContract:
    def test_second_run_raises(self, cls):
        interp = cls(_loop_module())
        interp.run("main")
        with pytest.raises(RuntimeError, match="single-run"):
            interp.run("main")

    def test_shared_memory_image_not_mutated(self, cls):
        """A pristine ``memory_image`` may be shared across runs: each
        interpreter clones it, so the stores of one run never leak into
        the next (the stale-``_Frame``/``region_ckpts`` class of bug)."""
        module = _loop_module()
        image = MachineMemory.pristine(module)
        baseline = image.snapshot(("out",))
        first = cls(module, memory_image=image).run(
            "main", output_objects=("out",)
        )
        assert first.output != baseline  # the run really did store
        assert image.snapshot(("out",)) == baseline
        second = cls(module, memory_image=image).run(
            "main", output_objects=("out",)
        )
        assert second == first
