"""Property-based testing, round two: loop-carrying programs and MC fuzz.

The first property suite (test_property_based.py) covers acyclic
programs; here hypothesis drives randomly-built *loop nests* with
random memory access patterns through the whole stack — analysis
conservatism, optimizer semantics, instrumentation semantics — plus a
generator of small MC programs exercising frontend + optimizer
equivalence.
"""

import copy

from hypothesis import given, settings, strategies as st

from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.frontend import compile_source
from repro.ir import IRBuilder, Module, verify_module
from repro.opt import optimize_module
from repro.runtime import Interpreter
from repro.runtime.traces import capture_trace, window_war_addresses
from repro.workloads.synth import Kit

MEM = 6

# One loop level: (trip count, [ops]) where an op is (kind, address).
op_st = st.tuples(
    st.sampled_from(["load", "store", "addmem", "nop"]),
    st.integers(0, MEM - 1),
)
level_st = st.tuples(st.integers(1, 4), st.lists(op_st, min_size=0, max_size=3))
nest_st = st.lists(level_st, min_size=1, max_size=3)


def build_loop_nest(levels):
    """Nested counted loops; each level runs its ops inside the nest."""
    module = Module("loopnest")
    mem = module.add_global("mem", MEM, init=list(range(1, MEM + 1)))
    func = module.add_function("main")
    b = IRBuilder(func)
    kit = Kit(b)
    b.block("entry")
    acc = b.mov(0)

    def emit_ops(ops):
        for kind, addr in ops:
            if kind == "load":
                b.add(acc, b.load(mem, addr), acc)
            elif kind == "store":
                b.store(mem, addr, b.add(acc, addr))
            elif kind == "addmem":
                v = b.load(mem, addr)            # WAR when paired below
                b.store(mem, addr, b.add(v, 1))
            else:
                b.add(acc, 1, acc)

    def nest(depth):
        trip, ops = levels[depth]

        def body(_i):
            emit_ops(ops)
            if depth + 1 < len(levels):
                nest(depth + 1)

        kit.counted(trip, body, f"lvl{depth}")

    nest(0)
    b.ret(acc)
    verify_module(module)
    return module


class TestLoopNestProperties:
    @given(levels=nest_st)
    @settings(max_examples=50, deadline=None)
    def test_analysis_conservative_on_loop_nests(self, levels):
        module = build_loop_nest(levels)
        analyzer = IdempotenceAnalyzer(module)
        func = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        if result.status is RegionStatus.IDEMPOTENT:
            trace = capture_trace(module)
            wars = window_war_addresses(trace.records, 0, len(trace.records))
            assert not wars, wars

    @given(levels=nest_st)
    @settings(max_examples=30, deadline=None)
    def test_instrumented_loop_nest_output_identical(self, levels):
        module = build_loop_nest(levels)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["mem"]
        )
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), clone=True
        )
        verify_module(report.module)
        result = Interpreter(report.module).run("main", output_objects=["mem"])
        assert result.value == golden.value
        assert result.output == golden.output

    @given(levels=nest_st)
    @settings(max_examples=30, deadline=None)
    def test_optimizer_preserves_loop_nests(self, levels):
        module = build_loop_nest(levels)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["mem"]
        )
        optimize_module(module)
        verify_module(module)
        result = Interpreter(module).run("main", output_objects=["mem"])
        assert result.value == golden.value
        assert result.output == golden.output


# ---------------------------------------------------------------------------
# MC source fuzzing: generate small-but-valid programs as text.
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c"])
_literals = st.integers(-50, 50)


@st.composite
def mc_expr(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(_literals))
        if choice == 1:
            return draw(_names)
        return f"g[{draw(st.integers(0, 7))}]"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    lhs = draw(mc_expr(depth=depth + 1))
    rhs = draw(mc_expr(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def mc_stmt(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth < 2 else 1))
    if kind == 0:
        return f"{draw(_names)} = {draw(mc_expr())};"
    if kind == 1:
        return f"g[{draw(st.integers(0, 7))}] = {draw(mc_expr())};"
    if kind == 2:
        body = " ".join(draw(st.lists(mc_stmt(depth=depth + 1), max_size=2)))
        return f"if ({draw(mc_expr())}) {{ {body} }}"
    body = " ".join(draw(st.lists(mc_stmt(depth=depth + 1), max_size=2)))
    # One induction variable per nesting depth: sharing one across
    # nested loops is valid C that never terminates.
    var = ["i", "j", "k"][depth]
    return (
        f"for ({var} = 0; {var} < {draw(st.integers(1, 5))}; "
        f"{var} = {var} + 1) {{ {body} }}"
    )


@st.composite
def mc_program(draw):
    stmts = " ".join(draw(st.lists(mc_stmt(), min_size=1, max_size=5)))
    return (
        "global int g[8] = {3, 1, 4, 1, 5, 9, 2, 6};\n"
        "int main() {\n"
        "  int a = 1; int b = 2; int c = 3;\n"
        "  int i = 0; int j = 0; int k = 0;\n"
        f"  {stmts}\n"
        "  return a + b + c + g[0];\n"
        "}\n"
    )


class TestMCFuzz:
    @given(source=mc_program())
    @settings(max_examples=60, deadline=None)
    def test_generated_programs_compile_and_run(self, source):
        module = compile_source(source)
        result = Interpreter(module, max_steps=200_000).run(
            "main", output_objects=["g"]
        )
        assert isinstance(result.value, int)

    @given(source=mc_program())
    @settings(max_examples=40, deadline=None)
    def test_optimizer_equivalence_on_generated_mc(self, source):
        module = compile_source(source)
        golden = Interpreter(copy.deepcopy(module), max_steps=200_000).run(
            "main", output_objects=["g"]
        )
        optimize_module(module)
        verify_module(module)
        result = Interpreter(module, max_steps=200_000).run(
            "main", output_objects=["g"]
        )
        assert result.value == golden.value
        assert result.output == golden.output

    @given(source=mc_program())
    @settings(max_examples=25, deadline=None)
    def test_encore_equivalence_on_generated_mc(self, source):
        module = compile_source(source)
        golden = Interpreter(copy.deepcopy(module), max_steps=200_000).run(
            "main", output_objects=["g"]
        )
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), clone=True
        )
        result = Interpreter(report.module, max_steps=400_000).run(
            "main", output_objects=["g"]
        )
        assert result.value == golden.value
        assert result.output == golden.output
