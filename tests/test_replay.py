"""Tests for the replay detection backend (record + deterministic replay)."""

import dataclasses

import pytest

from repro.encore import EncoreConfig, compile_for_encore
from repro.runtime import (
    REPLAY_CHUNK_DEFAULT,
    ChunkRecorder,
    DetectionModel,
    golden_run,
    record_chunk_log,
    run_campaign,
    run_trial,
)
from repro.runtime.journal import (
    CampaignJournal,
    JournalError,
    campaign_metadata,
    load_journal,
    validate_resume,
)
from helpers import build_counted_loop, build_figure4_region


def _protected_figure4():
    module, _obj = build_figure4_region()
    return compile_for_encore(module, EncoreConfig(), args=(5,)).module


class TestChunkRecorder:
    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            ChunkRecorder(0)

    def test_record_twice_identical(self):
        """Digest logs are a pure function of the execution."""
        module, _arr = build_counted_loop(12)
        logs = []
        for _ in range(2):
            _result, recorder = record_chunk_log(module, chunk_size=8)
            logs.append(
                [(r.start_event, r.length, r.digest) for r in recorder.chunk_log]
            )
        assert logs[0] == logs[1]
        assert logs[0], "recorder produced no chunks"

    def test_chunks_cover_every_event(self):
        """Chunks tile the execution: contiguous, no gaps, no overlap."""
        module, _arr = build_counted_loop(12)
        result, recorder = record_chunk_log(module, chunk_size=8)
        expected_start = 0
        for record in recorder.chunk_log:
            assert record.start_event == expected_start
            assert 1 <= record.length <= 8
            expected_start = record.start_event + record.length
        assert expected_start == result.events

    def test_record_cost_charged_and_bounded(self):
        module, _arr = build_counted_loop(12)
        result, recorder = record_chunk_log(module, chunk_size=8)
        assert recorder.record_cost > 0
        # SNAPSHOT_COST per chunk + one instruction per RECORD_STRIDE
        # steps keeps the critical-path overhead well under 100%.
        assert recorder.record_cost < result.events

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_no_spurious_divergence(self, engine):
        """Fault-free replay must agree with the recording, both engines."""
        cases = [
            (build_counted_loop(12)[0], ()),
            (_protected_figure4(), (5,)),
        ]
        for module, args in cases:
            _result, recorder = record_chunk_log(
                module, args=args, chunk_size=8, check=True, engine=engine
            )
            assert recorder.divergences == []
            assert not recorder.end_divergence
            assert recorder.detector.checks == len(recorder.chunk_log)
            assert recorder.detector.divergences == 0


class TestReplayTrials:
    def test_detection_with_measured_latency(self):
        """A struck replay trial measures its latency within one chunk."""
        module = _protected_figure4()
        golden = golden_run(module, args=(5,))
        chunk = 8
        seen_divergence = False
        for site in range(0, golden.events, max(golden.events // 24, 1)):
            result = run_trial(
                module,
                golden,
                site,
                bit=3,
                latency=None,
                args=(5,),
                detector_backend="replay",
                replay_chunk_size=chunk,
            )
            assert result.outcome in (
                "recovered", "masked", "recovered_after_retry"
            ), (site, result.outcome)
            if result.replay_divergences:
                seen_divergence = True
                assert result.detect_latency is not None
                assert 0 <= result.detect_latency <= chunk
                assert result.replay_overhead > 0
        assert seen_divergence

    def test_replay_discards_sampled_latency(self):
        """The replay backend never uses the model's latency draw."""
        module = _protected_figure4()
        golden = golden_run(module, args=(5,))
        results = [
            run_trial(
                module, golden, 10, bit=3, latency=latency, args=(5,),
                detector_backend="replay", replay_chunk_size=8,
            )
            for latency in (0, 1000)
        ]
        assert dataclasses.astuple(results[0]) == dataclasses.astuple(results[1])

    def test_unknown_backend_rejected(self):
        module = _protected_figure4()
        golden = golden_run(module, args=(5,))
        with pytest.raises(ValueError, match="unknown detector backend"):
            run_trial(
                module, golden, 10, 3, None, args=(5,),
                detector_backend="oracle",
            )
        with pytest.raises(ValueError, match="unknown detector backend"):
            run_campaign(module, args=(5,), trials=1, detector_backend="oracle")

    def test_campaign_bit_equality_serial_parallel_engines(self):
        """Replay campaigns are bit-identical across jobs and engines."""
        module = _protected_figure4()
        runs = {}
        for engine in ("fast", "reference"):
            for jobs in (1, 2):
                campaign = run_campaign(
                    module,
                    function="main",
                    args=(5,),
                    trials=12,
                    seed=7,
                    detector_backend="replay",
                    replay_chunk_size=8,
                    jobs=jobs,
                    engine=engine,
                )
                runs[(engine, jobs)] = [
                    dataclasses.astuple(t) for t in campaign.trials
                ]
        baseline = runs[("fast", 1)]
        assert all(trials == baseline for trials in runs.values())


class TestReplayJournal:
    def _metadata(self, module, **overrides):
        kwargs = dict(
            seed=7,
            detector=DetectionModel(),
            function="main",
            args=(5,),
        )
        kwargs.update(overrides)
        return campaign_metadata(module, **kwargs)

    def test_header_records_backend_and_chunk(self):
        module = _protected_figure4()
        meta = self._metadata(
            module, detector_backend="replay", replay_chunk_size=32
        )
        assert meta["detector_backend"] == "replay"
        assert meta["replay_chunk_size"] == 32
        # Default chunk size is materialised, not left implicit.
        defaulted = self._metadata(module, detector_backend="replay")
        assert defaulted["replay_chunk_size"] == REPLAY_CHUNK_DEFAULT
        # A model campaign's header is byte-identical to the old format.
        assert "detector_backend" not in self._metadata(module)

    def test_cross_detector_resume_refused(self):
        """Resume under a different detector fails loudly, both ways."""
        module = _protected_figure4()
        model_meta = self._metadata(module)
        replay_meta = self._metadata(
            module, detector_backend="replay", replay_chunk_size=32
        )
        with pytest.raises(JournalError, match="detector_backend"):
            validate_resume(replay_meta, model_meta)
        with pytest.raises(JournalError, match="detector_backend"):
            validate_resume(model_meta, replay_meta)
        # Same backend, different chunk size: also a different campaign.
        other_chunk = self._metadata(
            module, detector_backend="replay", replay_chunk_size=16
        )
        with pytest.raises(JournalError, match="replay_chunk_size"):
            validate_resume(replay_meta, other_chunk)
        validate_resume(replay_meta, dict(replay_meta))

    def test_resume_round_trip(self, tmp_path):
        """A half-journaled replay campaign resumes to the full result."""
        module = _protected_figure4()
        kwargs = dict(
            function="main",
            args=(5,),
            trials=12,
            seed=7,
            detector_backend="replay",
            replay_chunk_size=8,
        )
        straight = run_campaign(module, **kwargs)

        path = str(tmp_path / "replay.jsonl")
        journal = CampaignJournal(path)
        meta = self._metadata(
            module, detector_backend="replay", replay_chunk_size=8
        )
        journal.write_header(meta)
        half = dict(kwargs, trials=6)
        run_campaign(module, on_result=journal.record, **half)
        journal.close()

        loaded_meta, completed = load_journal(path)
        validate_resume(loaded_meta, meta)
        assert len(completed) == 6
        resumed = run_campaign(module, completed=completed, **kwargs)
        assert [dataclasses.astuple(t) for t in resumed.trials] == [
            dataclasses.astuple(t) for t in straight.trials
        ]
