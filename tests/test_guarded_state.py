"""Self-protecting recovery state: the metadata fault surface and the
:class:`RecoveryStateGuard` defending it.

Three layers of tests: pure guard unit tests on fake frames, a
hand-built read-modify-write region whose schedule makes every
metadata-corruption outcome deterministic, and campaign-level
properties on a pipeline-instrumented module (plan bit-compatibility,
guard-level neutrality without metadata faults, serial/parallel
equivalence, journal round-trip of the new ``TrialResult`` fields).
"""

import pytest

from helpers import build_counted_loop
from repro.encore import EncoreConfig, compile_for_encore
from repro.ir import IRBuilder, Module
from repro.ir.instructions import (
    CheckpointMem,
    ClearRecoveryPtr,
    Jump,
    MemRef,
    RestoreCheckpoints,
    SetRecoveryPtr,
)
from repro.ir.values import Constant
from repro.runtime import (
    DetectionModel,
    GUARD_LEVELS,
    METADATA_TARGETS,
    MetadataCorruption,
    RecoveryStateGuard,
    golden_run,
    load_journal,
    plan_trial,
    run_campaign,
    run_trial,
)
from repro.runtime.guarded_state import REPAIR_COST, SEAL_COST, VERIFY_COST
from repro.runtime.journal import CampaignJournal, campaign_metadata


# ---------------------------------------------------------------------------
# guard unit tests on fake frames
# ---------------------------------------------------------------------------


class _FakeFunc:
    def __init__(self):
        self.blocks = {"entry": None, "region": None, "rec": None}


class _FakeFrame:
    _next_id = 0

    def __init__(self):
        self.id = _FakeFrame._next_id
        _FakeFrame._next_id += 1
        self.recovery_ptr = None
        self.region_ckpts = {}
        self.func = _FakeFunc()
        self.regs = {}


class _FakeInterp:
    def __init__(self, *frames):
        self.frames = list(frames)


class TestGuardUnit:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="guard level"):
            RecoveryStateGuard("paranoid")

    def test_unknown_target_rejected(self):
        guard = RecoveryStateGuard("off")
        with pytest.raises(ValueError, match="target"):
            guard.inject_fault(_FakeInterp(_FakeFrame()), "tlb", 0, 0)

    def test_levels_and_targets_are_closed_sets(self):
        assert GUARD_LEVELS == ("off", "checksum", "dup")
        assert METADATA_TARGETS == ("ckpt_mem", "ckpt_reg", "recovery_ptr")

    def test_off_level_charges_nothing(self):
        guard = RecoveryStateGuard("off")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        assert guard.on_publish(frame) == 0
        assert guard.on_push(frame, 0, ("reg", "v0", 7)) == 0
        frame.region_ckpts[0] = [("reg", "v0", 7)]
        records, cost = guard.verify_restore(frame, 0)
        assert records == [("reg", "v0", 7)] and cost == 0

    def test_checksum_seal_verify_roundtrip(self):
        guard = RecoveryStateGuard("checksum")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        assert guard.on_publish(frame) == SEAL_COST["checksum"]
        record = ("mem", "out", 0, 42)
        frame.region_ckpts[0] = [record]
        assert guard.on_push(frame, 0, record) == SEAL_COST["checksum"]
        records, cost = guard.verify_restore(frame, 0)
        assert records == [record]
        assert cost == VERIFY_COST["checksum"]
        ptr, cost = guard.verify_pointer(frame)
        assert ptr == (0, "rec") and cost == VERIFY_COST["checksum"]
        assert guard.detections == 0

    def test_checksum_detects_corrupted_record(self):
        guard = RecoveryStateGuard("checksum")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        guard.on_publish(frame)
        record = ("mem", "out", 0, 42)
        frame.region_ckpts[0] = [record]
        guard.on_push(frame, 0, record)
        frame.region_ckpts[0][0] = ("mem", "out", 0, 43)
        with pytest.raises(MetadataCorruption) as exc:
            guard.verify_restore(frame, 0)
        assert exc.value.structure == "checkpoint_log"
        assert exc.value.reason == "metadata_corrupt_detected"
        assert guard.detections == 1

    def test_checksum_detects_corrupted_pointer(self):
        guard = RecoveryStateGuard("checksum")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        guard.on_publish(frame)
        frame.recovery_ptr = (0, "entry")
        with pytest.raises(MetadataCorruption) as exc:
            guard.verify_pointer(frame)
        assert exc.value.structure == "recovery_ptr"

    def test_dup_repairs_record_and_pointer_in_place(self):
        guard = RecoveryStateGuard("dup")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        guard.on_publish(frame)
        record = ("mem", "out", 0, 42)
        frame.region_ckpts[0] = [record]
        guard.on_push(frame, 0, record)
        frame.region_ckpts[0][0] = ("mem", "out", 0, 99)
        records, cost = guard.verify_restore(frame, 0)
        assert records == [record]
        assert frame.region_ckpts[0][0] == record  # primary healed
        assert cost == VERIFY_COST["dup"] + REPAIR_COST
        frame.recovery_ptr = (0, "entry")
        ptr, _cost = guard.verify_pointer(frame)
        assert ptr == (0, "rec")
        assert frame.recovery_ptr == (0, "rec")
        assert guard.repairs == 2 and guard.detections == 0

    def test_off_counts_tainted_consumption(self):
        guard = RecoveryStateGuard("off")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        frame.region_ckpts[0] = [("mem", "out", 0, 0)]
        interp = _FakeInterp(frame)
        assert guard.inject_fault(interp, "ckpt_mem", 0, 3)
        assert guard.metadata_faults == 1
        records, _ = guard.verify_restore(frame, 0)
        assert records[0] == ("mem", "out", 0, 8)  # bit 3 flipped, consumed
        assert guard.tainted_consumed == 1

    def test_inject_fault_dead_metadata_returns_false(self):
        guard = RecoveryStateGuard("off")
        interp = _FakeInterp(_FakeFrame())
        for target in METADATA_TARGETS:
            assert not guard.inject_fault(interp, target, 0, 0)
        assert guard.metadata_faults == 0

    def test_inject_fault_prefers_innermost_frame(self):
        guard = RecoveryStateGuard("off")
        outer, inner = _FakeFrame(), _FakeFrame()
        outer.recovery_ptr = (0, "rec")
        inner.recovery_ptr = (1, "rec")
        interp = _FakeInterp(outer, inner)
        assert guard.inject_fault(interp, "recovery_ptr", 0, 0)
        assert inner.recovery_ptr == (1, "entry")  # wild but valid label
        assert outer.recovery_ptr == (0, "rec")

    def test_high_bit_mem_fault_strikes_saved_address(self):
        guard = RecoveryStateGuard("off")
        frame = _FakeFrame()
        frame.region_ckpts[0] = [("mem", "out", 2, 5)]
        assert guard.inject_fault(_FakeInterp(frame), "ckpt_mem", 0, 48)
        kind, name, addr, value = frame.region_ckpts[0][0]
        assert (addr, value) == (2 ^ 1, 5)  # address word, value intact

    def test_clear_drops_seals_and_taints(self):
        guard = RecoveryStateGuard("checksum")
        frame = _FakeFrame()
        frame.recovery_ptr = (0, "rec")
        guard.on_publish(frame)
        record = ("reg", "v0", 1)
        frame.region_ckpts[0] = [record]
        guard.on_push(frame, 0, record)
        guard.inject_fault(_FakeInterp(frame), "ckpt_reg", 0, 0)
        guard.on_clear(frame, 0)
        assert not guard._entry_sums and not guard._ptr_sums
        assert not guard._tainted_entries and not guard._tainted_ptrs


# ---------------------------------------------------------------------------
# deterministic end-to-end outcomes on a hand-built region
# ---------------------------------------------------------------------------


def build_rmw_region_module(filler=6):
    """A read-modify-write region where checkpoint corruption is visible.

    Dynamic schedule: 0 jmp; 1 set_recovery_ptr; 2 ckpt_mem out[0];
    3 v = load out[0]; 4 w = v + 5; 5 store out[0], w; 6.. ``filler``
    adds; clear; load; ret.  Because the region *increments* out[0],
    a restore that writes garbage is never overwritten by re-execution
    — the silent-corruption shape metadata faults are meant to expose.
    """
    module = Module("rmw")
    out = module.add_global("out", 2)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    b.jmp("region")
    region = b.block("region")
    region.instructions.append(SetRecoveryPtr(0, "rec"))
    region.instructions.append(CheckpointMem(0, MemRef(out, Constant(0))))
    v = b.load(out, 0)
    w = b.add(v, 5)
    b.store(out, 0, w)
    for _ in range(filler):
        b.add(0, 0)
    region.instructions.append(ClearRecoveryPtr(0))
    r = b.load(out, 0)
    b.ret(r)
    rec = b.block("rec")
    rec.instructions.append(RestoreCheckpoints(0))
    rec.instructions.append(Jump("region"))
    return module


class TestDeterministicOutcomes:
    # Primary fault at event 3 (the load's dest register), latency 2:
    # the deadline lands at event 5, inside the region, forcing one
    # rollback through the (possibly corrupted) checkpoint log.
    PRIMARY = dict(site=3, bit=1, latency=2)

    def _run(self, metadata_faults=(), guard="off"):
        module = build_rmw_region_module()
        golden = golden_run(module, output_objects=["out"])
        assert golden.value == 5
        return run_trial(
            module, golden, output_objects=["out"],
            metadata_faults=metadata_faults, metadata_guard=guard,
            **self.PRIMARY,
        )

    def test_baseline_rollback_recovers(self):
        for guard in GUARD_LEVELS:
            result = self._run(guard=guard)
            assert result.outcome == "recovered"
            assert result.recovery_attempts == 1
            assert result.metadata_faults == 0

    # One metadata fault at event 3 corrupting the just-pushed
    # ckpt_mem record's value word (bit 3): the rollback then restores
    # 8 instead of 0 and the re-executed increment lands on 13.
    CKPT_FAULT = ((3, "ckpt_mem", 0, 3),)

    def test_guard_off_silent_corruption(self):
        result = self._run(self.CKPT_FAULT, guard="off")
        assert result.outcome == "metadata_corrupt_silent"
        assert result.metadata_faults == 1
        assert result.metadata_repairs == 0

    def test_guard_checksum_detects(self):
        result = self._run(self.CKPT_FAULT, guard="checksum")
        assert result.outcome == "metadata_corrupt_detected"
        assert result.metadata_faults == 1
        assert result.metadata_repairs == 0

    def test_guard_dup_repairs_and_recovers(self):
        result = self._run(self.CKPT_FAULT, guard="dup")
        assert result.outcome == "recovered"
        assert result.metadata_faults == 1
        assert result.metadata_repairs == 1

    # Pointer strike: bit 0 redirects the recovery pointer to block 0
    # ("entry") — a wild-but-valid branch target that skips the restore.
    PTR_FAULT = ((3, "recovery_ptr", 0, 0),)

    def test_pointer_fault_off_is_silent(self):
        result = self._run(self.PTR_FAULT, guard="off")
        assert result.outcome == "metadata_corrupt_silent"

    def test_pointer_fault_checksum_detects(self):
        result = self._run(self.PTR_FAULT, guard="checksum")
        assert result.outcome == "metadata_corrupt_detected"

    def test_pointer_fault_dup_repairs(self):
        result = self._run(self.PTR_FAULT, guard="dup")
        assert result.outcome == "recovered"
        assert result.metadata_repairs == 1

    def test_dead_metadata_time_is_masked(self):
        # ckpt_reg metadata never exists in this module: the strike
        # finds nothing live and the trial behaves as if unplanned.
        result = self._run(((0, "ckpt_reg", 0, 0),), guard="off")
        assert result.outcome == "recovered"
        assert result.metadata_faults == 0


# ---------------------------------------------------------------------------
# plan derivation: draw-order bit-compatibility
# ---------------------------------------------------------------------------


class TestPlanCompatibility:
    def test_metadata_draws_do_not_disturb_prior_draws(self):
        detector = DetectionModel(dmax=40)
        base = plan_trial(11, 4, 500, detector, 2, 2, 0)
        extended = plan_trial(11, 4, 500, detector, 2, 2, 3)
        assert extended.sites == base.sites
        assert extended.bits == base.bits
        assert extended.latencies == base.latencies
        assert extended.recovery_sites == base.recovery_sites
        assert extended.recovery_bits == base.recovery_bits
        assert extended.recovery_latencies == base.recovery_latencies
        assert base.meta_sites == ()
        assert len(extended.meta_sites) == 3
        assert len(extended.metadata_faults) == 3
        for site, target, selector, bit in extended.metadata_faults:
            assert target in METADATA_TARGETS
            assert 0 <= selector < 64 and 0 <= bit < 64

    def test_metadata_draws_are_deterministic(self):
        detector = DetectionModel(dmax=40)
        assert plan_trial(11, 4, 500, detector, 1, 0, 2) == \
            plan_trial(11, 4, 500, detector, 1, 0, 2)


# ---------------------------------------------------------------------------
# campaign-level properties on an instrumented module
# ---------------------------------------------------------------------------


def _protected_loop(n=25):
    module, _arr = build_counted_loop(n)
    return compile_for_encore(module, EncoreConfig(), clone=False).module


class TestCampaignProperties:
    def _campaign(self, module, **kwargs):
        kwargs.setdefault("output_objects", ["arr"])
        kwargs.setdefault("detector", DetectionModel(dmax=25))
        kwargs.setdefault("trials", 40)
        kwargs.setdefault("seed", 13)
        return run_campaign(module, **kwargs)

    def test_guard_level_neutral_without_metadata_faults(self):
        module = _protected_loop()
        results = {
            level: self._campaign(module, metadata_guard=level).trials
            for level in GUARD_LEVELS
        }
        assert results["off"] == results["checksum"] == results["dup"]

    def test_metadata_faults_only_add_new_outcome_classes(self):
        module = _protected_loop()
        off = self._campaign(module, metadata_faults_per_trial=1,
                             metadata_guard="off")
        checksum = self._campaign(module, metadata_faults_per_trial=1,
                                  metadata_guard="checksum")
        assert checksum.count("metadata_corrupt_silent") == 0
        assert off.count("metadata_corrupt_detected") == 0
        struck = sum(t.metadata_faults for t in off.trials)
        assert struck > 0  # the surface is actually exercised
        # Whatever the unguarded campaign loses to silent metadata
        # corruption, the checksummed one converts to detections.
        assert checksum.count("metadata_corrupt_detected") >= \
            off.count("metadata_corrupt_silent")

    def test_dup_guard_repairs_keep_coverage(self):
        module = _protected_loop()
        off = self._campaign(module, metadata_faults_per_trial=1,
                             metadata_guard="off")
        dup = self._campaign(module, metadata_faults_per_trial=1,
                             metadata_guard="dup")
        assert dup.count("metadata_corrupt_silent") == 0
        assert sum(t.metadata_repairs for t in dup.trials) > 0
        assert dup.covered_fraction >= off.covered_fraction

    def test_serial_parallel_equivalence_with_metadata_faults(self):
        module = _protected_loop()
        serial = self._campaign(module, metadata_faults_per_trial=1,
                                metadata_guard="checksum")
        parallel = self._campaign(module, metadata_faults_per_trial=1,
                                  metadata_guard="checksum", jobs=2)
        assert parallel.trials == serial.trials

    def test_journal_roundtrips_metadata_fields(self, tmp_path):
        module = _protected_loop()
        detector = DetectionModel(dmax=25)
        path = str(tmp_path / "meta.jsonl")
        meta = campaign_metadata(
            module, 13, detector, metadata_faults_per_trial=1,
            metadata_guard="dup",
        )
        assert meta["metadata_faults_per_trial"] == 1
        assert meta["metadata_guard"] == "dup"
        campaign = self._campaign(
            module, trials=10, metadata_faults_per_trial=1,
            metadata_guard="dup",
        )
        with CampaignJournal(path) as journal:
            journal.write_header(meta)
            for index, trial in enumerate(campaign.trials):
                journal.record(index, trial)
        _loaded_meta, completed = load_journal(path)
        assert [completed[i] for i in range(10)] == campaign.trials
