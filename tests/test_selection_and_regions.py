"""Focused tests for region formation details and the selection heuristics."""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.encore.regions import RegionBuilder
from repro.encore.selection import RegionSelector, SelectionConfig
from repro.ir import IRBuilder, Module
from repro.profiling import profile_module
from helpers import build_counted_loop, build_figure4_region, build_nested_loops


def make_selector(module, profile=None, config=None):
    profile = profile if profile is not None else profile_module(module)
    analyzer = IdempotenceAnalyzer(module, profile=profile, pmin=0.0)
    builder = RegionBuilder(module, profile)
    return RegionSelector(module, analyzer, builder, profile, config), builder


class TestExternalEntries:
    def test_function_entry_counts_once(self):
        module, _ = build_counted_loop(10)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        entry_region = next(
            r for r in builder.base_regions("main") if r.header == "entry"
        )
        assert entry_region.entries == 1

    def test_loop_region_entered_once_from_outside(self):
        module, _ = build_counted_loop(10)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        loop_region = next(
            r for r in builder.base_regions("main") if r.header == "header"
        )
        assert loop_region.entries == 1
        # And its activation covers all iterations.
        assert loop_region.activation_length > 10

    def test_callee_entered_per_call(self):
        module = Module()
        out = module.add_global("out", 1)
        callee = module.add_function("leaf")
        cb = IRBuilder(callee)
        cb.block("entry")
        cb.store(out, 0, 7)
        cb.ret(0)
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, i)
        b.jmp("head")
        b.block("head")
        c = b.cmp("slt", i, 5)
        b.br(c, "body", "exit")
        b.block("body")
        b.call("leaf", [])
        b.add(i, 1, i)
        b.jmp("head")
        b.block("exit")
        b.ret(0)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        leaf_region = builder.base_regions("leaf")[0]
        assert leaf_region.entries == 5


class TestCostModel:
    def test_idempotent_region_cost_is_entry_only(self):
        module, _ = build_counted_loop(50)
        selector, builder = make_selector(module)
        region = next(
            r for r in builder.base_regions("main") if r.header == "header"
        )
        selector.analyze(region)
        assert region.status is RegionStatus.IDEMPOTENT
        cost = selector.cost(region)
        # (1 ptr update + register checkpoints) amortized over the whole
        # loop execution: tiny.
        assert cost < 0.05

    def test_war_loop_cost_reflects_per_iteration_checkpoints(self):
        module = Module()
        acc = module.add_global("acc", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, i)
        b.jmp("head")
        b.block("head")
        c = b.cmp("slt", i, 20)
        b.br(c, "body", "exit")
        b.block("body")
        v = b.load(acc, 0)
        b.store(acc, 0, b.add(v, i))
        b.add(i, 1, i)
        b.jmp("head")
        b.block("exit")
        b.ret(0)
        selector, builder = make_selector(module)
        region = next(r for r in builder.base_regions("main") if r.header == "head")
        selector.analyze(region)
        assert region.status is RegionStatus.NON_IDEMPOTENT
        # ~2 checkpoint instructions per ~8-instruction iteration.
        assert selector.cost(region) > 0.15

    def test_estimated_overhead_scales_with_total(self):
        module, _ = build_counted_loop(50)
        selector, builder = make_selector(module)
        region = next(r for r in builder.base_regions("main") if r.header == "header")
        a = selector.estimated_overhead(region, 1_000)
        c = selector.estimated_overhead(region, 10_000)
        assert a == pytest.approx(10 * c)


class TestSelectionBehaviour:
    def test_gamma_filters_low_value_regions(self):
        module, _ = build_figure4_region()
        profile = profile_module(module, args=[5])
        selector, builder = make_selector(
            module, profile, SelectionConfig(gamma=1e9, auto_tune=False)
        )
        regions = builder.base_regions("main")
        assert selector.select(regions, 10_000) == []

    def test_auto_tune_respects_budget(self):
        module, _ = build_figure4_region()
        profile = profile_module(module, args=[5])
        config = SelectionConfig(overhead_budget=0.0, auto_tune=True)
        selector, builder = make_selector(module, profile, config)
        regions = builder.base_regions("main")
        chosen = selector.select(regions, 10_000)
        # Zero budget: only free (never-executed) regions may be chosen.
        assert all(r.dyn_instructions == 0 for r in chosen)

    def test_unknown_regions_never_selected(self):
        module = Module()
        module.declare_external("io")
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.call("io", [])
        b.ret(0)
        selector, builder = make_selector(module)
        regions = builder.base_regions("main")
        chosen = selector.select(regions, 100)
        assert chosen == []

    def test_merging_is_gated_by_eta(self):
        module, _ = build_nested_loops(6, 5)
        profile = profile_module(module)
        eager, builder_a = make_selector(
            module, profile, SelectionConfig(eta=1e-9)
        )
        reluctant, builder_b = make_selector(
            module, profile, SelectionConfig(eta=1e12)
        )
        merged = eager.merge_candidates("main")
        unmerged = reluctant.merge_candidates("main")
        assert len(merged) <= len(unmerged)

    def test_merge_cap_prevents_oversized_regions(self):
        module, _ = build_nested_loops(8, 8)
        profile = profile_module(module)
        capped, _ = make_selector(
            module, profile, SelectionConfig(eta=1e-9, max_region_length=10.0)
        )
        regions = capped.merge_candidates("main")
        for region in regions:
            if region.entries > 0 and region.level > 1:
                assert region.activation_length <= 10.0


class TestReportAccessors:
    def test_region_status_counts_cover_all_base_regions(self):
        module, _ = build_figure4_region()
        report = compile_for_encore(module, args=[5])
        counts = report.region_status_counts()
        assert sum(counts.values()) == len(report.base_regions)

    def test_selected_regions_are_disjoint_per_function(self):
        module, _ = build_nested_loops()
        report = compile_for_encore(module)
        seen = {}
        for region in report.selected_regions:
            for label in region.blocks:
                key = (region.func, label)
                assert key not in seen, f"{key} in two selected regions"
                seen[key] = region.id

    def test_coverage_breakdown_fields(self):
        module, _ = build_counted_loop(40)
        report = compile_for_encore(module)
        cov = report.coverage(100)
        assert cov.recoverable == pytest.approx(
            cov.recoverable_idempotent + cov.recoverable_checkpointed
        )
        assert 0.0 <= cov.not_recoverable <= 1.0
