"""Focused SFI unit tests: outcome classification, the trap path, and
multi-fault deadline arming — each on a hand-built module small enough
to reason about every dynamic instruction."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir.instructions import BinOp, Jump, RestoreCheckpoints, SetRecoveryPtr
from repro.ir.values import Constant, VirtualRegister
from repro.runtime import (
    CampaignResult,
    DetectionModel,
    EscalateTrial,
    RecoverySupervisor,
    TrialResult,
    golden_run,
    run_trial,
)
from repro.runtime.interpreter import StepEvent
from repro.runtime.sfi import OUTCOMES, _FaultInjector


def build_single_block():
    """out[0] = 3*7 + 5; returns (module, events-per-instruction map).

    Dynamic schedule: 0 mul, 1 add, 2 store, 3 ret.
    """
    module = Module("single")
    out = module.add_global("out", 2)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    product = b.mul(3, 7)        # event 0, defines product
    total = b.add(product, 5)    # event 1, defines total
    b.store(out, 0, total)       # event 2
    b.ret(total)                 # event 3
    return module


def build_small_loop(n=12):
    """arr[i] = i for i < n (uninstrumented: no recovery pointer)."""
    module = Module("tinyloop")
    arr = module.add_global("arr", n)
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    b.block("entry")
    b.mov(0, i)
    b.jmp("header")
    b.block("header")
    cond = b.cmp("slt", i, n)
    b.br(cond, "body", "exit")
    b.block("body")
    b.store(arr, i, i)
    b.add(i, 1, i)
    b.jmp("header")
    b.block("exit")
    b.ret(0)
    return module


def build_recoverable_trap_module():
    """A hand-instrumented region whose faulted index traps, then recovers.

    Dynamic schedule: 0 set_recovery_ptr, 1 jmp, 2 add (defines the
    index), 3 load, 4 store, 5 ret.  Flipping bit 4 of the index (2 ->
    18) makes event 3 an out-of-bounds read — a Trap the recovery
    pointer can roll back: the recovery block re-enters ``work``, the
    index is recomputed cleanly, and the output matches the golden run.
    """
    module = Module("traprec")
    arr = module.add_global("arr", 4)
    out = module.add_global("out", 1)
    func = module.add_function("main")
    b = IRBuilder(func)
    entry = b.block("entry")
    entry.instructions.append(SetRecoveryPtr(0, "recover"))
    b.jmp("work")
    b.block("work")
    t = b.add(2, 0)
    u = b.load(arr, t)
    b.store(out, 0, u)
    b.ret(u)
    recover = b.block("recover")
    recover.instructions.append(RestoreCheckpoints(0))
    recover.instructions.append(Jump("work"))
    return module


class TestOutcomeClassification:
    """One deterministic trial per outcome class, hand-checked."""

    def test_masked_dead_register(self):
        # Inject past the end of the useful dataflow: event 3 (`ret`)
        # has no register defs, so the fault lands on dead time and
        # the run completes untouched — architectural masking.
        module = build_single_block()
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=3, bit=7, latency=None,
            output_objects=["out"],
        )
        assert trial.outcome == "masked"
        assert trial.recovery_attempts == 0
        assert not trial.trapped and not trial.hang
        assert trial.wasted_work == 0

    def test_sdc_corrupted_output(self):
        # Flip bit 3 of `total` right after event 1 computes it: the
        # store at event 2 writes the corrupted value and nothing
        # detects it (latency None = the detector missed the fault).
        module = build_single_block()
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=1, bit=3, latency=None,
            output_objects=["out"],
        )
        assert trial.outcome == "sdc"
        assert trial.fault_event == 1
        assert trial.recovery_attempts == 0

    def test_escape_unrecoverable_without_instrumentation(self):
        # The detector fires two events after a mid-loop fault, but the
        # module publishes no recovery pointer: from the supervisor's
        # view the fault escaped any recoverable region.
        module = build_small_loop()
        golden = golden_run(module, output_objects=["arr"])
        trial = run_trial(
            module, golden, site=golden.events // 2, bit=2, latency=2,
            output_objects=["arr"],
        )
        assert trial.outcome == "escape_unrecoverable"
        assert trial.recovery_attempts == 1
        assert trial.detect_latency == 2

    def test_recovered_via_recovery_block(self):
        module = build_recoverable_trap_module()
        golden = golden_run(module, output_objects=["out"])
        assert golden.events == 6
        trial = run_trial(
            module, golden, site=2, bit=4, latency=None,
            output_objects=["out"],
        )
        assert trial.outcome == "recovered"
        assert trial.trapped
        assert trial.recovery_attempts == 1
        assert trial.wasted_work > 0


class TestTrapPathRegression:
    """Pins the trap-handler path: rollback decisions live in the
    :class:`RecoverySupervisor`, not the injector, and trap outcomes
    classify through the same escalation ladder."""

    def test_injector_delegates_rollback_to_supervisor(self):
        injector = _FaultInjector([(0, 4, None)], RecoverySupervisor())
        assert not hasattr(injector, "detected")
        assert not hasattr(injector, "recovery_attempts")
        assert injector.supervisor.attempts == 0

    def test_trap_without_recovery_pointer_is_unrecoverable(self):
        # Same OOB-index fault as the recoverable case, but with no
        # instrumentation: the trap is a visible symptom with nowhere
        # to roll back to.
        module = Module("trapbare")
        arr = module.add_global("arr", 4)
        out = module.add_global("out", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        t = b.add(2, 0)      # event 0: the corrupted index
        u = b.load(arr, t)   # event 1: traps when t = 18
        b.store(out, 0, u)
        b.ret(u)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=0, bit=4, latency=None,
            output_objects=["out"],
        )
        assert trial.outcome == "detected_unrecoverable"
        assert trial.trapped
        assert trial.recovery_attempts == 1
        assert not trial.hang

    def test_trap_with_recovery_pointer_recovers(self):
        module = build_recoverable_trap_module()
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=2, bit=4, latency=None,
            output_objects=["out"],
        )
        assert (trial.outcome, trial.trapped) == ("recovered", True)


class _StubFrame:
    def __init__(self, frame_id=1, recovery_ptr=(0, "recover")):
        self.regs = {}
        self.id = frame_id
        self.recovery_ptr = recovery_ptr


class _StubInterp:
    """Just enough Interpreter surface for _FaultInjector + supervisor."""

    def __init__(self, recoverable=True, recovery_ptr=(0, "recover")):
        self.frame = _StubFrame(recovery_ptr=recovery_ptr)
        self.frames = [self.frame]
        self.recoverable = recoverable
        self.recovery_calls = 0

    @property
    def current_frame(self):
        return self.frame

    def trigger_recovery(self, immediate=False):
        self.recovery_calls += 1
        return self.recoverable


def _event(index):
    inst = BinOp("add", VirtualRegister("t"), Constant(1), Constant(2))
    return StepEvent(
        index=index, func="main", block="entry", inst_index=0,
        inst=inst, frame_id=1, loads=[], stores=[],
    )


def _supervised_injector(faults):
    supervisor = RecoverySupervisor()
    return _FaultInjector(faults, supervisor), supervisor


class TestMultiFaultInjector:
    def test_independent_deadlines_armed_per_fault(self):
        injector, supervisor = _supervised_injector([(2, 0, 5), (6, 1, 3)])
        interp = _StubInterp()
        for index in range(2, 7):
            injector(interp, _event(index))
        # Both faults injected, each arming its own absolute deadline.
        assert injector.fault_events == [2, 6]
        assert injector.deadlines == [7, 9]
        assert supervisor.attempts == 0

    def test_each_deadline_fires_one_recovery(self):
        injector, supervisor = _supervised_injector([(1, 0, 2), (4, 1, 2)])
        interp = _StubInterp()
        for index in range(1, 8):
            injector(interp, _event(index))
        assert supervisor.attempts == 2
        assert interp.recovery_calls == 2
        assert injector.deadlines == []
        assert not supervisor.recovery_failed

    def test_undetected_fault_arms_no_deadline(self):
        injector, supervisor = _supervised_injector([(1, 0, None), (3, 1, 4)])
        interp = _StubInterp()
        for index in range(1, 9):
            injector(interp, _event(index))
        assert injector.fault_events == [1, 3]
        assert supervisor.attempts == 1  # only the second fault

    def test_failed_recovery_escalates_as_escape(self):
        # No live recovery pointer when the deadline fires: the fault
        # escaped its region and the supervisor ends the trial.
        injector, supervisor = _supervised_injector([(1, 0, 1)])
        interp = _StubInterp(recovery_ptr=None)
        injector(interp, _event(1))
        with pytest.raises(EscalateTrial) as exc:
            injector(interp, _event(2))
        assert exc.value.reason == "escape_unrecoverable"
        assert supervisor.recovery_failed

    def test_broken_recovery_redirect_escalates(self):
        # A pointer is live but the interpreter cannot redirect to the
        # recovery block (stale label): same escape escalation.
        injector, supervisor = _supervised_injector([(1, 0, 1)])
        interp = _StubInterp(recoverable=False)
        injector(interp, _event(1))
        with pytest.raises(EscalateTrial) as exc:
            injector(interp, _event(2))
        assert exc.value.reason == "escape_unrecoverable"
        assert supervisor.recovery_failed

    def test_multifault_trial_counts_each_detection(self):
        # Integration: two short-latency faults in one instrumented
        # execution, each detection firing its own rollback.
        from repro.encore import compile_for_encore
        from helpers import build_counted_loop

        module, _ = build_counted_loop(30)
        report = compile_for_encore(module, clone=True)
        module = report.module
        golden = golden_run(module, output_objects=["arr"])
        mid = golden.events // 2
        trial = run_trial(
            module, golden,
            site=[mid, mid + 8], bit=[3, 5], latency=[2, 2],
            output_objects=["arr"],
        )
        assert trial.recovery_attempts == 2
        # The second strike can land inside the first region's retry
        # window, which legitimately classifies as a multi-attempt
        # recovery under the supervisor.
        assert trial.outcome in ("recovered", "recovered_after_retry", "masked")


class TestCampaignResultEdges:
    def test_empty_campaign_statistics(self):
        empty = CampaignResult([])
        assert empty.fraction("sdc") == 0.0
        assert empty.covered_fraction == 0.0
        assert empty.mean_wasted_work == 0.0
        assert empty.throughput == 0.0
        assert sum(empty.summary().values()) == 0.0
        assert empty.counts() == {outcome: 0 for outcome in OUTCOMES}

    def test_zero_elapsed_campaign_throughput_is_zero(self):
        # A journaled-resume campaign can complete with every trial
        # replayed in (effectively) zero wall-clock time; throughput
        # must degrade to 0.0, never divide by zero.
        campaign = CampaignResult(
            [TrialResult("masked", -1, None, 0)], elapsed=0.0
        )
        assert campaign.throughput == 0.0
        campaign.elapsed = -1.0  # clock skew on a suspended machine
        assert campaign.throughput == 0.0

    def test_empty_campaign_extended_summary(self):
        extended = CampaignResult([]).summary(extended=True)
        assert extended["trials"] == 0.0
        assert extended["trials_per_sec"] == 0.0

    def test_mean_wasted_work_requires_recovery_attempts(self):
        # A "recovered" trial with zero recovery attempts (defensive
        # shape: journal hand-edits, future outcome reclassification)
        # must not drag the mean toward its meaningless wasted_work.
        trials = [
            TrialResult("recovered", 2, 3, 0, wasted_work=999),
            TrialResult("recovered", 2, 3, 1, wasted_work=40),
        ]
        assert CampaignResult(trials).mean_wasted_work == pytest.approx(40.0)

    def test_covered_fraction_empty_and_all_covered(self):
        assert CampaignResult([]).covered_fraction == 0.0
        trials = [
            TrialResult("masked", -1, None, 0),
            TrialResult("recovered", 1, 2, 1),
            TrialResult("recovered_after_retry", 1, 2, 2),
        ]
        assert CampaignResult(trials).covered_fraction == pytest.approx(1.0)

    def test_mean_wasted_work_ignores_non_recovered(self):
        trials = [
            TrialResult("sdc", 1, None, 0, wasted_work=500),
            TrialResult("recovered", 2, 3, 1, wasted_work=40),
            TrialResult("recovered", 2, 3, 2, wasted_work=60),
            TrialResult("masked", -1, None, 0, wasted_work=0),
        ]
        campaign = CampaignResult(trials)
        assert campaign.mean_wasted_work == pytest.approx(50.0)

    def test_extended_summary_reports_execution_stats(self):
        campaign = CampaignResult(
            [TrialResult("masked", -1, None, 0)],
            elapsed=0.5, jobs=2, worker_trials={"worker-0": 1},
        )
        extended = campaign.summary(extended=True)
        assert extended["trials"] == 1.0
        assert extended["jobs"] == 2.0
        assert extended["trials_per_sec"] == pytest.approx(2.0)
        assert extended["trials[worker-0]"] == 1.0
        assert extended["pool_restarts"] == 0.0
        assert extended["resumed_trials"] == 0.0
        # The default summary stays pure outcome fractions.
        assert set(campaign.summary()) == set(OUTCOMES)
