"""Shared helpers for the engine-equivalence harness.

The repo's correctness story for the fast engine is *differential*:
every observable of an execution — result, counters, output snapshots,
trap identity, recovery state, step streams — must be bit-identical
between :class:`~repro.runtime.predecode.FastInterpreter` and
:class:`~repro.runtime.interpreter.ReferenceInterpreter`.
:func:`observe` runs one module on one engine and flattens everything
observable into a comparable :class:`Observation`;
``tests/test_engine_equivalence.py`` asserts the two engines' curves
coincide everywhere.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.runtime import (
    ENGINES,
    ExecutionLimit,
    Trap,
    make_interpreter,
)

ENGINE_NAMES = tuple(sorted(ENGINES))


@dataclasses.dataclass
class Observation:
    """Everything observable about one execution, engine-agnostic.

    ``status`` is ``"finished"``, ``"trap"``, ``"limit"`` or
    ``"error:<ExcType>"``; the counter fields always reflect the state
    at exit, however the run ended.
    """

    status: str
    value: object = None
    events: int = 0
    cost: int = 0
    app_cost: int = 0
    instrumentation_cost: int = 0
    output: Optional[Dict] = None
    trap_reason: Optional[str] = None
    trap_event: Optional[int] = None
    error: Optional[str] = None
    peak_ckpt_words: Optional[Dict] = None
    frame_state: Optional[Tuple] = None
    steps: Optional[Tuple] = None
    #: Scheduler switch points: (event index, from tid, to tid) tuples,
    #: None when no scheduler was engaged (single-threaded run).
    switch_log: Optional[Tuple] = None
    #: Per-thread dynamic-instruction tallies {tid: steps}.
    thread_steps: Optional[Dict] = None


def _frame_state(interp) -> Tuple:
    """The live frame stack, flattened for comparison (post-trap)."""
    return tuple(
        (
            frame.func.name,
            frame.block,
            frame.ip,
            frame.recovery_ptr,
            dict(frame.regs),
            {rid: list(recs) for rid, recs in frame.region_ckpts.items()},
        )
        for frame in interp.frames
    )


def observe(
    engine: str,
    module,
    entry: str = "main",
    args=(),
    output_objects=(),
    externals=None,
    max_steps: int = 5_000_000,
    metadata_guard: str = "off",
    record_steps: bool = False,
    resume_after_trap: bool = False,
    threads=None,
    quantum=None,
) -> Observation:
    """Run ``module`` on ``engine`` and capture every observable.

    ``record_steps`` installs a post-step hook that journals the step
    stream (this also exercises the fast engine's slow hook tier).
    ``resume_after_trap`` additionally triggers an immediate Encore
    rollback after a trap and resumes, capturing the recovered result —
    the differential check for the recovery path itself.
    ``threads``/``quantum`` forward to the interpreter's cooperative
    scheduler; when a scheduler engages, its switch log and per-thread
    step tallies become part of the observation (the differential check
    for scheduling decisions themselves).
    """
    steps = [] if record_steps else None
    post_step = None
    if record_steps:
        def post_step(interp, event):
            steps.append(
                (
                    event.index,
                    event.func,
                    event.block,
                    event.inst_index,
                    event.inst.opcode,
                    event.frame_id,
                    tuple(event.loads),
                    tuple(event.stores),
                )
            )

    interp = make_interpreter(
        module,
        engine=engine,
        max_steps=max_steps,
        post_step=post_step,
        externals=externals,
        metadata_guard=metadata_guard,
        max_threads=threads,
        quantum=quantum,
    )
    obs = Observation(status="finished")
    try:
        result = interp.run(entry, args, output_objects=output_objects)
    except Trap as trap:
        obs.status = "trap"
        obs.trap_reason = trap.reason
        obs.trap_event = trap.event_index
        obs.frame_state = _frame_state(interp)
        if resume_after_trap and interp.trigger_recovery(immediate=True):
            try:
                result = interp.resume(output_objects=output_objects)
            except Trap as again:
                obs.status = "trap+retrap"
                obs.trap_reason = (trap.reason, again.reason)
                obs.trap_event = (trap.event_index, again.event_index)
            else:
                obs.status = "trap+recovered"
                obs.value = result.value
                obs.output = result.output
    except ExecutionLimit:
        obs.status = "limit"
        obs.frame_state = _frame_state(interp)
    except (KeyError, OverflowError) as exc:
        # Malformed-module failure modes (wild labels, huge float->int
        # conversions) must be the same exception on both engines.
        obs.status = f"error:{type(exc).__name__}"
        obs.error = repr(exc)
    else:
        obs.value = result.value
        obs.output = result.output
    obs.events = interp.events
    obs.cost = interp.cost
    obs.app_cost = interp.app_cost
    obs.instrumentation_cost = interp.instrumentation_cost
    obs.peak_ckpt_words = dict(interp.peak_ckpt_words)
    if record_steps:
        obs.steps = tuple(steps)
    sched = getattr(interp, "scheduler", None)
    if sched is not None:
        obs.switch_log = tuple(sched.switch_log)
        obs.thread_steps = {
            tid: ctx.steps for tid, ctx in sorted(sched.contexts.items())
        }
    return obs


def observe_both(module, **kwargs) -> Tuple[Observation, Observation]:
    """(fast, reference) observations of the same module and inputs."""
    return (
        observe("fast", module, **kwargs),
        observe("reference", module, **kwargs),
    )
