"""End-to-end tests for the ``python -m repro`` command-line tool."""

import pytest

from repro.cli import main
from repro.ir import module_to_text
from helpers import build_counted_loop, build_figure4_region


@pytest.fixture
def loop_ir(tmp_path):
    module, _ = build_counted_loop(15)
    path = tmp_path / "loop.ir"
    path.write_text(module_to_text(module) + "\n")
    return path


@pytest.fixture
def figure4_ir(tmp_path):
    module, _ = build_figure4_region()
    path = tmp_path / "fig4.ir"
    path.write_text(module_to_text(module) + "\n")
    return path


class TestAnalyze:
    def test_prints_region_table(self, loop_ir, capsys):
        assert main(["analyze", str(loop_ir)]) == 0
        out = capsys.readouterr().out
        assert "estimated overhead" in out
        assert "recoverable at Dmax=100" in out
        assert "idempotent" in out

    def test_with_args(self, figure4_ir, capsys):
        assert main(["analyze", str(figure4_ir), "--args", "5"]) == 0
        out = capsys.readouterr().out
        assert "main/" in out


class TestProtect:
    def test_writes_instrumented_module(self, loop_ir, tmp_path, capsys):
        out_path = tmp_path / "protected.ir"
        assert main(["protect", str(loop_ir), "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "set_recovery_ptr" in text
        assert "__encore_rec_" in text
        out = capsys.readouterr().out
        assert "protected" in out

    def test_protected_module_runs(self, loop_ir, tmp_path, capsys):
        out_path = tmp_path / "protected.ir"
        main(["protect", str(loop_ir), "-o", str(out_path)])
        capsys.readouterr()
        assert main(["run", str(out_path), "--outputs", "arr"]) == 0
        out = capsys.readouterr().out
        assert "result:" in out
        assert "@arr" in out
        assert "overhead" in out

    def test_budget_flag_zero_budget(self, loop_ir, tmp_path, capsys):
        out_path = tmp_path / "p.ir"
        assert main([
            "protect", str(loop_ir), "-o", str(out_path), "--budget", "0.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "protected 0 regions" in out or "protected" in out


class TestRunAndInject:
    def test_run_prints_result(self, loop_ir, capsys):
        assert main(["run", str(loop_ir)]) == 0
        out = capsys.readouterr().out
        expected = sum(i * i for i in range(15))
        assert f"result: {expected}" in out

    def test_inject_unprotected_vs_protected(self, loop_ir, tmp_path, capsys):
        out_path = tmp_path / "protected.ir"
        main(["protect", str(loop_ir), "-o", str(out_path)])
        capsys.readouterr()
        assert main([
            "inject", str(out_path), "--outputs", "arr",
            "--trials", "25", "--dmax", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "TOTAL covered" in out
        assert "recovered" in out

class TestInjectJournal:
    def _summary_lines(self, text):
        return [line for line in text.splitlines() if not line.startswith("#")]

    def test_journal_then_resume_matches_uninterrupted(
        self, loop_ir, tmp_path, capsys, monkeypatch
    ):
        journal = tmp_path / "campaign.jsonl"
        # Uninterrupted 30-trial reference.
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "30", "--dmax", "10", "--seed", "9",
        ]) == 0
        reference = self._summary_lines(capsys.readouterr().out)
        # "Crashed" run: journal only the first 12 trials…
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "12", "--dmax", "10", "--seed", "9",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        # …then resume to the full 30.
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "30", "--dmax", "10", "--seed", "9",
            "--resume", str(journal),
        ]) == 0
        captured = capsys.readouterr()
        assert self._summary_lines(captured.out) == reference
        assert "trials replayed from journal: 12" in captured.out
        # The resumed tail was appended to the same journal.
        from repro.runtime import load_journal

        _meta, completed = load_journal(str(journal))
        assert sorted(completed) == list(range(30))

    def test_resume_rejects_mismatched_campaign(
        self, loop_ir, tmp_path, capsys
    ):
        journal = tmp_path / "campaign.jsonl"
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "10",
            "--resume", str(journal),
        ]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_torn_journal_still_rejects_mismatch(
        self, loop_ir, tmp_path, capsys
    ):
        # A crash can tear the journal's last line AND the operator can
        # point --resume at the wrong campaign at the same time.  The
        # torn tail must not downgrade the fingerprint mismatch into a
        # silent restart: exit 1, loud stderr.
        journal = tmp_path / "campaign.jsonl"
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        with open(journal, "a") as handle:
            handle.write('{"kind": "trial", "index": 5, "outc')
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--metadata-faults", "1", "--guard", "checksum",
            "--resume", str(journal),
        ]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "metadata_faults_per_trial" in err

    def test_resume_under_different_threads_rejected(
        self, loop_ir, tmp_path, capsys
    ):
        # A journal written at --threads 2 pins the thread budget; any
        # other budget (including the default 1) changes scheduling and
        # must refuse to resume, in both directions.
        journal = tmp_path / "threads.jsonl"
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--threads", "2", "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--resume", str(journal),
        ]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err and "threads" in err
        plain = tmp_path / "plain.jsonl"
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--journal", str(plain),
        ]) == 0
        capsys.readouterr()
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--threads", "2", "--resume", str(plain),
        ]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err and "threads" in err

    def test_resume_under_different_cf_faults_rejected(
        self, loop_ir, tmp_path, capsys
    ):
        journal = tmp_path / "cfe.jsonl"
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--cf-faults-per-trial", "1", "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--resume", str(journal),
        ]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err and "cf_faults_per_trial" in err
        # Same fault count but the CFE monitor off: also a different
        # campaign (detection physics changed).
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
            "--cf-faults-per-trial", "1", "--cfe-detector", "off",
            "--resume", str(journal),
        ]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err and "cfe_detector" in err

    def test_threaded_cf_journal_resumes_cleanly(
        self, loop_ir, tmp_path, capsys
    ):
        # The positive leg: a threaded CFE campaign journaled halfway
        # resumes to the exact uninterrupted summary.
        base = [
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "14", "--dmax", "10", "--seed", "9",
            "--threads", "2", "--cf-faults-per-trial", "1",
        ]
        assert main(base) == 0
        reference = self._summary_lines(capsys.readouterr().out)
        journal = tmp_path / "tcfe.jsonl"
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "6", "--dmax", "10", "--seed", "9",
            "--threads", "2", "--cf-faults-per-trial", "1",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        assert main(base + ["--resume", str(journal)]) == 0
        captured = capsys.readouterr()
        assert self._summary_lines(captured.out) == reference
        assert "trials replayed from journal: 6" in captured.out

    def test_journal_auto_path_lands_under_results(
        self, loop_ir, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "4", "--dmax", "10", "--journal",
        ]) == 0
        out = capsys.readouterr().out
        assert "# journal:" in out
        journals = list((tmp_path / "results").glob("sfi_*.jsonl"))
        assert len(journals) == 1

    def test_supervisor_flags_accepted(self, loop_ir, capsys):
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "10", "--dmax", "10",
            "--max-attempts", "2", "--step-budget", "500",
            "--recovery-faults-per-trial", "1", "--trial-timeout", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "livelock" in out
        assert "double_fault_unrecoverable" in out


class TestFuzz:
    ARGS = ["fuzz", "--profile", "small", "--seed", "7",
            "--oracles", "opt,conservative", "--campaign-every", "0"]

    def test_clean_run_exits_zero(self, capsys):
        assert main(self.ARGS + ["--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "programs          6" in out
        assert "failures          0" in out
        assert "fingerprint" in out

    def test_run_twice_prints_identical_summary(self, capsys):
        assert main(self.ARGS + ["--budget", "6"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--budget", "6", "--jobs", "2"]) == 0
        second = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert strip(first) == strip(second)

    def test_journal_resume_matches_uninterrupted(self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        part = tmp_path / "part.jsonl"
        assert main(self.ARGS + ["--budget", "8",
                                 "--journal", str(full)]) == 0
        assert main(self.ARGS + ["--budget", "3",
                                 "--journal", str(part)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--budget", "8",
                                 "--resume", str(part)]) == 0
        assert part.read_bytes() == full.read_bytes()

    def test_resume_mismatch_fails_loudly(self, tmp_path, capsys):
        part = tmp_path / "part.jsonl"
        assert main(self.ARGS + ["--budget", "2",
                                 "--journal", str(part)]) == 0
        capsys.readouterr()
        assert main(["fuzz", "--profile", "small", "--seed", "8",
                     "--oracles", "opt,conservative",
                     "--campaign-every", "0", "--budget", "2",
                     "--resume", str(part)]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_planted_defect_found_reduced_and_replayable(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.fuzz import DEFECT_ENV

        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--profile", "small", "--seed", "7",
                     "--oracles", "opt", "--campaign-every", "0",
                     "--budget", "6", "--corpus", str(corpus),
                     "--max-reduce-checks", "500"]) == 1
        out = capsys.readouterr().out
        assert "unique failures   1" in out
        assert "reduced opt:" in out
        artifacts = list(corpus.glob("opt-*.ir"))
        assert len(artifacts) == 1
        # The artifact's replay command names a seed that reproduces.
        replay_line = next(
            line for line in artifacts[0].read_text().splitlines()
            if "--replay" in line
        )
        seed = replay_line.split("--replay ")[1].split()[0]
        assert main(["fuzz", "--replay", seed, "--profile", "small",
                     "--oracles", "opt"]) == 1
        assert "opt:mismatch" in capsys.readouterr().out

    def test_replay_clean_program_exits_zero(self, capsys):
        assert main(["fuzz", "--replay", "3", "--profile", "small",
                     "--oracles", "opt"]) == 0
        assert "all oracles passed" in capsys.readouterr().out

    def test_bad_oracle_list_is_usage_error(self, capsys):
        assert main(["fuzz", "--oracles", "bogus", "--budget", "1"]) == 2
        assert "unknown oracle" in capsys.readouterr().err


class TestInjectReplay:
    def _summary_lines(self, text):
        return [line for line in text.splitlines() if not line.startswith("#")]

    def _protected(self, figure4_ir, tmp_path, capsys):
        out_path = tmp_path / "fig4.encore.ir"
        assert main([
            "protect", str(figure4_ir), "--args", "5", "-o", str(out_path),
        ]) == 0
        capsys.readouterr()
        return out_path

    def test_replay_smoke_serial_parallel_identical(
        self, figure4_ir, tmp_path, capsys
    ):
        protected = self._protected(figure4_ir, tmp_path, capsys)
        argv = [
            "inject", str(protected), "--args", "5", "--outputs", "mem",
            "--trials", "16", "--seed", "7",
            "--detector", "replay", "--replay-chunk", "8",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert self._summary_lines(serial) == self._summary_lines(parallel)
        # The measured-latency report is part of the summary contract.
        assert "replay detection latency" in serial
        assert "replay re-executed instructions" in serial
        assert "(chunk 8)" in serial

    def test_model_campaign_prints_no_replay_lines(self, loop_ir, capsys):
        assert main([
            "inject", str(loop_ir), "--outputs", "arr",
            "--trials", "5", "--dmax", "10", "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "replay detection latency" not in out

    def test_resume_under_different_detector_rejected(
        self, figure4_ir, tmp_path, capsys
    ):
        protected = self._protected(figure4_ir, tmp_path, capsys)
        base = [
            "inject", str(protected), "--args", "5", "--outputs", "mem",
            "--trials", "8", "--seed", "7",
        ]
        replay_flags = ["--detector", "replay", "--replay-chunk", "8"]

        # Replay journal resumed as a model campaign: refused.
        replay_journal = tmp_path / "replay.jsonl"
        assert main(base + replay_flags + ["--journal", str(replay_journal)]) == 0
        capsys.readouterr()
        assert main(base + ["--resume", str(replay_journal)]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "detector_backend" in err

        # Model journal resumed as a replay campaign: refused too.
        model_journal = tmp_path / "model.jsonl"
        assert main(base + ["--journal", str(model_journal)]) == 0
        capsys.readouterr()
        assert main(
            base + replay_flags + ["--resume", str(model_journal)]
        ) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "detector_backend" in err

        # Same backend but a different chunk size: a different campaign.
        assert main(
            base + ["--detector", "replay", "--replay-chunk", "16",
                    "--resume", str(replay_journal)]
        ) == 1
        assert "replay_chunk_size" in capsys.readouterr().err

    def test_replay_journal_resume_round_trip(
        self, figure4_ir, tmp_path, capsys
    ):
        protected = self._protected(figure4_ir, tmp_path, capsys)
        base = [
            "inject", str(protected), "--args", "5", "--outputs", "mem",
            "--seed", "7", "--detector", "replay", "--replay-chunk", "8",
        ]
        assert main(base + ["--trials", "16"]) == 0
        reference = self._summary_lines(capsys.readouterr().out)

        journal = tmp_path / "replay.jsonl"
        assert main(base + ["--trials", "6", "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(base + ["--trials", "16", "--resume", str(journal)]) == 0
        captured = capsys.readouterr()
        assert self._summary_lines(captured.out) == reference
        assert "trials replayed from journal: 6" in captured.out
