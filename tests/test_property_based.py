"""Property-based tests (hypothesis) for the core invariants.

Covers the soundness-critical properties:

* the path-insensitive idempotence analysis is conservative with respect
  to brute-force dynamic WAR detection on random acyclic programs;
* interval partitioning always yields single-entry partitions;
* instrumentation never changes program semantics;
* checkpoint/rollback restores exact pre-region state under random
  fault injection;
* the closed-form alpha matches numeric integration;
* bitflip is an involution on integers.
"""

import copy

from hypothesis import given, settings, strategies as st

from repro.analysis import CFGView, DominatorTree, partition_into_intervals
from repro.encore import EncoreConfig, RegionStatus, alpha, alpha_numeric, compile_for_encore
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.ir import IRBuilder, Module, verify_module
from repro.runtime import Interpreter, bitflip
from repro.runtime.traces import capture_trace, window_war_addresses

# ---------------------------------------------------------------------------
# random straight-line / branchy program generation
# ---------------------------------------------------------------------------

MEM_SIZE = 4

op_strategy = st.sampled_from(["load", "store", "nop"])
addr_strategy = st.integers(min_value=0, max_value=MEM_SIZE - 1)
block_ops = st.lists(st.tuples(op_strategy, addr_strategy), min_size=0, max_size=4)


def build_branchy(module_ops):
    """Build a diamond-chain program from per-block op lists.

    ``module_ops`` is a list of (then_ops, else_ops) levels; each level is
    an if/else diamond, so every combination of arms is a feasible path.
    """
    module = Module("prop")
    mem = module.add_global("mem", MEM_SIZE, init=list(range(MEM_SIZE)))
    sel = module.add_global("sel", max(len(module_ops), 1))
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    acc = b.mov(0)

    def emit_ops(ops):
        nonlocal acc
        for op, addr in ops:
            if op == "load":
                v = b.load(mem, addr)
                b.add(acc, v, acc)
            elif op == "store":
                b.store(mem, addr, b.add(acc, addr))
            else:
                b.add(acc, 1, acc)

    for level, (then_ops, else_ops) in enumerate(module_ops):
        cond = b.load(sel, level)
        then_l, else_l, join_l = f"t{level}", f"e{level}", f"j{level}"
        b.br(cond, then_l, else_l)
        b.block(then_l)
        emit_ops(then_ops)
        b.jmp(join_l)
        b.block(else_l)
        emit_ops(else_ops)
        b.jmp(join_l)
        b.block(join_l)
    b.ret(acc)
    return module, mem


levels_strategy = st.lists(
    st.tuples(block_ops, block_ops), min_size=1, max_size=4
)


class TestAnalysisConservatism:
    @given(levels=levels_strategy, selector=st.integers(0, 2**4 - 1))
    @settings(max_examples=60, deadline=None)
    def test_idempotent_verdict_implies_no_dynamic_war(self, levels, selector):
        """If the static analysis says IDEMPOTENT, no execution of the
        region may exhibit a dynamic WAR on memory."""
        module, mem = build_branchy(levels)
        # Drive one concrete path via the selector bits.
        for i in range(len(levels)):
            module.globals["sel"].init = module.globals["sel"].init or [0] * len(levels)
        module.globals["sel"].init = [
            (selector >> i) & 1 for i in range(len(levels))
        ]
        verify_module(module)
        analyzer = IdempotenceAnalyzer(module)
        func = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        if result.status is RegionStatus.IDEMPOTENT:
            trace = capture_trace(module)
            wars = window_war_addresses(trace.records, 0, len(trace.records))
            assert not wars, (
                "static analysis called region idempotent but a dynamic "
                f"WAR exists: {wars}"
            )

    @given(levels=levels_strategy)
    @settings(max_examples=30, deadline=None)
    def test_instrumentation_preserves_semantics(self, levels):
        module, _ = build_branchy(levels)
        module.globals["sel"].init = [i % 2 for i in range(len(levels))]
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["mem"]
        )
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), clone=True
        )
        verify_module(report.module)
        result = Interpreter(report.module).run("main", output_objects=["mem"])
        assert result.value == golden.value
        assert result.output == golden.output


class TestRollbackProperty:
    @given(
        levels=levels_strategy,
        site=st.integers(0, 40),
        bit=st.integers(0, 31),
        latency=st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovery_restores_golden_output_for_value_faults(
        self, levels, site, bit, latency
    ):
        """For acyclic single-region programs, a value fault detected
        within the region always rolls back to the golden output."""
        module, _ = build_branchy(levels)
        module.globals["sel"].init = [1] * len(levels)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["mem"]
        )
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), clone=True
        )
        if not report.selected_regions:
            return
        state = {"injected": False, "recovered": False, "site": None}

        def hook(interp, event):
            if (
                not state["injected"]
                and event.index >= site
                and event.inst.opcode in ("binop", "mov")
                and event.inst.defs()
            ):
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                value = frame.regs.get(dest, 0)
                if isinstance(value, int):
                    frame.regs[dest] = bitflip(value, bit)
                    state["injected"] = True
                    state["site"] = event.index
            elif (
                state["injected"]
                and not state["recovered"]
                and event.index >= state["site"] + latency
            ):
                state["recovered"] = interp.trigger_recovery()

        interp = Interpreter(report.module, post_step=hook, max_steps=100_000)
        result = interp.run("main", output_objects=["mem"])
        if state["recovered"]:
            assert result.output == golden.output
            assert result.value == golden.value


class TestStructuralProperties:
    @given(levels=levels_strategy)
    @settings(max_examples=40, deadline=None)
    def test_intervals_partition_and_single_entry(self, levels):
        module, _ = build_branchy(levels)
        cfg = CFGView(module.function("main"))
        intervals = partition_into_intervals(cfg.succs, cfg.preds, cfg.entry)
        seen = [n for iv in intervals for n in iv]
        assert sorted(seen) == sorted(cfg.labels)
        for members in intervals:
            header, inside = members[0], set(members)
            for node in members:
                if node == header:
                    continue
                assert all(p in inside for p in cfg.preds[node])

    @given(levels=levels_strategy)
    @settings(max_examples=40, deadline=None)
    def test_dominator_tree_sound(self, levels):
        module, _ = build_branchy(levels)
        cfg = CFGView(module.function("main"))
        dom = DominatorTree(cfg)
        # Entry dominates everything; idom is a strict dominator.
        for label in cfg.labels:
            assert dom.dominates(cfg.entry, label)
            idom = dom.idom[label]
            if label != cfg.entry:
                assert idom is not None
                assert dom.strictly_dominates(idom, label)


class TestModelAndBitflip:
    @given(
        n=st.floats(min_value=1.0, max_value=1e5),
        dmax=st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=80, deadline=None)
    def test_alpha_in_unit_interval_and_monotone(self, n, dmax):
        a = alpha(n, dmax)
        assert 0.0 <= a <= 1.0
        assert alpha(n * 2, dmax) >= a - 1e-12
        assert alpha(n, dmax * 2) <= a + 1e-12

    @given(
        n=st.floats(min_value=10.0, max_value=5000.0),
        dmax=st.floats(min_value=10.0, max_value=2000.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_alpha_closed_form_matches_numeric(self, n, dmax):
        assert abs(alpha(n, dmax) - alpha_numeric(n, dmax)) < 0.03

    @given(value=st.integers(-(2**62), 2**62), bit=st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_bitflip_involution(self, value, bit):
        assert bitflip(bitflip(value, bit), bit) == value
        assert bitflip(value, bit) != value
