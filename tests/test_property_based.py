"""Property-based tests (hypothesis) for the core invariants.

The program space is the fuzzer's own: strategies come from
:func:`repro.fuzz.program_strategy`, so hypothesis shrinking and the
``repro fuzz`` campaign explore one generator (nested loops, calls,
aliased pointer arithmetic, mixed int/float — far richer than the old
diamond-chain builder this file used to carry).  Covers:

* generated programs are verified, deterministic, and reproducible
  from ``(seed, config)`` alone;
* the path-insensitive idempotence analysis is conservative with
  respect to brute-force dynamic WAR detection;
* instrumentation (every configuration) and the opt pipeline preserve
  semantics;
* checkpoint/rollback restores exact pre-region state under random
  fault injection;
* interval partitioning and dominator trees are structurally sound;
* the closed-form alpha matches numeric integration;
* bitflip is an involution on integers.
"""

import copy

from hypothesis import given, settings, strategies as st

from repro.analysis import CFGView, DominatorTree, partition_into_intervals
from repro.encore import EncoreConfig, alpha, alpha_numeric, compile_for_encore
from repro.fuzz import (
    EXTERNALS,
    SMALL,
    generate_program,
    make_oracles,
    program_strategy,
    run_oracles,
)
from repro.ir import module_to_text, verify_module
from repro.runtime import ExecutionLimit, Interpreter, Trap, bitflip

programs = program_strategy(SMALL)


def run_bare(program, module=None):
    return Interpreter(
        copy.deepcopy(module or program.module), externals=EXTERNALS
    ).run(program.entry, program.args,
          output_objects=program.output_objects)


class TestGeneratorProperties:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_programs_verify_run_and_reproduce(self, seed):
        program = generate_program(seed, SMALL)
        verify_module(program.module)
        first = run_bare(program)
        second = run_bare(program)
        assert first.value == second.value
        assert first.output == second.output
        assert first.events == second.events
        # Reproducible from (seed, config) alone — bit for bit.
        again = generate_program(seed, SMALL)
        assert module_to_text(again.module) == module_to_text(program.module)

    @given(program=programs)
    @settings(max_examples=20, deadline=None)
    def test_programs_roundtrip_through_printer(self, program):
        from repro.ir import parse_module

        text = module_to_text(program.module)
        reparsed = parse_module(text)
        assert module_to_text(reparsed) == text
        assert run_bare(program, reparsed).output == run_bare(program).output


class TestAnalysisConservatism:
    @given(program=programs)
    @settings(max_examples=30, deadline=None)
    def test_idempotent_verdict_implies_no_dynamic_war(self, program):
        """If the static analysis says IDEMPOTENT, no execution of the
        region may exhibit a dynamic WAR on memory (the fuzzer's
        ``conservative`` oracle, run over hypothesis's exploration)."""
        assert run_oracles(program, make_oracles(["conservative"])) == []


class TestDifferentialSemantics:
    @given(program=programs)
    @settings(max_examples=15, deadline=None)
    def test_instrumentation_preserves_semantics_every_config(self, program):
        assert run_oracles(program, make_oracles(["semantic"])) == []

    @given(program=programs)
    @settings(max_examples=20, deadline=None)
    def test_opt_pipeline_preserves_semantics(self, program):
        assert run_oracles(program, make_oracles(["opt"])) == []


class TestRollbackProperty:
    @given(
        program=programs,
        site=st.integers(0, 200),
        bit=st.integers(0, 31),
        latency=st.integers(0, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovery_restores_golden_output_for_value_faults(
        self, program, site, bit, latency
    ):
        """A value fault detected within the *same region activation*
        it corrupted always rolls back to the golden output.

        That activation scoping is the paper's coverage condition, not a
        test convenience: with a nonzero detection latency the corrupt
        value can cross a region boundary, escape through a store whose
        (possibly corrupted) address the analysis never checkpointed, or
        flow into a callee frame — all uncovered fault classes (§4.3),
        not rollback-exactness violations.  The fuzzer's ``rollback``
        oracle pins the no-fault half of the property; this test adds
        real bit flips and asserts exactness whenever the window between
        injection and detection stays inside one activation with no
        escaping side effects."""
        golden = run_bare(program)
        report = compile_for_encore(
            program.module,
            EncoreConfig(auto_tune=False, gamma=0.0, overhead_budget=10.0),
            clone=True, function=program.entry, args=program.args,
            externals=EXTERNALS,
        )
        if not report.selected_regions:
            return
        # Any of these between injection and detection lets corrupt
        # state out of the activation's rollback reach.
        escapes = (
            "set_recovery_ptr", "clear_recovery_ptr",
            "call", "ret", "ext", "store",
        )
        state = {
            "injected": False, "recovered": False,
            "site": None, "escaped": False,
        }

        def hook(interp, event):
            if (
                not state["injected"]
                and event.index >= site
                and event.inst.opcode in ("binop", "mov")
                and event.inst.defs()
            ):
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                value = frame.regs.get(dest, 0)
                if isinstance(value, int):
                    frame.regs[dest] = bitflip(value, bit)
                    state["injected"] = True
                    state["site"] = event.index
            elif state["injected"] and not state["recovered"]:
                if event.inst.opcode in escapes:
                    state["escaped"] = True
                if event.index >= state["site"] + latency:
                    state["recovered"] = interp.trigger_recovery()

        interp = Interpreter(
            report.module, post_step=hook, externals=EXTERNALS,
            max_steps=2_000_000,
        )
        try:
            result = interp.run(
                program.entry, program.args,
                output_objects=program.output_objects,
            )
        except (Trap, ExecutionLimit):
            # The corrupted value escaped into a crash before recovery
            # fired — a detected-unrecoverable outcome, not a rollback
            # exactness violation.
            return
        if state["recovered"] and not state["escaped"]:
            assert result.output == golden.output
            assert result.value == golden.value


class TestStructuralProperties:
    @given(program=programs)
    @settings(max_examples=25, deadline=None)
    def test_intervals_partition_and_single_entry(self, program):
        for func in program.module:
            cfg = CFGView(func)
            intervals = partition_into_intervals(
                cfg.succs, cfg.preds, cfg.entry
            )
            seen = [n for iv in intervals for n in iv]
            assert sorted(seen) == sorted(cfg.labels)
            for members in intervals:
                header, inside = members[0], set(members)
                for node in members:
                    if node == header:
                        continue
                    assert all(p in inside for p in cfg.preds[node])

    @given(program=programs)
    @settings(max_examples=25, deadline=None)
    def test_dominator_tree_sound(self, program):
        for func in program.module:
            cfg = CFGView(func)
            dom = DominatorTree(cfg)
            for label in cfg.labels:
                assert dom.dominates(cfg.entry, label)
                idom = dom.idom[label]
                if label != cfg.entry:
                    assert idom is not None
                    assert dom.strictly_dominates(idom, label)


class TestModelAndBitflip:
    @given(
        n=st.floats(min_value=1.0, max_value=1e5),
        dmax=st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=80, deadline=None)
    def test_alpha_in_unit_interval_and_monotone(self, n, dmax):
        a = alpha(n, dmax)
        assert 0.0 <= a <= 1.0
        assert alpha(n * 2, dmax) >= a - 1e-12
        assert alpha(n, dmax * 2) <= a + 1e-12

    @given(
        n=st.floats(min_value=10.0, max_value=5000.0),
        dmax=st.floats(min_value=10.0, max_value=2000.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_alpha_closed_form_matches_numeric(self, n, dmax):
        assert abs(alpha(n, dmax) - alpha_numeric(n, dmax)) < 0.03

    @given(value=st.integers(-(2**62), 2**62), bit=st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_bitflip_involution(self, value, bit):
        assert bitflip(bitflip(value, bit), bit) == value
        assert bitflip(value, bit) != value
