"""Shared IR program fixtures used across the test suite."""

from __future__ import annotations

import os
import signal

from repro.ir import IRBuilder, Module

#: Env vars steering :func:`crash_worker_once` (see
#: tests/test_campaign_resilience.py).  Module-level so the external
#: pickles by reference into campaign worker processes.
CRASH_SENTINEL_ENV = "REPRO_TEST_CRASH_SENTINEL"
CRASH_SPARE_PID_ENV = "REPRO_TEST_CRASH_SPARE_PID"


def crash_worker_once(args):
    """External that SIGKILLs the first worker process to call it.

    Arms only when ``CRASH_SENTINEL_ENV`` points at a path; the sentinel
    file makes the crash one-shot (retried pools survive), and the
    process whose pid is in ``CRASH_SPARE_PID_ENV`` — the campaign
    parent, which runs the golden run and any serial trials — is never
    killed.
    """
    sentinel = os.environ.get(CRASH_SENTINEL_ENV)
    if sentinel and str(os.getpid()) != os.environ.get(CRASH_SPARE_PID_ENV):
        if sentinel == "always":
            # Every worker dies: the campaign must exhaust its pool
            # retries and classify the survivors infra_error.
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return args[0] if args else 0


def build_external_call_loop(n=6):
    """Loop calling the ``maybe_crash`` external once per iteration."""
    module = Module("crashy")
    out = module.add_global("out", max(n, 1))
    module.externals.add("maybe_crash")
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    total = b.fresh("sum")
    b.block("entry")
    b.mov(0, i)
    b.mov(0, total)
    b.jmp("header")
    b.block("header")
    cond = b.cmp("slt", i, n)
    b.br(cond, "body", "exit")
    b.block("body")
    val = b.call("maybe_crash", [i])
    b.store(out, i, val)
    b.add(total, val, total)
    b.add(i, 1, i)
    b.jmp("header")
    b.block("exit")
    b.ret(total)
    return module, out


def build_linear_sum():
    """Straight-line program: out[0] = 3*7 + 5."""
    module = Module("linear")
    out = module.add_global("out", 4)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    product = b.mul(3, 7)
    total = b.add(product, 5)
    b.store(out, 0, total)
    b.ret(total)
    return module, out


def build_diamond(take_then=1):
    """If/else writing 100 or 200 to out[0] depending on an argument."""
    module = Module("diamond")
    out = module.add_global("out", 2)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    cond = b.cmp("eq", take_then, 1)
    b.br(cond, "then", "else_")
    b.block("then")
    b.store(out, 0, 100)
    b.jmp("join")
    b.block("else_")
    b.store(out, 0, 200)
    b.jmp("join")
    b.block("join")
    result = b.load(out, 0)
    b.ret(result)
    return module, out


def build_counted_loop(n=10):
    """Loop writing i*i into arr[i] for i in range(n); returns the sum."""
    module = Module("loop")
    arr = module.add_global("arr", max(n, 1))
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    total = b.fresh("sum")
    b.block("entry")
    b.mov(0, i)
    b.mov(0, total)
    b.jmp("header")
    b.block("header")
    cond = b.cmp("slt", i, n)
    b.br(cond, "body", "exit")
    b.block("body")
    sq = b.mul(i, i)
    b.store(arr, i, sq)
    b.add(total, sq, total)
    b.add(i, 1, i)
    b.jmp("header")
    b.block("exit")
    b.ret(total)
    return module, arr


def build_nested_loops(n=4, m=3):
    """Nested loops writing i*m+j into a matrix."""
    module = Module("nested")
    mat = module.add_global("mat", n * m)
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    j = b.fresh("j")
    b.block("entry")
    b.mov(0, i)
    b.jmp("outer_header")
    b.block("outer_header")
    oc = b.cmp("slt", i, n)
    b.br(oc, "outer_body", "exit")
    b.block("outer_body")
    b.mov(0, j)
    b.jmp("inner_header")
    b.block("inner_header")
    ic = b.cmp("slt", j, m)
    b.br(ic, "inner_body", "outer_latch")
    b.block("inner_body")
    row = b.mul(i, m)
    idx = b.add(row, j)
    val = b.add(idx, 0)
    b.store(mat, idx, val)
    b.add(j, 1, j)
    b.jmp("inner_header")
    b.block("outer_latch")
    b.add(i, 1, i)
    b.jmp("outer_header")
    b.block("exit")
    b.ret(0)
    return module, mat


def build_call_program():
    """main calls square(x) twice and stores the results."""
    module = Module("calls")
    out = module.add_global("out", 2)
    square = module.add_function("square", params=[_param("x")])
    sb = IRBuilder(square)
    sb.block("entry")
    result = sb.mul(square.params[0], square.params[0])
    sb.ret(result)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    a = b.call("square", [5])
    b.store(out, 0, a)
    c = b.call("square", [9])
    b.store(out, 1, c)
    total = b.add(a, c)
    b.ret(total)
    return module, out


def build_figure4_region():
    """The paper's Figure 4 example region, reconstructed.

    Four potential WAR dependencies exist, but only the (Load B, Store B)
    pair — instructions 7 and 10 in the paper — can violate idempotence:
    the other loads are guarded by dominating stores to the same address.

    Layout (A=mem[0], B=mem[1], C=mem[2]):

        bb1: store A            -> bb2 | bb3
        bb2: store B; store C   -> bb4
        bb3: load A (#4, guarded); store C   -> bb5
        bb4: load B (guarded by bb2)         -> bb6
        bb5: load B (*7, EXPOSED); load C (@8, guarded) -> bb6
        bb6: store A (#9); store B (*10)     -> bb7 | bb8
        bb7: load C (+11, guarded)           -> bb8
        bb8: store C (@12); ret
    """
    module = Module("figure4")
    mem = module.add_global("mem", 3)
    func = module.add_function("main", params=[_param("p")])
    b = IRBuilder(func)
    A, B, C = 0, 1, 2
    p = func.params[0]

    b.block("bb1")
    b.store(mem, A, 11)  # 1: Store A
    c1 = b.cmp("sgt", p, 0)
    b.br(c1, "bb2", "bb3")

    b.block("bb2")
    b.store(mem, B, 22)  # 2: Store B
    b.store(mem, C, 33)  # 3: Store C
    b.jmp("bb4")

    b.block("bb3")
    va = b.load(mem, A)  # 4: Load A (guarded by 1)
    vc3 = b.add(va, 1)
    b.store(mem, C, vc3)  # 5: Store C
    b.jmp("bb5")

    b.block("bb4")
    vb4 = b.load(mem, B)  # 6: Load B (guarded by 2)
    b.add(vb4, 0)
    b.jmp("bb6")

    b.block("bb5")
    vb5 = b.load(mem, B)  # 7: Load B  — EXPOSED (no store to B on this path)
    vc5 = b.load(mem, C)  # 8: Load C (guarded by 5)
    b.add(vb5, vc5)
    b.jmp("bb6")

    b.block("bb6")
    b.store(mem, A, 99)  # 9: Store A
    b.store(mem, B, 88)  # 10: Store B — the single offending store
    c6 = b.cmp("slt", p, 10)
    b.br(c6, "bb7", "bb8")

    b.block("bb7")
    vc7 = b.load(mem, C)  # 11: Load C (guarded)
    b.add(vc7, 0)
    b.jmp("bb8")

    b.block("bb8")
    b.store(mem, C, 77)  # 12: Store C
    b.ret(0)
    return module, mem


def _param(name):
    from repro.ir import VirtualRegister

    return VirtualRegister(name)


def build_two_function_workload(g_mult=3):
    """A dominant function ``f`` plus a small, truncating function ``g``.

    ``main`` calls ``f`` (a 40-iteration loop holding most of the
    fault-site mass) then ``g`` (a 6-iteration loop whose products are
    truncated with ``and 255``, so bit-liveness proves the multiply's
    high bits dead).  ``g_mult`` parameterizes only ``g``'s body — the
    edit-one-function scenario the incremental subsystem and its bench
    exercise: changing it must invalidate ``g``'s sections and nothing
    of ``f``'s.
    """
    module = Module("twofn")
    arr = module.add_global("arr", 48)

    f = module.add_function("f")
    fb = IRBuilder(f)
    i = fb.fresh("i")
    total = fb.fresh("sum")
    fb.block("entry")
    fb.mov(0, i)
    fb.mov(0, total)
    fb.jmp("header")
    fb.block("header")
    fcond = fb.cmp("slt", i, 40)
    fb.br(fcond, "body", "exit")
    fb.block("body")
    sq = fb.mul(i, i)
    fb.store(arr, i, sq)
    fb.add(total, sq, total)
    fb.add(i, 1, i)
    fb.jmp("header")
    fb.block("exit")
    fb.ret(total)

    g = module.add_function("g")
    gb = IRBuilder(g)
    j = gb.fresh("j")
    acc = gb.fresh("acc")
    gb.block("entry")
    gb.mov(0, j)
    gb.mov(0, acc)
    gb.jmp("header")
    gb.block("header")
    gcond = gb.cmp("slt", j, 6)
    gb.br(gcond, "body", "exit")
    gb.block("body")
    v = gb.mul(j, g_mult)
    low = gb.and_(v, 255)
    idx = gb.add(j, 40)
    gb.store(arr, idx, low)
    gb.add(acc, low, acc)
    gb.add(j, 1, j)
    gb.jmp("header")
    gb.block("exit")
    gb.ret(acc)

    main = module.add_function("main")
    mb = IRBuilder(main)
    mb.block("entry")
    a = mb.call("f", [])
    c = mb.call("g", [])
    total = mb.add(a, c)
    mb.ret(total)
    return module, arr
