"""Tests for the RS/GA/EA idempotence analysis (paper Section 3.1)."""

import pytest

from repro.analysis import AliasAnalysis
from repro.encore import IdempotenceAnalyzer, RegionStatus
from repro.ir import IRBuilder, Module
from repro.profiling import profile_module
from helpers import build_counted_loop, build_figure4_region, build_nested_loops


def analyze_whole_function(module, fn="main", **kw):
    analyzer = IdempotenceAnalyzer(module, **kw)
    func = module.function(fn)
    blocks = frozenset(func.reachable_labels())
    return analyzer.analyze_region(fn, blocks, func.entry_label)


class TestFigure4:
    """The paper's worked example: exactly one offending store."""

    def test_region_is_non_idempotent(self):
        module, _ = build_figure4_region()
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_single_offending_store_is_instruction_10(self):
        module, _ = build_figure4_region()
        result = analyze_whole_function(module)
        assert len(result.checkpoint_stores) == 1
        offender = result.checkpoint_stores[0]
        assert offender.opcode == "store"
        # Instruction 10 stores 88 to B (mem[1]).
        assert offender.value.value == 88
        assert offender.ref.index.value == 1

    def test_checkpointable(self):
        module, _ = build_figure4_region()
        result = analyze_whole_function(module)
        assert result.checkpointable

    def test_exposed_address_is_b_at_bb5(self):
        module, _ = build_figure4_region()
        result = analyze_whole_function(module)
        exposed_bb5 = result.ea["bb5"]
        assert len(exposed_bb5) == 1
        key = next(iter(exposed_bb5))
        assert key.objs == frozenset(["mem"]) and key.index == 1

    def test_guarded_addresses_grow_along_paths(self):
        module, _ = build_figure4_region()
        result = analyze_whole_function(module)
        assert result.ga["bb1"] == set()
        ga_bb2 = {(next(iter(k.objs)), k.index) for k in result.ga["bb2"]}
        assert ("mem", 0) in ga_bb2  # A stored in bb1
        ga_bb8 = {k.index for k in result.ga["bb8"]}
        assert {0, 1, 2} <= ga_bb8  # A, B, C all guaranteed by bb6/joins

    def test_reachable_stores_at_entry_include_all(self):
        module, _ = build_figure4_region()
        result = analyze_whole_function(module)
        indices = sorted(key.index for _, key in result.rs["bb1"])
        # Stores 1,2,3,5,9,10,12 -> addresses 0,1,2 repeatedly.
        assert indices.count(0) == 2  # A stored twice (1 and 9)
        assert indices.count(1) == 2  # B stored twice (2 and 10)
        assert indices.count(2) == 3  # C stored thrice (3, 5, 12)


class TestAcyclicPatterns:
    def _region(self, emit):
        module = Module()
        mem = module.add_global("mem", 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        emit(b, mem)
        return module

    def test_store_only_region_is_idempotent(self):
        def emit(b, mem):
            b.block("entry")
            b.store(mem, 0, 1)
            b.store(mem, 1, 2)
            b.ret(0)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.IDEMPOTENT

    def test_load_then_store_same_address_violates(self):
        def emit(b, mem):
            b.block("entry")
            v = b.load(mem, 0)
            b.store(mem, 0, b.add(v, 1))
            b.ret(0)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.NON_IDEMPOTENT
        assert len(result.checkpoint_stores) == 1

    def test_store_then_load_same_address_is_fine(self):
        def emit(b, mem):
            b.block("entry")
            b.store(mem, 0, 5)
            v = b.load(mem, 0)
            b.ret(v)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.IDEMPOTENT

    def test_load_and_store_different_addresses_fine(self):
        def emit(b, mem):
            b.block("entry")
            v = b.load(mem, 0)
            b.store(mem, 1, v)
            b.ret(0)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.IDEMPOTENT

    def test_parallel_branches_no_false_war(self):
        # Load on one arm, store on the other: no path executes both
        # in load-then-store order starting from the load.
        def emit(b, mem):
            b.block("entry")
            c = b.cmp("eq", 1, 1)
            b.br(c, "left", "right")
            b.block("left")
            b.load(mem, 0)
            b.jmp("join")
            b.block("right")
            b.store(mem, 0, 9)
            b.jmp("join")
            b.block("join")
            b.ret(0)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.IDEMPOTENT

    def test_guard_must_hold_on_all_paths(self):
        # Store guards the load on one path only: still exposed.
        def emit(b, mem):
            b.block("entry")
            c = b.cmp("eq", 1, 1)
            b.br(c, "guarded", "unguarded")
            b.block("guarded")
            b.store(mem, 0, 1)
            b.jmp("join")
            b.block("unguarded")
            b.mov(0)
            b.jmp("join")
            b.block("join")
            v = b.load(mem, 0)
            b.store(mem, 0, b.add(v, 1))
            b.ret(0)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_symbolic_index_conservative(self):
        # load mem[i]; store mem[j]: static analysis must assume overlap.
        def emit(b, mem):
            b.block("entry")
            i = b.mov(2)
            j = b.mov(3)
            v = b.load(mem, i)
            b.store(mem, j, v)
            b.ret(0)

        result = analyze_whole_function(self._region(emit))
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_symbolic_index_optimistic_mode(self):
        def emit(b, mem):
            b.block("entry")
            i = b.mov(2)
            j = b.mov(3)
            v = b.load(mem, i)
            b.store(mem, j, v)
            b.ret(0)

        module = self._region(emit)
        alias = AliasAnalysis(module, mode="optimistic")
        result = analyze_whole_function(module, alias=alias)
        assert result.status is RegionStatus.IDEMPOTENT

    def test_external_call_makes_region_unknown(self):
        def emit(b, mem):
            b.block("entry")
            b.call("libc_mystery", [])
            b.ret(0)

        module = self._region(emit)
        module.declare_external("libc_mystery")
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.UNKNOWN
        assert not result.checkpointable


class TestLoops:
    def test_accumulator_loop_violates(self):
        # sum[0] += arr[i] in a loop: load of sum then store of sum.
        module = Module()
        arr = module.add_global("arr", 8, init=list(range(8)))
        acc = module.add_global("acc", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, i)
        b.jmp("header")
        b.block("header")
        c = b.cmp("slt", i, 8)
        b.br(c, "body", "exit")
        b.block("body")
        v = b.load(arr, i)
        cur = b.load(acc, 0)
        b.store(acc, 0, b.add(cur, v))
        b.add(i, 1, i)
        b.jmp("header")
        b.block("exit")
        b.ret(0)
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.NON_IDEMPOTENT
        # Only the store to acc offends; arr is never written.
        stores = result.checkpoint_stores
        assert len(stores) == 1
        assert stores[0].ref.base.name == "acc"

    def test_write_only_loop_idempotent(self):
        module, _ = build_counted_loop(8)
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.IDEMPOTENT

    def test_cross_iteration_war_detected(self):
        # Each iteration reads arr[i-1] (written by the previous one) and
        # writes arr[i]: exposed-load-then-store across iterations.
        module = Module()
        arr = module.add_global("arr", 9, init=[1])
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(1, i)
        b.jmp("header")
        b.block("header")
        c = b.cmp("slt", i, 9)
        b.br(c, "body", "exit")
        b.block("body")
        prev = b.sub(i, 1)
        v = b.load(arr, prev)
        b.store(arr, i, b.add(v, 1))
        b.add(i, 1, i)
        b.jmp("header")
        b.block("exit")
        b.ret(0)
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_nested_write_only_loops_idempotent(self):
        module, _ = build_nested_loops()
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.IDEMPOTENT

    def test_loop_summary_meta(self):
        module, _ = build_counted_loop(8)
        analyzer = IdempotenceAnalyzer(module)
        forest = analyzer.forest("main")
        summary = analyzer._loop_summary("main", forest.loops[0])
        # AS_l: the single store to arr.
        assert len(summary.access.may_stores) == 1
        assert not summary.violating
        assert not summary.unknown


class TestProfilePruning:
    def _cold_path_module(self):
        """Hot path is idempotent; a cold path carries the only WAR."""
        module = Module()
        mem = module.add_global("mem", 4)
        flag = module.add_global("flag", 1)  # 0 -> hot path only
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        f = b.load(flag, 0)
        b.br(f, "cold", "hot")
        b.block("cold")
        v = b.load(mem, 0)
        b.store(mem, 0, b.add(v, 1))  # WAR on the cold path
        b.jmp("join")
        b.block("hot")
        b.store(mem, 1, 7)
        b.jmp("join")
        b.block("join")
        b.ret(0)
        return module

    def test_unpruned_analysis_sees_cold_war(self):
        module = self._cold_path_module()
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_pmin_zero_prunes_unexecuted_cold_path(self):
        module = self._cold_path_module()
        profile = profile_module(module)
        assert profile.block_count("main", "cold") == 0
        analyzer = IdempotenceAnalyzer(module, profile=profile, pmin=0.0)
        func = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        assert result.status is RegionStatus.IDEMPOTENT

    def test_pmin_none_disables_pruning(self):
        module = self._cold_path_module()
        profile = profile_module(module)
        analyzer = IdempotenceAnalyzer(module, profile=profile, pmin=None)
        func = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_fully_pruned_region_trivially_idempotent(self):
        module = self._cold_path_module()
        profile = profile_module(module)
        analyzer = IdempotenceAnalyzer(module, profile=profile, pmin=0.0)
        result = analyzer.analyze_region("main", frozenset({"cold"}), "cold")
        assert result.status is RegionStatus.IDEMPOTENT


class TestCalls:
    def test_analyzable_callee_effects_propagate(self):
        # Callee reads then writes a global: WAR visible at the call site.
        module = Module()
        g = module.add_global("g", 1)
        callee = module.add_function("bump")
        cb = IRBuilder(callee)
        cb.block("entry")
        v = cb.load(g, 0)
        cb.store(g, 0, cb.add(v, 1))
        cb.ret(0)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.call("bump", [])
        b.ret(0)
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.NON_IDEMPOTENT
        # The offender is the call; the callee's concrete target address
        # is checkpointed just before the call.
        assert result.checkpointable
        site = result.checkpoint_sites[0]
        assert site.inst.opcode == "call"
        assert len(site.refs) == 1
        assert site.refs[0].base.name == "g"

    def test_callee_stack_objects_are_frame_private(self):
        module = Module()
        callee = module.add_function("scratch")
        buf = callee.add_stack_object("buf", 2)
        cb = IRBuilder(callee)
        cb.block("entry")
        v = cb.load(buf, 0)
        cb.store(buf, 0, cb.add(v, 1))
        cb.ret(0)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.call("scratch", [])
        b.ret(0)
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.IDEMPOTENT

    def test_recursion_is_unknown(self):
        module = Module()
        from repro.ir import VirtualRegister

        n = VirtualRegister("n")
        f = module.add_function("f", params=[n])
        fb = IRBuilder(f)
        fb.block("entry")
        c = fb.cmp("sle", n, 0)
        fb.br(c, "base", "rec")
        fb.block("base")
        fb.ret(0)
        fb.block("rec")
        fb.call("f", [fb.sub(n, 1)])
        fb.ret(0)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.call("f", [3])
        b.ret(0)
        result = analyze_whole_function(module)
        assert result.status is RegionStatus.UNKNOWN
