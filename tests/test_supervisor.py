"""Recovery-supervisor tests: bounded livelock, the escalation ladder,
the per-attempt watchdog, and the double-fault model — each on a
hand-built module whose dynamic schedule is small enough to reason
about every rollback."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir.instructions import (
    ClearRecoveryPtr,
    Jump,
    RestoreCheckpoints,
    SetRecoveryPtr,
)
from repro.runtime import (
    RecoverySupervisor,
    SupervisorPolicy,
    golden_run,
    run_trial,
)


def build_livein_trap_module(filler=0):
    """A region whose index is computed *before* region entry.

    Dynamic schedule: 0 ``t = add 2, 0``; 1 jmp; 2 set_recovery_ptr;
    3 load arr[t]; 4 store; then ``filler`` adds; ret.  Corrupting
    ``t`` (a live-in the hand instrumentation deliberately does not
    checkpoint) makes the load trap — and rollback re-enters the region
    with ``t`` still corrupt, so every retry traps again: the canonical
    recovery livelock.
    """
    module = Module("livein")
    arr = module.add_global("arr", 4)
    out = module.add_global("out", 1)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    t = b.add(2, 0)
    b.jmp("region")
    region = b.block("region")
    region.instructions.append(SetRecoveryPtr(0, "rec"))
    u = b.load(arr, t)
    b.store(out, 0, u)
    for _ in range(filler):
        b.add(0, 0)
    b.ret(u)
    rec = b.block("rec")
    rec.instructions.append(RestoreCheckpoints(0))
    rec.instructions.append(Jump("region"))
    return module


def build_livein_spin_module():
    """Like :func:`build_livein_trap_module`, but the corruption causes
    a silent spin instead of a trap: the region loops until ``t == 2``,
    which a corrupted live-in never satisfies — and rollback cannot fix.
    """
    module = Module("spin")
    out = module.add_global("out", 1)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    t = b.add(2, 0)
    b.jmp("region")
    region = b.block("region")
    region.instructions.append(SetRecoveryPtr(0, "rec"))
    b.jmp("header")
    b.block("header")
    cond = b.cmp("eq", t, 2)
    b.br(cond, "done", "spin")
    b.block("spin")
    b.jmp("header")
    b.block("done")
    b.store(out, 0, t)
    b.ret(t)
    rec = b.block("rec")
    rec.instructions.append(RestoreCheckpoints(0))
    rec.instructions.append(Jump("region"))
    return module


def build_exit_cleared_module(filler=8):
    """A region followed by a ``clear_recovery_ptr`` exit edge and a
    tail of ``filler`` dead adds before the result is stored.

    Dynamic schedule: 0 ``t = add 2, 0``; 1 jmp; 2 set_recovery_ptr;
    3 ``u = load arr[t]``; 4 jmp; 5 clear_recovery_ptr; 6.. filler
    adds; store; ret.
    """
    module = Module("exitclear")
    arr = module.add_global("arr", 4)
    out = module.add_global("out", 1)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    t = b.add(2, 0)
    b.jmp("region")
    region = b.block("region")
    region.instructions.append(SetRecoveryPtr(0, "rec"))
    u = b.load(arr, t)
    b.jmp("tail")
    tail = b.block("tail")
    tail.instructions.append(ClearRecoveryPtr(0))
    for _ in range(filler):
        b.add(0, 0)
    b.store(out, 0, u)
    b.ret(u)
    rec = b.block("rec")
    rec.instructions.append(RestoreCheckpoints(0))
    rec.instructions.append(Jump("region"))
    return module


class _FlakyIndex:
    """Stateful external: returns a trapping index for the first
    ``bad_calls`` invocations, then the golden index."""

    def __init__(self, bad_calls):
        self.calls = 0
        self.bad_calls = bad_calls

    def __call__(self, args):
        self.calls += 1
        return 18 if self.calls <= self.bad_calls else 2


def build_flaky_call_module():
    """Region whose index comes from the ``flaky`` external."""
    module = Module("flaky")
    arr = module.add_global("arr", 4)
    out = module.add_global("out", 1)
    module.externals.add("flaky")
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    b.jmp("region")
    region = b.block("region")
    region.instructions.append(SetRecoveryPtr(0, "rec"))
    t = b.call("flaky", [])
    u = b.load(arr, t)
    b.store(out, 0, u)
    b.ret(u)
    rec = b.block("rec")
    rec.instructions.append(RestoreCheckpoints(0))
    rec.instructions.append(Jump("region"))
    return module


class TestPolicyValidation:
    def test_rejects_non_positive_attempts(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_attempts=0)

    def test_rejects_non_positive_step_budget(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(attempt_step_budget=0)

    def test_defaults(self):
        policy = SupervisorPolicy()
        assert policy.max_attempts == 3
        assert policy.attempt_step_budget is None


class TestLivelockBound:
    def test_trap_livelock_terminates_within_k_attempts(self):
        # The corrupted live-in re-traps on every retry; the supervisor
        # must stop after exactly max_attempts consecutive rollbacks
        # plus the escalating one — never the interpreter step limit.
        module = build_livein_trap_module()
        golden = golden_run(module, output_objects=["out"])
        for k in (1, 2, 5):
            trial = run_trial(
                module, golden, site=0, bit=4, latency=None,
                output_objects=["out"],
                policy=SupervisorPolicy(max_attempts=k),
            )
            assert trial.outcome == "livelock"
            assert trial.recovery_attempts == k + 1
            assert trial.trapped

    def test_trap_livelock_with_default_policy(self):
        module = build_livein_trap_module()
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=0, bit=4, latency=None,
            output_objects=["out"],
        )
        assert trial.outcome == "livelock"
        assert trial.recovery_attempts == SupervisorPolicy().max_attempts + 1

    def test_flaky_region_recovers_after_retry(self):
        # Two consecutive re-traps, then the external heals: the trial
        # ends correct, marked as a multi-attempt recovery.
        module = build_flaky_call_module()
        golden = golden_run(
            module, output_objects=["out"], externals={"flaky": _FlakyIndex(0)}
        )
        trial = run_trial(
            module, golden, site=10_000, bit=0, latency=None,
            output_objects=["out"], externals={"flaky": _FlakyIndex(2)},
        )
        assert trial.outcome == "recovered_after_retry"
        assert trial.recovery_attempts == 2
        assert trial.retries == 1

    def test_flaky_region_beyond_bound_livelocks(self):
        module = build_flaky_call_module()
        golden = golden_run(
            module, output_objects=["out"], externals={"flaky": _FlakyIndex(0)}
        )
        trial = run_trial(
            module, golden, site=10_000, bit=0, latency=None,
            output_objects=["out"], externals={"flaky": _FlakyIndex(50)},
            policy=SupervisorPolicy(max_attempts=3),
        )
        assert trial.outcome == "livelock"
        assert trial.recovery_attempts == 4


class TestWatchdog:
    def test_spin_without_watchdog_hangs_to_step_limit(self):
        module = build_livein_spin_module()
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=0, bit=4, latency=3,
            output_objects=["out"],
        )
        assert trial.outcome == "detected_unrecoverable"
        assert trial.hang

    def test_watchdog_rerolls_and_bounds_the_spin(self):
        # With a per-attempt step budget the silent spin is re-rolled
        # (charging attempts) until the livelock bound fires — in
        # deterministic dynamic-instruction units.
        module = build_livein_spin_module()
        golden = golden_run(module, output_objects=["out"])
        policy = SupervisorPolicy(max_attempts=3, attempt_step_budget=40)
        trial = run_trial(
            module, golden, site=0, bit=4, latency=3,
            output_objects=["out"], policy=policy,
        )
        assert trial.outcome == "livelock"
        assert trial.recovery_attempts == 4
        assert not trial.hang

    def test_watchdog_determinism(self):
        module = build_livein_spin_module()
        golden = golden_run(module, output_objects=["out"])
        policy = SupervisorPolicy(max_attempts=2, attempt_step_budget=25)
        trials = [
            run_trial(module, golden, site=0, bit=4, latency=3,
                      output_objects=["out"], policy=policy)
            for _ in range(3)
        ]
        assert all(t == trials[0] for t in trials)


class TestRegionExitClearing:
    def test_detection_after_region_exit_is_escape(self):
        # The primary fault corrupts u harmlessly-late: its deadline
        # fires after the clear_recovery_ptr exit edge, where no
        # rollback target is live any more.
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        # Fault on the load result (event 3), detected 6 events later —
        # two events after the exit clear at event 5.
        trial = run_trial(
            module, golden, site=3, bit=1, latency=6,
            output_objects=["out"],
        )
        assert trial.outcome == "escape_unrecoverable"
        assert trial.recovery_attempts == 1
        assert not trial.trapped

    def test_detection_before_region_exit_recovers(self):
        # Same fault, but the deadline fires while the pointer is live.
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=3, bit=1, latency=1,
            output_objects=["out"],
        )
        assert trial.outcome == "recovered"
        assert trial.recovery_attempts == 1

    def test_detection_on_the_exit_edge_itself_is_escape(self):
        # The deadline lands exactly on the clear_recovery_ptr event
        # (site 3 + latency 2 = event 5).  Detection is a post-step
        # hook, so the clear has already executed when the deadline
        # fires: the exit edge wins the race and the trial pins as
        # escape_unrecoverable — never a stale-pointer rollback into a
        # region whose undo log was just dropped.
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=3, bit=1, latency=2,
            output_objects=["out"],
        )
        assert trial.outcome == "escape_unrecoverable"
        assert trial.recovery_attempts == 1
        assert not trial.trapped

    def test_detection_one_event_before_the_exit_edge_recovers(self):
        # One dynamic instruction earlier (deadline = event 4, the jmp
        # onto the exit edge) the pointer is still live: the same fault
        # rolls back and recovers.  Together with the test above this
        # pins the exit-edge boundary to exactly one event.
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=3, bit=1, latency=1,
            output_objects=["out"],
        )
        assert trial.outcome == "recovered"
        assert trial.recovery_attempts == 1

    def test_trap_after_region_exit_is_detected_unrecoverable(self):
        # A second fault corrupts the store index after the clear: the
        # trap finds no live pointer — restart territory, reported as
        # detected_unrecoverable (a symptom fired but nothing was live).
        module = Module("latetrap")
        arr = module.add_global("arr", 4)
        out = module.add_global("out", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        t = b.add(2, 0)
        b.jmp("region")
        region = b.block("region")
        region.instructions.append(SetRecoveryPtr(0, "rec"))
        u = b.load(arr, t)
        b.jmp("tail")
        tail = b.block("tail")
        tail.instructions.append(ClearRecoveryPtr(0))
        v = b.add(u, 0)          # event 6: second fault target
        b.store(out, v, 1)       # traps when v is corrupted OOB
        b.ret(v)
        rec = b.block("rec")
        rec.instructions.append(RestoreCheckpoints(0))
        rec.instructions.append(Jump("region"))
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=[6], bit=[4], latency=[None],
            output_objects=["out"],
        )
        assert trial.outcome == "detected_unrecoverable"
        assert trial.trapped
        assert trial.recovery_attempts == 1


def build_flaky_exit_cleared_module(filler=8):
    """Region indexed by the ``flaky`` external, with a cleared exit
    edge and a dead-add tail (the recovery-window strike target)."""
    module = Module("flakyclear")
    arr = module.add_global("arr", 4)
    out = module.add_global("out", 1)
    module.externals.add("flaky")
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    b.jmp("region")
    region = b.block("region")
    region.instructions.append(SetRecoveryPtr(0, "rec"))
    t = b.call("flaky", [])
    u = b.load(arr, t)
    b.jmp("tail")
    tail = b.block("tail")
    tail.instructions.append(ClearRecoveryPtr(0))
    for _ in range(filler):
        b.add(0, 0)
    b.store(out, 0, u)
    b.ret(u)
    rec = b.block("rec")
    rec.instructions.append(RestoreCheckpoints(0))
    rec.instructions.append(Jump("region"))
    return module


class TestDoubleFaultModel:
    def test_recovery_window_fault_defeats_recovery(self):
        # The external traps once, recovery re-executes it cleanly —
        # but the planned recovery-window fault strikes the re-computed
        # index, and its deadline fires after the region's exit clear:
        # nothing is live to roll back to.
        module = build_flaky_exit_cleared_module(filler=8)
        golden = golden_run(
            module, output_objects=["out"], externals={"flaky": _FlakyIndex(0)}
        )
        trial = run_trial(
            module, golden, site=10_000, bit=0, latency=None,
            output_objects=["out"], externals={"flaky": _FlakyIndex(1)},
            recovery_faults=[(1, 0, 8)],
        )
        assert trial.double_faults == 1
        assert trial.outcome == "double_fault_unrecoverable"
        assert trial.recovery_attempts == 2

    def test_recovery_window_fault_detected_in_region_retries(self):
        # The recovery-window strike is harmless to the output (bit 0
        # of a zero-initialised load) and its deadline fires while the
        # pointer is still live: one extra rollback, then success.
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=3, bit=1, latency=1,
            output_objects=["out"],
            recovery_faults=[(1, 0, 1)],
        )
        assert trial.double_faults == 1
        assert trial.outcome in ("recovered", "recovered_after_retry")
        assert trial.recovery_attempts >= 2

    def test_no_recovery_means_no_double_faults(self):
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden, site=10_000, bit=0, latency=None,
            output_objects=["out"],
            recovery_faults=[(1, 7, 2)],
        )
        assert trial.outcome == "masked"
        assert trial.double_faults == 0

    def test_supervisor_arms_one_recovery_fault_per_rollback(self):
        supervisor = RecoverySupervisor(
            recovery_faults=((2, 3, None), (4, 5, None)),
        )
        assert len(supervisor.pending_recovery_faults) == 2


class TestDetectLatencyNormalization:
    def test_multifault_latency_reports_first_struck_fault(self):
        # Two planned faults with distinct latencies; only the second
        # site is reachable (the first lands past the end of the run's
        # dynamic schedule, i.e. dead time).  detect_latency must be
        # the latency of the fault that actually fired — not a verbatim
        # copy of the plan's latency list.
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden,
            site=[3, 10_000], bit=[1, 2], latency=[1, 9],
            output_objects=["out"],
        )
        assert trial.detect_latency == 1

    def test_dead_time_multifault_reports_none(self):
        module = build_exit_cleared_module(filler=8)
        golden = golden_run(module, output_objects=["out"])
        trial = run_trial(
            module, golden,
            site=[10_000, 20_000], bit=[1, 2], latency=[3, 9],
            output_objects=["out"],
        )
        assert trial.detect_latency is None
        assert trial.outcome == "masked"
