"""Tests for the pass-manager core: scheduling, caching, observability."""

import dataclasses

import pytest

from repro.encore import EncoreConfig
from repro.experiments.harness import config_key
from repro.pipeline import (
    AnalysisCache,
    Pass,
    PassManager,
    PipelineStats,
    module_fingerprint,
)
from helpers import build_counted_loop


@dataclasses.dataclass
class ToyConfig:
    pmin: float = 0.0
    gamma: float = 1.0


class RecordingPass(Pass):
    """Analysis pass that logs its executions into a shared trace."""

    def __init__(self, name, trace, requires=(), config_keys=(),
                 portable=False, result=None):
        self.name = name
        self.requires = tuple(requires)
        self.config_keys = tuple(config_keys)
        self.portable = portable
        self.trace = trace
        self.result = result if result is not None else name + "-product"

    def run(self, ctx):
        self.trace.append(self.name)
        return self.result


class ToyTransform(Pass):
    is_transform = True

    def __init__(self, name="mutate", preserves=()):
        self.name = name
        self.preserves = tuple(preserves)

    def run(self, ctx):
        ctx.module.add_global(f"mutated{len(ctx.module.globals)}", 1)
        return "mutated"


def make_manager(trace, config=None, cache=None, stats=None, passes=None):
    module, _ = build_counted_loop(4)
    if passes is None:
        passes = [
            RecordingPass("a", trace, portable=True, config_keys=("pmin",)),
            RecordingPass("b", trace, requires=("a",)),
            RecordingPass("c", trace, requires=("b",)),
        ]
    return PassManager(
        module,
        config=config or ToyConfig(),
        passes=passes,
        cache=cache,
        stats=stats,
    )


class TestScheduling:
    def test_requires_run_in_dependency_order(self):
        trace = []
        manager = make_manager(trace)
        assert manager.run("c") == "c-product"
        assert trace == ["a", "b", "c"]

    def test_analysis_products_memoized_within_compilation(self):
        trace = []
        manager = make_manager(trace)
        first = manager.run("c")
        second = manager.run("c")
        assert first is second
        assert trace == ["a", "b", "c"]  # no re-execution

    def test_unknown_pass_raises(self):
        manager = make_manager([])
        with pytest.raises(KeyError):
            manager.run("nonexistent")

    def test_duplicate_registration_rejected(self):
        trace = []
        with pytest.raises(ValueError):
            make_manager(trace, passes=[
                RecordingPass("a", trace), RecordingPass("a", trace),
            ])

    def test_dependency_cycle_detected(self):
        trace = []
        manager = make_manager(trace, passes=[
            RecordingPass("x", trace, requires=("y",)),
            RecordingPass("y", trace, requires=("x",)),
        ])
        with pytest.raises(RuntimeError, match="cycle"):
            manager.run("x")

    def test_seeded_product_skips_execution(self):
        trace = []
        manager = make_manager(trace)
        manager.seed("a", "external-profile")
        assert manager.run("c") == "c-product"
        assert "a" not in trace  # seeded, never executed


class TestAnalysisCache:
    def test_portable_product_shared_across_compilations(self):
        cache = AnalysisCache()
        trace = []
        first = make_manager(trace, cache=cache)
        second = make_manager(trace, cache=cache)  # fresh module, same text
        first.run("a")
        second.run("a")
        assert trace == ["a"]  # second compilation served from cache
        assert cache.hits == 1 and cache.misses == 1

    def test_non_portable_product_not_shared(self):
        cache = AnalysisCache()
        trace = []
        make_manager(trace, cache=cache).run("b")
        make_manager(trace, cache=cache).run("b")
        assert trace.count("b") == 2

    def test_config_slice_controls_sharing(self):
        # "a" reads only pmin: a gamma change must share, a pmin change
        # must not.
        cache = AnalysisCache()
        trace = []
        make_manager(trace, config=ToyConfig(pmin=0.0, gamma=1.0),
                     cache=cache).run("a")
        make_manager(trace, config=ToyConfig(pmin=0.0, gamma=9.0),
                     cache=cache).run("a")
        assert trace == ["a"]
        make_manager(trace, config=ToyConfig(pmin=0.5, gamma=1.0),
                     cache=cache).run("a")
        assert trace == ["a", "a"]

    def test_fingerprint_tracks_module_content(self):
        module, _ = build_counted_loop(4)
        other, _ = build_counted_loop(5)
        same, _ = build_counted_loop(4)
        assert module_fingerprint(module) == module_fingerprint(same)
        assert module_fingerprint(module) != module_fingerprint(other)

    def test_invalidate_by_fingerprint(self):
        cache = AnalysisCache()
        cache.store(("fp1", "a", (), ()), 1)
        cache.store(("fp1", "b", (), ()), 2)
        cache.store(("fp2", "a", (), ()), 3)
        assert cache.invalidate("fp1") == 2
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_get_or_create_returns_same_accumulator(self):
        cache = AnalysisCache()
        store = cache.get_or_create(("fp", "verdicts", ()), dict)
        store["k"] = "v"
        again = cache.get_or_create(("fp", "verdicts", ()), dict)
        assert again is store and again["k"] == "v"
        assert cache.hits == 0 and cache.misses == 0  # no accounting


class TestTransformInvalidation:
    def test_transform_drops_non_preserved_products(self):
        trace = []
        manager = make_manager(trace, passes=[
            RecordingPass("a", trace),
            RecordingPass("b", trace),
            ToyTransform(preserves=("a",)),
        ])
        manager.run("a")
        manager.run("b")
        manager.run("mutate")
        assert "a" in manager.ctx.results  # preserved
        assert "b" not in manager.ctx.results  # invalidated
        manager.run("b")
        assert trace == ["a", "b", "b"]  # b recomputed after the transform

    def test_transform_dirties_fingerprint(self):
        trace = []
        manager = make_manager(trace, passes=[ToyTransform()])
        before = manager.fingerprint()
        manager.run("mutate")
        assert manager.fingerprint() != before

    def test_transform_always_reexecutes(self):
        trace = []
        transform = ToyTransform()
        manager = make_manager(trace, passes=[transform])
        manager.run("mutate")
        manager.run("mutate")
        assert manager.stats.stat("mutate").runs == 2

    def test_scratch_entries_survive_invalidation(self):
        trace = []
        manager = make_manager(trace, passes=[ToyTransform()])
        manager.ctx.results["opt.counts"] = {"main": 3}
        manager.run("mutate")
        assert manager.ctx.results["opt.counts"] == {"main": 3}


class TestStats:
    def test_runs_and_cache_hits_accounted(self):
        cache = AnalysisCache()
        stats = PipelineStats()
        trace = []
        make_manager(trace, cache=cache, stats=stats).run("a")
        make_manager(trace, cache=cache, stats=stats).run("a")
        stat = stats.stat("a")
        assert stat.runs == 2
        assert stat.cache_hits == 1
        assert stat.executed == 1

    def test_render_timing_lists_executed_passes(self):
        trace = []
        manager = make_manager(trace)
        manager.run("c")
        report = manager.stats.render_timing()
        assert "Pass execution timing report" in report
        for name in ("a", "b", "c"):
            assert name in report

    def test_render_counters_lists_bumped_counters(self):
        stats = PipelineStats()
        stats.bump("profile", "blocks_counted", 17)
        text = stats.render_counters()
        assert "profile.blocks_counted" in text
        assert "17" in text

    def test_merge_accumulates(self):
        a, b = PipelineStats(), PipelineStats()
        a.stat("p").runs = 1
        a.bump("p", "widgets", 2)
        b.stat("p").runs = 3
        b.bump("p", "widgets", 5)
        a.merge(b)
        assert a.stat("p").runs == 4
        assert a.counter("p", "widgets") == 7


class TestConfigKey:
    def test_covers_every_encore_config_field(self):
        key = config_key(EncoreConfig())
        assert len(key) == len(dataclasses.fields(EncoreConfig))

    def test_distinguishes_and_equates(self):
        assert config_key(EncoreConfig(pmin=0.1)) != config_key(EncoreConfig())
        assert config_key(EncoreConfig(pmin=0.1)) == config_key(
            EncoreConfig(pmin=0.1)
        )


class TestConfigValidation:
    def test_granularity_typo_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            EncoreConfig(granularity="intervals")

    def test_alias_mode_typo_rejected(self):
        with pytest.raises(ValueError, match="alias_mode"):
            EncoreConfig(alias_mode="profile")

    def test_valid_values_accepted(self):
        for granularity in ("interval", "function"):
            for alias_mode in ("static", "optimistic", "profiled"):
                EncoreConfig(granularity=granularity, alias_mode=alias_mode)
