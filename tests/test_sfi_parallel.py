"""Differential and property tests for the parallel SFI campaign engine.

The serial-equivalence guarantee is the contract: ``run_campaign(...,
jobs=N)`` must return the exact ``TrialResult`` sequence of the serial
path for every N, every chunking, every detector, and every
``faults_per_trial``.  The guarantee rests on per-trial RNG substreams
(:func:`derive_trial_seed` / :func:`plan_trial`), which the property
tests pin down directly: a trial's fault plan is a pure function of
``(seed, trial_index, golden_events, detector, faults_per_trial)`` —
independent of campaign length, evaluation order, or chunking.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encore import compile_for_encore
from repro.runtime import (
    DetectionModel,
    FaultPlan,
    derive_trial_seed,
    plan_campaign,
    plan_trial,
    run_campaign,
)
from repro.runtime.parallel import default_chunk_size
from helpers import build_counted_loop, build_figure4_region


def _instrumented_loop(n=25):
    module, _ = build_counted_loop(n)
    return compile_for_encore(module, clone=True).module


def _campaign(module, jobs, chunk_size=None, **kwargs):
    defaults = dict(output_objects=["arr"], trials=24, seed=5,
                    detector=DetectionModel(dmax=8))
    defaults.update(kwargs)
    return run_campaign(module, jobs=jobs, chunk_size=chunk_size, **defaults)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("jobs", [2, 3, 4])
    def test_identical_trial_sequences(self, jobs):
        module = _instrumented_loop()
        serial = _campaign(module, jobs=1)
        parallel = _campaign(module, jobs=jobs)
        assert serial.trials == parallel.trials
        assert parallel.jobs == jobs

    @pytest.mark.parametrize("detector", [
        DetectionModel(dmax=5, kind="uniform"),
        DetectionModel(dmax=30, kind="fixed"),
        DetectionModel(dmax=20, kind="geometric"),
        DetectionModel(dmax=10, coverage=0.5),
    ], ids=["uniform", "fixed", "geometric", "half-coverage"])
    def test_equivalence_across_detectors(self, detector):
        module = _instrumented_loop()
        serial = _campaign(module, jobs=1, detector=detector)
        parallel = _campaign(module, jobs=2, detector=detector)
        assert serial.trials == parallel.trials

    def test_equivalence_on_uninstrumented_module(self):
        module, _ = build_counted_loop(25)
        serial = _campaign(module, jobs=1)
        parallel = _campaign(module, jobs=2)
        assert serial.trials == parallel.trials

    def test_equivalence_with_function_args(self):
        module, _ = build_figure4_region()
        report = compile_for_encore(module, args=[5], clone=True)
        kwargs = dict(args=[5], output_objects=["mem"], trials=18, seed=3,
                      detector=DetectionModel(dmax=4))
        serial = run_campaign(report.module, jobs=1, **kwargs)
        parallel = run_campaign(report.module, jobs=4, **kwargs)
        assert serial.trials == parallel.trials

    @pytest.mark.parametrize("faults", [2, 3])
    def test_multifault_equivalence(self, faults):
        module = _instrumented_loop()
        serial = _campaign(module, jobs=1, faults_per_trial=faults, trials=15)
        parallel = _campaign(module, jobs=2, faults_per_trial=faults, trials=15)
        assert serial.trials == parallel.trials

    def test_double_fault_model_equivalence(self):
        # Recovery-window faults ride the same seed-keyed substreams, so
        # the supervised double-fault campaign parallelises identically.
        module = _instrumented_loop()
        serial = _campaign(module, jobs=1, recovery_faults_per_trial=1)
        parallel = _campaign(module, jobs=3, recovery_faults_per_trial=1)
        assert serial.trials == parallel.trials

    def test_supervisor_policy_equivalence(self):
        from repro.runtime import SupervisorPolicy

        module = _instrumented_loop()
        policy = SupervisorPolicy(max_attempts=2, attempt_step_budget=200)
        serial = _campaign(module, jobs=1, policy=policy)
        parallel = _campaign(module, jobs=2, policy=policy)
        assert serial.trials == parallel.trials

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 100])
    def test_chunk_size_never_changes_results(self, chunk_size):
        module = _instrumented_loop()
        serial = _campaign(module, jobs=1)
        parallel = _campaign(module, jobs=2, chunk_size=chunk_size)
        assert serial.trials == parallel.trials

    def test_every_field_matches_not_just_outcome(self):
        module = _instrumented_loop()
        serial = _campaign(module, jobs=1)
        parallel = _campaign(module, jobs=3)
        for left, right in zip(serial.trials, parallel.trials):
            assert dataclasses.asdict(left) == dataclasses.asdict(right)

    def test_worker_tallies_cover_all_trials(self):
        module = _instrumented_loop()
        parallel = _campaign(module, jobs=2)
        assert sum(parallel.worker_trials.values()) == len(parallel.trials)
        assert parallel.elapsed > 0.0
        assert parallel.throughput > 0.0

    def test_unpicklable_externals_fall_back_to_serial(self):
        # Closure externals can't cross the process boundary; the
        # campaign must still complete (serially) with identical
        # results rather than crash.
        module, _ = build_counted_loop(20)
        externals = {"ext": lambda args: 0}
        serial = run_campaign(
            module, output_objects=["arr"], trials=8, seed=2,
            detector=DetectionModel(dmax=5), externals=externals, jobs=1,
        )
        fallback = run_campaign(
            module, output_objects=["arr"], trials=8, seed=2,
            detector=DetectionModel(dmax=5), externals=externals, jobs=2,
        )
        assert serial.trials == fallback.trials
        assert fallback.jobs == 1  # the fallback is visible in metadata

    def test_progress_reports_reach_total(self):
        module = _instrumented_loop()
        seen = []
        _campaign(module, jobs=2, progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (24, 24)
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)


class TestEngineEquivalence:
    """Campaigns are engine-independent: the fast engine's trials —
    serial or fanned out over workers (which cache one golden memory
    image per process) — are bit-identical to the reference engine's."""

    def test_serial_campaign_identical_across_engines(self):
        module = _instrumented_loop()
        fast = _campaign(module, jobs=1, engine="fast")
        reference = _campaign(module, jobs=1, engine="reference")
        for left, right in zip(fast.trials, reference.trials):
            assert dataclasses.asdict(left) == dataclasses.asdict(right)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_parallel_campaign_matches_other_engine_serial(self, engine):
        # Crosses both axes at once: jobs=2 on one engine against the
        # serial path of the *other* engine, exercising the per-worker
        # cached golden memory image on the parallel leg.
        module = _instrumented_loop()
        other = "reference" if engine == "fast" else "fast"
        parallel = _campaign(module, jobs=2, engine=engine)
        serial = _campaign(module, jobs=1, engine=other)
        assert parallel.trials == serial.trials

    def test_default_engine_matches_explicit(self):
        module = _instrumented_loop()
        assert _campaign(module, jobs=1).trials == \
            _campaign(module, jobs=1, engine="fast").trials

    def test_double_fault_and_metadata_models_across_engines(self):
        module = _instrumented_loop()
        kwargs = dict(recovery_faults_per_trial=1,
                      metadata_faults_per_trial=1,
                      metadata_guard="checksum", trials=12)
        fast = _campaign(module, jobs=1, engine="fast", **kwargs)
        reference = _campaign(module, jobs=1, engine="reference", **kwargs)
        assert fast.trials == reference.trials


class TestSeedKeyedPlans:
    @given(seed=st.integers(0, 2**32), index=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_trial_seed_is_a_pure_function(self, seed, index):
        assert derive_trial_seed(seed, index) == derive_trial_seed(seed, index)

    def test_trial_seeds_do_not_collide_in_practice(self):
        seeds = {derive_trial_seed(s, i) for s in range(20) for i in range(200)}
        assert len(seeds) == 20 * 200

    @given(
        seed=st.integers(0, 2**16),
        events=st.integers(1, 5_000),
        faults=st.integers(1, 4),
        short=st.integers(1, 50),
        long=st.integers(51, 400),
    )
    @settings(max_examples=40, deadline=None)
    def test_plans_are_prefix_stable(self, seed, events, faults, short, long):
        # Growing a campaign never changes the trials already planned:
        # trial i's plan is independent of how many trials follow it.
        detector = DetectionModel(dmax=25)
        small = plan_campaign(seed, short, events, detector, faults)
        big = plan_campaign(seed, long, events, detector, faults)
        assert big[:short] == small

    @given(
        seed=st.integers(0, 2**16),
        trials=st.integers(1, 120),
        events=st.integers(1, 5_000),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_plans_stable_under_chunking_permutations(
        self, seed, trials, events, data
    ):
        # Evaluating trials in any shuffled chunk order reproduces the
        # in-order plan list — the exact property the process pool
        # relies on when chunks complete out of order.
        detector = DetectionModel(dmax=10)
        in_order = plan_campaign(seed, trials, events, detector)
        indices = list(range(trials))
        data.draw(st.randoms(use_true_random=False)).shuffle(indices)
        chunk = data.draw(st.integers(1, max(1, trials)))
        shuffled = []
        for start in range(0, trials, chunk):
            for index in indices[start:start + chunk]:
                shuffled.append(plan_trial(seed, index, events, detector))
        assert sorted(shuffled, key=lambda p: p.trial_index) == in_order

    @given(seed=st.integers(0, 2**16), index=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_plan_shape_invariants(self, seed, index):
        detector = DetectionModel(dmax=12, coverage=0.7)
        plan = plan_trial(seed, index, 300, detector, faults_per_trial=3)
        assert isinstance(plan, FaultPlan)
        assert plan.trial_index == index
        assert len(plan.sites) == len(plan.bits) == len(plan.latencies) == 3
        assert list(plan.sites) == sorted(plan.sites)
        assert all(0 <= site < 300 for site in plan.sites)
        assert all(0 <= bit < 32 for bit in plan.bits)
        assert all(
            latency is None or 0 <= latency <= 12 for latency in plan.latencies
        )

    @given(seed=st.integers(0, 2**16), index=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_recovery_draws_do_not_disturb_primary_plan(self, seed, index):
        # The double-fault fields draw after the primary fields, so
        # enabling them never changes a campaign's primary fault plans —
        # old journals and old results stay comparable.
        detector = DetectionModel(dmax=12)
        plain = plan_trial(seed, index, 300, detector, faults_per_trial=2)
        extended = plan_trial(
            seed, index, 300, detector, faults_per_trial=2,
            recovery_faults_per_trial=2,
        )
        assert extended.sites == plain.sites
        assert extended.bits == plain.bits
        assert extended.latencies == plain.latencies
        assert plain.recovery_faults == ()
        assert len(extended.recovery_faults) == 2
        for offset, bit, latency in extended.recovery_faults:
            assert 1 <= offset <= 32
            assert 0 <= bit < 32
            assert latency is None or 0 <= latency <= 12

    @given(seed=st.integers(0, 2**16), index=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_cf_draws_come_strictly_last(self, seed, index):
        # Control-flow draws append after every older surface's draws,
        # so arming the fourth surface never disturbs the primary,
        # recovery-window, or metadata plans of an existing campaign.
        detector = DetectionModel(dmax=12)
        plain = plan_trial(
            seed, index, 300, detector, faults_per_trial=2,
            recovery_faults_per_trial=1, metadata_faults_per_trial=1,
        )
        extended = plan_trial(
            seed, index, 300, detector, faults_per_trial=2,
            recovery_faults_per_trial=1, metadata_faults_per_trial=1,
            cf_faults_per_trial=2,
        )
        assert plain.control_faults == ()
        assert dataclasses.replace(
            extended, cf_sites=(), cf_kinds=(), cf_selectors=(),
        ) == plain
        assert len(extended.control_faults) == 2
        for site, kind, selector in extended.control_faults:
            assert 0 <= site < 300
            assert kind in ("target", "wrong")
            assert 0 <= selector < 64

    def test_neighbouring_streams_are_decorrelated(self):
        # Consecutive trial indices must not produce shifted copies of
        # the same stream (the classic seed+i failure mode).
        first = random.Random(derive_trial_seed(7, 0))
        second = random.Random(derive_trial_seed(7, 1))
        a = [first.randrange(1 << 30) for _ in range(16)]
        b = [second.randrange(1 << 30) for _ in range(16)]
        assert a != b
        assert not set(a) & set(b)


class TestChunking:
    def test_default_chunk_size_balances_pool(self):
        assert default_chunk_size(400, 4) == 25
        assert default_chunk_size(3, 4) == 1
        assert default_chunk_size(1, 1) == 1
        # Never zero, even on degenerate input.
        assert default_chunk_size(0, 8) == 1
