"""Tests for detection models, masking, traces, and SFI campaigns."""

import random

import pytest

from repro.encore import EncoreConfig, compile_for_encore
from repro.runtime import (
    DetectionModel,
    MaskingModel,
    capture_trace,
    golden_run,
    run_campaign,
    run_trial,
    trace_idempotence_profile,
    window_is_idempotent,
    window_war_addresses,
)
from helpers import build_counted_loop, build_figure4_region


class TestDetectionModel:
    def test_uniform_latency_within_bounds(self):
        model = DetectionModel(dmax=100, kind="uniform")
        rng = random.Random(0)
        samples = [model.sample_latency(rng) for _ in range(500)]
        assert all(0 <= s <= 100 for s in samples)
        # Mean of U[0,100] is 50.
        assert 40 < sum(samples) / len(samples) < 60

    def test_fixed_latency(self):
        model = DetectionModel(dmax=42, kind="fixed")
        rng = random.Random(0)
        assert all(model.sample_latency(rng) == 42 for _ in range(10))

    def test_geometric_latency_truncated(self):
        model = DetectionModel(dmax=100, kind="geometric")
        rng = random.Random(0)
        samples = [model.sample_latency(rng) for _ in range(500)]
        assert all(0 <= s <= 100 for s in samples)

    def test_partial_coverage_yields_none(self):
        model = DetectionModel(dmax=10, coverage=0.0)
        rng = random.Random(0)
        assert model.sample_latency(rng) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectionModel(kind="psychic")
        with pytest.raises(ValueError):
            DetectionModel(dmax=-1)
        with pytest.raises(ValueError):
            DetectionModel(coverage=1.5)

    def test_uniform_pdf_normalizes(self):
        model = DetectionModel(dmax=100, kind="uniform")
        total = sum(model.pdf(l) for l in range(101))
        assert total == pytest.approx(1.0, rel=0.02)


class TestMaskingModel:
    def test_base_rate_near_paper_value(self):
        model = MaskingModel()
        assert 0.89 <= model.base_rate() <= 0.93

    def test_per_benchmark_rates_deterministic(self):
        model = MaskingModel()
        assert model.rate_for("164.gzip") == model.rate_for("164.gzip")
        rates = model.rates(["164.gzip", "175.vpr", "cjpeg"])
        assert len(set(rates.values())) > 1  # workload jitter differs

    def test_monte_carlo_converges_to_rate(self):
        model = MaskingModel()
        name = "181.mcf"
        estimate = model.monte_carlo_rate(name, trials=20_000)
        assert estimate == pytest.approx(model.rate_for(name), abs=0.01)

    def test_rates_bounded(self):
        model = MaskingModel()
        for name in ["a", "b", "c", "d", "e"]:
            assert 0.0 <= model.rate_for(name) <= 1.0


class TestTraces:
    def test_capture_counts_memory_events(self):
        module, _ = build_counted_loop(5)
        trace = capture_trace(module)
        stores = sum(len(s) for _, s in trace.records)
        assert stores == 5

    def test_window_war_detection(self):
        records = [
            ((("m", 0),), ()),       # load m[0]
            ((), (("m", 0),)),       # store m[0]  -> WAR
        ]
        assert window_war_addresses(records, 0, 2) == {("m", 0)}
        assert not window_is_idempotent(records, 0, 2)

    def test_store_before_load_not_war(self):
        records = [
            ((), (("m", 0),)),
            ((("m", 0),), ()),
        ]
        assert window_is_idempotent(records, 0, 2)

    def test_window_bounds_respected(self):
        records = [
            ((("m", 0),), ()),
            ((), ()),
            ((), (("m", 0),)),
        ]
        # Window of 2 starting at 0 excludes the store.
        assert window_is_idempotent(records, 0, 2)
        assert not window_is_idempotent(records, 0, 3)

    def test_profile_shapes(self):
        module, _ = build_counted_loop(50)
        trace = capture_trace(module)
        stats = trace_idempotence_profile(
            trace, window_sizes=(5, 50), samples_per_size=50
        )
        assert len(stats) == 2
        for s in stats:
            assert 0.0 <= s.fully_idempotent <= s.nearly_idempotent <= 1.0

    def test_small_windows_more_idempotent(self):
        # An accumulator loop has dense WARs; tiny windows dodge them.
        from repro.ir import IRBuilder, Module

        module = Module()
        acc = module.add_global("acc", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, i)
        b.jmp("header")
        b.block("header")
        c = b.cmp("slt", i, 40)
        b.br(c, "body", "exit")
        b.block("body")
        v = b.load(acc, 0)
        b.store(acc, 0, b.add(v, 1))
        b.add(i, 1, i)
        b.jmp("header")
        b.block("exit")
        b.ret(0)
        trace = capture_trace(module)
        stats = trace_idempotence_profile(
            trace, window_sizes=(2, 200), samples_per_size=100
        )
        assert stats[0].fully_idempotent > stats[1].fully_idempotent


class TestSFI:
    def _instrumented_loop(self, n=40):
        module, _ = build_counted_loop(n)
        report = compile_for_encore(module, clone=True)
        return report.module

    def test_golden_run_reproducible(self):
        module = self._instrumented_loop()
        g1 = golden_run(module, output_objects=["arr"])
        g2 = golden_run(module, output_objects=["arr"])
        assert g1.output == g2.output and g1.value == g2.value

    def test_trial_with_zero_latency_recovers(self):
        module = self._instrumented_loop()
        golden = golden_run(module, output_objects=["arr"])
        # Inject near the middle of the loop; detect immediately.
        trial = run_trial(
            module, golden, site=golden.events // 2, bit=4, latency=1,
            output_objects=["arr"],
        )
        assert trial.outcome in ("recovered", "masked")

    def test_campaign_outcome_fractions_sum_to_one(self):
        module = self._instrumented_loop()
        campaign = run_campaign(
            module, output_objects=["arr"], trials=40, seed=1,
            detector=DetectionModel(dmax=10),
        )
        assert sum(campaign.summary().values()) == pytest.approx(1.0)
        assert len(campaign.trials) == 40

    def test_instrumentation_improves_coverage(self):
        module, _ = build_counted_loop(40)
        detector = DetectionModel(dmax=10)
        plain = run_campaign(
            module, output_objects=["arr"], trials=60, seed=7, detector=detector
        )
        instrumented = self._instrumented_loop(40)
        hardened = run_campaign(
            instrumented, output_objects=["arr"], trials=60, seed=7,
            detector=detector,
        )
        assert hardened.covered_fraction >= plain.covered_fraction

    def test_short_latency_beats_long_latency(self):
        module = self._instrumented_loop(60)
        fast = run_campaign(
            module, output_objects=["arr"], trials=60, seed=3,
            detector=DetectionModel(dmax=5),
        )
        slow = run_campaign(
            module, output_objects=["arr"], trials=60, seed=3,
            detector=DetectionModel(dmax=2000),
        )
        assert fast.covered_fraction >= slow.covered_fraction

    def test_figure4_campaign_runs(self):
        module, _ = build_figure4_region()
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), args=[5], clone=True
        )
        campaign = run_campaign(
            report.module, args=[5], output_objects=["mem"], trials=30, seed=2,
            detector=DetectionModel(dmax=3),
        )
        assert campaign.covered_fraction > 0.5


class TestDetectorPresets:
    def test_presets_match_paper_regimes(self):
        from repro.runtime import FUTURE_DETECTOR, SHOESTRING_LIKE, SPECULATIVE_HW

        # Figure 8's three columns: 1000 / 100 / 10 instructions.
        assert SPECULATIVE_HW.dmax == 1000
        assert SHOESTRING_LIKE.dmax == 100
        assert FUTURE_DETECTOR.dmax == 10
        for preset in (SPECULATIVE_HW, SHOESTRING_LIKE, FUTURE_DETECTOR):
            assert preset.kind == "uniform"
            assert preset.coverage == 1.0

    def test_presets_usable_in_campaigns(self):
        from repro.runtime import FUTURE_DETECTOR
        from helpers import build_counted_loop
        from repro.encore import compile_for_encore

        module, _ = build_counted_loop(20)
        report = compile_for_encore(module, clone=True)
        campaign = run_campaign(
            report.module, output_objects=["arr"], trials=10, seed=1,
            detector=FUTURE_DETECTOR,
        )
        assert len(campaign.trials) == 10
