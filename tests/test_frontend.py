"""Tests for the MC mini-C frontend: lexer, parser, codegen, execution."""

import pytest

from repro.frontend import (
    CodegenError,
    LexError,
    MCSyntaxError,
    compile_source,
    parse_source,
    tokenize,
)
from repro.runtime import Interpreter, Trap


def run_mc(source, args=(), outputs=(), function="main"):
    module = compile_source(source)
    return Interpreter(module).run(function, args, output_objects=outputs)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("int x = 42 + 3.5; // comment")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("keyword", "int") in kinds
        assert ("ident", "x") in kinds
        assert ("int", "42") in kinds
        assert ("float", "3.5") in kinds
        assert kinds[-1] == ("eof", "")

    def test_comments_stripped(self):
        tokens = tokenize("a // line\n/* block\nmultiline */ b")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        by_text = {t.text: (t.line, t.column) for t in tokens if t.kind == "ident"}
        assert by_text["a"] == (1, 1)
        assert by_text["b"] == (2, 1)
        assert by_text["c"] == (3, 3)

    def test_two_char_operators(self):
        tokens = tokenize("a <= b >> 2 && c")
        texts = [t.text for t in tokens if t.kind == "op"]
        assert texts == ["<=", ">>", "&&"]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int $x;")


class TestParser:
    def test_program_structure(self):
        program = parse_source(
            """
            global int data[4] = {1, 2, 3, 4};
            global float scale = 1.5;
            extern sys_write;
            int helper(int x) { return x * 2; }
            int main() { return helper(21); }
            """
        )
        assert [g.name for g in program.globals] == ["data", "scale"]
        assert program.globals[0].init == [1, 2, 3, 4]
        assert program.externs[0].name == "sys_write"
        assert [f.name for f in program.functions] == ["helper", "main"]

    def test_syntax_errors(self):
        with pytest.raises(MCSyntaxError):
            parse_source("int main( { return 0; }")
        with pytest.raises(MCSyntaxError):
            parse_source("int main() { return 0 }")
        with pytest.raises(MCSyntaxError):
            parse_source("int main() { 1 = 2; }")

    def test_negative_global_init(self):
        program = parse_source("global int bias = -7;")
        assert program.globals[0].init == [-7]


class TestExecution:
    def test_arithmetic_and_return(self):
        assert run_mc("int main() { return (2 + 3) * 4 - 6 / 2; }").value == 17

    def test_c_division_semantics(self):
        assert run_mc("int main() { return -7 / 2; }").value == -3
        assert run_mc("int main() { return -7 % 2; }").value == -1

    def test_variables_and_assignment(self):
        source = """
        int main() {
            int x = 5;
            int y;
            y = x * x;
            x = y - x;
            return x + y;
        }
        """
        assert run_mc(source).value == 45

    def test_global_scalar_and_array(self):
        source = """
        global int counter;
        global int table[8] = {1, 1, 2, 3, 5, 8, 13, 21};
        int main() {
            counter = table[6] + table[7];
            return counter;
        }
        """
        result = run_mc(source, outputs=("counter",))
        assert result.value == 34
        assert result.output["counter"] == [34]

    def test_for_loop(self):
        source = """
        global int squares[10];
        int main() {
            int total = 0;
            for (int i = 0; i < 10; i = i + 1) {
                squares[i] = i * i;
                total = total + squares[i];
            }
            return total;
        }
        """
        result = run_mc(source, outputs=("squares",))
        assert result.value == sum(i * i for i in range(10))
        assert result.output["squares"] == [i * i for i in range(10)]

    def test_while_break_continue(self):
        source = """
        int main() {
            int i = 0;
            int total = 0;
            while (1) {
                i = i + 1;
                if (i > 20) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        assert run_mc(source).value == sum(i for i in range(1, 21) if i % 2)

    def test_nested_functions_and_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
        """
        assert run_mc(source).value == 144

    def test_float_arithmetic_and_promotion(self):
        source = """
        float scale(float x, int k) { return x * k; }
        int main() {
            float f = scale(2.5, 4);
            return f + 0.5;
        }
        """
        assert run_mc(source).value == 10

    def test_short_circuit_and(self):
        # The second operand would trap (division by zero) if evaluated.
        source = """
        int main() {
            int zero = 0;
            if (zero != 0 && 10 / zero > 1) { return 1; }
            return 2;
        }
        """
        assert run_mc(source).value == 2

    def test_short_circuit_or(self):
        source = """
        int main() {
            int zero = 0;
            if (1 == 1 || 10 / zero > 1) { return 7; }
            return 0;
        }
        """
        assert run_mc(source).value == 7

    def test_logical_not_and_bitops(self):
        assert run_mc("int main() { return !0 + !5; }").value == 1
        assert run_mc("int main() { return (12 & 10) | (1 << 4) ^ 1; }").value == 25
        assert run_mc("int main() { return ~0; }").value == -1

    def test_local_array(self):
        source = """
        int main() {
            int buf[4];
            int i;
            for (i = 0; i < 4; i = i + 1) { buf[i] = i + 10; }
            return buf[0] + buf[3];
        }
        """
        assert run_mc(source).value == 23

    def test_scoping_and_shadowing(self):
        source = """
        int main() {
            int x = 1;
            if (1) {
                int x = 100;
                x = x + 1;
            }
            return x;
        }
        """
        assert run_mc(source).value == 1

    def test_void_function(self):
        source = """
        global int log[4];
        void note(int v) { log[0] = v; }
        int main() {
            note(9);
            return log[0];
        }
        """
        assert run_mc(source).value == 9

    def test_extern_call(self):
        source = """
        extern sys_rand;
        int main() { return sys_rand(3); }
        """
        module = compile_source(source)
        result = Interpreter(
            module, externals={"sys_rand": lambda args: args[0] * 11}
        ).run("main")
        assert result.value == 33

    def test_out_of_bounds_traps(self):
        source = """
        global int small[2];
        int main() { return small[5]; }
        """
        with pytest.raises(Trap):
            run_mc(source)

    def test_missing_return_defaults(self):
        assert run_mc("int main() { int x = 3; }").value == 0


class TestCodegenErrors:
    def test_undefined_variable(self):
        with pytest.raises(CodegenError, match="undefined variable"):
            compile_source("int main() { return ghost; }")

    def test_undeclared_function(self):
        with pytest.raises(CodegenError, match="undeclared function"):
            compile_source("int main() { return mystery(); }")

    def test_wrong_arity(self):
        with pytest.raises(CodegenError, match="expects 1 args"):
            compile_source(
                "int f(int x) { return x; } int main() { return f(1, 2); }"
            )

    def test_void_in_expression(self):
        with pytest.raises(CodegenError, match="used as a value"):
            compile_source(
                "void f() { return; } int main() { return f() + 1; }"
            )

    def test_float_modulo_rejected(self):
        with pytest.raises(CodegenError, match="requires int"):
            compile_source("int main() { return 1.5 % 2; }")

    def test_redeclaration(self):
        with pytest.raises(CodegenError, match="redeclaration"):
            compile_source("int main() { int x = 1; int x = 2; return x; }")

    def test_break_outside_loop(self):
        with pytest.raises(CodegenError, match="break outside"):
            compile_source("int main() { break; return 0; }")


class TestPipelineIntegration:
    SOURCE = """
    global int input[32] = {5, 3, 8, 1, 9, 2, 7, 4, 6, 0,
                            5, 3, 8, 1, 9, 2, 7, 4, 6, 0,
                            5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 1, 2};
    global int hist[10];
    global int state;

    int main() {
        int i;
        for (i = 0; i < 32; i = i + 1) {
            int v = input[i];
            hist[v] = hist[v] + 1;
            state = state * 31 + v;
        }
        return state;
    }
    """

    def test_mc_program_protected_and_recovers(self):
        import copy

        from repro.encore import EncoreConfig, compile_for_encore
        from repro.runtime import DetectionModel, run_campaign

        module = compile_source(self.SOURCE)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=("hist", "state")
        )
        report = compile_for_encore(
            module, EncoreConfig(overhead_budget=0.5), clone=True
        )
        assert report.selected_regions
        clean = Interpreter(report.module).run(
            "main", output_objects=("hist", "state")
        )
        assert clean.output == golden.output

        campaign = run_campaign(
            report.module,
            output_objects=("hist", "state"),
            detector=DetectionModel(dmax=5),
            trials=30,
            seed=3,
        )
        assert campaign.fraction("recovered") > 0.3

    def test_mc_program_optimizes(self):
        import copy

        from repro.opt import optimize_module

        module = compile_source(self.SOURCE)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=("hist",)
        )
        optimize_module(module)
        result = Interpreter(module).run("main", output_objects=("hist",))
        assert result.value == golden.value
        assert result.output == golden.output

    def test_mc_module_roundtrips_through_ir_text(self):
        from repro.ir import module_to_text, parse_module

        module = compile_source(self.SOURCE)
        text = module_to_text(module)
        reparsed = parse_module(text)
        a = Interpreter(module).run("main")
        c = Interpreter(reparsed).run("main")
        assert a.value == c.value
