"""Differential equivalence: the fast engine IS the reference engine.

The pre-decoded template-dispatch engine
(:class:`repro.runtime.predecode.FastInterpreter`) is only allowed to
exist because nothing observable distinguishes it from
:class:`repro.runtime.interpreter.ReferenceInterpreter`.  This harness
pins that contract from every direction:

* every golden workload, plain and Encore-instrumented, produces a
  bit-identical :class:`Observation` on both engines (results, all
  four counters, output snapshots, peak checkpoint footprints);
* step-event streams (the hook tier) coincide event for event;
* trap identity coincides: reason string, trap event index, and the
  full post-trap frame state (registers, undo logs, recovery
  pointers), plus the recovered result after an Encore rollback;
* malformed modules fail identically (fell-off blocks, wild labels);
* step budgets exhaust identically;
* a hypothesis sweep and a ≥200-seed batch of fuzzer-generated
  programs (nested loops, calls, aliased pointers, externals) agree,
  plain and instrumented.

If this file fails, the fast engine is wrong — the reference
interpreter is the specification.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from engines import observe, observe_both
from repro.encore import compile_for_encore
from repro.fuzz import EXTERNALS, SMALL, generate_program, program_strategy
from repro.ir import IRBuilder, Module
from repro.ir.instructions import (
    CheckpointMem,
    CheckpointReg,
    ClearRecoveryPtr,
    Jump,
    RestoreCheckpoints,
    SetRecoveryPtr,
)
from repro.ir.values import MemRef
from repro.workloads import all_workloads, threaded_workloads

WORKLOADS = {spec.name: spec for spec in all_workloads()}
THREADED = {spec.name: spec for spec in threaded_workloads()}


def _assert_equivalent(module, **kwargs):
    fast, ref = observe_both(module, **kwargs)
    assert fast == ref, f"engines diverged: fast={fast!r} ref={ref!r}"
    return fast


# ---------------------------------------------------------------------------
# Golden workloads: plain and instrumented, both engines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_workload_plain_equivalence(name):
    built = WORKLOADS[name].build()
    obs = _assert_equivalent(
        built.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        externals=built.externals,
    )
    assert obs.status == "finished"
    assert obs.instrumentation_cost == 0


@pytest.mark.parametrize("name", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_workload_instrumented_equivalence(name):
    built = WORKLOADS[name].build()
    report = compile_for_encore(
        built.module,
        function=built.entry,
        args=built.args,
        externals=built.externals,
    )
    obs = _assert_equivalent(
        report.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        externals=built.externals,
    )
    assert obs.status == "finished"
    if report.instrumentation.instrumented_regions:
        assert obs.instrumentation_cost > 0


@pytest.mark.parametrize("name", ["unepic", "cjpeg"])
def test_workload_step_streams_identical(name):
    """The hook tier replays the exact reference step stream."""
    built = WORKLOADS[name].build()
    obs = _assert_equivalent(
        built.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        externals=built.externals,
        record_steps=True,
    )
    assert obs.steps, "hook tier recorded no events"
    assert len(obs.steps) == obs.events


# ---------------------------------------------------------------------------
# Trap identity: reason, event index, post-trap machine state
# ---------------------------------------------------------------------------


def _div_zero_module(by_register: bool) -> Module:
    module = Module("divzero")
    out = module.add_global("out", 4)
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    num = b.mov(7)
    den = b.mov(0) if by_register else 0
    q = b.sdiv(num, den)
    b.store((out, 0), q)
    b.ret(q)
    return module


@pytest.mark.parametrize("by_register", [True, False],
                         ids=["reg-divisor", "const-divisor"])
def test_division_by_zero_identical(by_register):
    obs = _assert_equivalent(
        _div_zero_module(by_register), output_objects=("out",)
    )
    assert obs.status == "trap"
    assert "division by zero" in obs.trap_reason


def test_remainder_by_zero_identical():
    module = Module("remzero")
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    r = b.srem(b.mov(7), b.mov(0))
    b.ret(r)
    obs = _assert_equivalent(module)
    assert obs.status == "trap"
    assert "remainder by zero" in obs.trap_reason


@pytest.mark.parametrize("index", [-1, 64], ids=["negative", "past-end"])
def test_out_of_bounds_access_identical(index):
    module = Module("oob")
    buf = module.add_global("buf", 8)
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    i = b.mov(index)
    v = b.load((buf, i))
    b.ret(v)
    obs = _assert_equivalent(module)
    assert obs.status == "trap"


def test_fell_off_block_identical():
    module = Module("felloff")
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    b.mov(1)  # no terminator: execution falls off the block end
    obs = _assert_equivalent(module)
    assert obs.status == "trap"
    assert "fell off end of block entry" in obs.trap_reason


def test_wild_branch_label_identical():
    module = Module("wild")
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    b.jmp("nowhere")
    obs = _assert_equivalent(module)
    assert obs.status == "error:KeyError"


def test_unknown_callee_identical():
    """Calls to undeclared functions hit the default external handler
    on both engines (the fast engine's external-call closure)."""
    module = Module("nocallee")
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    r = b.call("ghost", [])
    b.ret(r)
    obs = _assert_equivalent(module)
    assert obs.status == "finished"


def test_step_budget_exhausts_identically():
    module = Module("spin")
    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    b.jmp("entry")
    obs = _assert_equivalent(module, max_steps=1000)
    assert obs.status == "limit"
    assert obs.events == 1000


# ---------------------------------------------------------------------------
# Encore instrumentation ops and the recovery path
# ---------------------------------------------------------------------------


def _protected_trap_module() -> Module:
    """A hand-instrumented region whose body traps on first entry.

    ``flag`` starts 0 and the region divides by it; the recovery block
    restores the checkpoints and sets ``flag`` to 1, so a rollback
    re-executes the region successfully.  Differentially checks
    set/clear recovery pointer, register and memory checkpoints,
    restore, and post-rollback control flow on both engines.
    """
    module = Module("protected")
    flag = module.add_global("flag", 1)
    out = module.add_global("out", 2)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    x = b.mov(40, dest=b.fresh("x"))
    b.jmp("region")

    b.block("region")
    b.current_block.append(SetRecoveryPtr(1, "region.recover"))
    b.current_block.append(CheckpointReg(1, x))
    b.current_block.append(CheckpointMem(1, MemRef(out, b._coerce(0))))
    d = b.load((flag, 0))
    b.store((out, 0), b.mov(9))
    q = b.sdiv(x, d)
    b.store((out, 1), q)
    b.current_block.append(ClearRecoveryPtr(1))
    b.jmp("exit")

    b.block("region.recover")
    b.current_block.append(RestoreCheckpoints(1))
    b.store((flag, 0), 1)
    b.current_block.append(Jump("region"))

    b.block("exit")
    v = b.load((out, 1))
    b.ret(v)
    return module


def test_encore_ops_and_rollback_identical():
    obs = _assert_equivalent(
        _protected_trap_module(),
        output_objects=("out", "flag"),
        resume_after_trap=True,
    )
    assert obs.status == "trap+recovered"
    assert obs.value == 40
    assert obs.output == {"out": [9, 40], "flag": [1]}
    assert obs.instrumentation_cost > 0
    assert obs.peak_ckpt_words  # the undo log was actually exercised


def test_unrecovered_trap_frame_state_identical():
    """Without a rollback, post-trap frames must still match exactly."""
    obs = _assert_equivalent(
        _protected_trap_module(), output_objects=("out",)
    )
    assert obs.status == "trap"
    assert obs.frame_state is not None
    assert obs.frame_state[0][3] == (1, "region.recover")  # live recovery ptr


# ---------------------------------------------------------------------------
# Multithreaded executions: scheduler decisions are observables too
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(THREADED), ids=sorted(THREADED))
def test_threaded_workload_plain_equivalence(name):
    built = THREADED[name].build()
    obs = _assert_equivalent(
        built.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        externals=built.externals,
    )
    assert obs.status == "finished"
    if name != "serial_stencil":
        # The scheduler engaged: its switch log and per-thread step
        # tallies were part of the equality assertion above.
        assert obs.switch_log, "scheduler never switched"
        assert set(obs.thread_steps) > {0}
    else:
        assert obs.switch_log is None  # no spawn, no scheduler


@pytest.mark.parametrize("name", sorted(THREADED), ids=sorted(THREADED))
def test_threaded_workload_instrumented_equivalence(name):
    built = THREADED[name].build()
    report = compile_for_encore(
        built.module,
        function=built.entry,
        args=built.args,
        externals=built.externals,
    )
    obs = _assert_equivalent(
        report.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        externals=built.externals,
    )
    assert obs.status == "finished"


def test_threaded_step_streams_identical():
    """The hook tier replays the interleaved stream, switches included."""
    built = THREADED["pc_codec"].build()
    obs = _assert_equivalent(
        built.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        record_steps=True,
    )
    assert obs.steps and len(obs.steps) == obs.events
    assert obs.switch_log
    # More than one frame id appears in the stream: the recorded steps
    # really interleave threads rather than serializing them.
    assert len({step[5] for step in obs.steps}) > 1


@pytest.mark.parametrize("quantum", [1, 7, 500], ids=lambda q: f"q{q}")
def test_quantum_changes_schedule_not_result(quantum):
    """Any quantum gives the same result on both engines — and the same
    result *across* quanta (the schedule-invariance the campaign
    machinery relies on)."""
    built = THREADED["stencil3"].build()
    obs = _assert_equivalent(
        built.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        quantum=quantum,
    )
    assert obs.status == "finished"
    baseline = observe(
        "reference",
        THREADED["stencil3"].build().module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
    )
    assert obs.value == baseline.value
    assert obs.output == baseline.output


def test_spawn_over_thread_cap_traps_identically():
    built = THREADED["pc_codec"].build()
    obs = _assert_equivalent(
        built.module,
        entry=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        threads=1,
    )
    assert obs.status == "trap"
    assert "thread limit" in obs.trap_reason


def _threaded_protected_module() -> Module:
    """Spawn/join plus a hand-instrumented trapping region in main.

    Main spawns a worker, joins it (so a scheduler is live with a
    finished sibling context), then enters a protected region that
    traps on first entry and recovers — the differential check that
    Encore rollback works identically under an engaged scheduler.
    """
    module = Module("tprotected")
    flag = module.add_global("flag", 1)
    out = module.add_global("out", 2)
    scratch = module.add_global("scratch", 1)

    wb = IRBuilder(module.add_function("worker"))
    wb.block("entry")
    wb.jmp("loop")
    wb.block("loop")
    i = wb.load((scratch, 0))
    wb.store((scratch, 0), wb.add(i, 1))
    wb.br(wb.cmp("slt", i, 120), "loop", "done")
    wb.block("done")
    wb.ret(wb.load((scratch, 0)))

    b = IRBuilder(module.add_function("main"))
    b.block("entry")
    tid = b.spawn("worker", [])
    b.join(tid)
    x = b.mov(40, dest=b.fresh("x"))
    b.jmp("region")

    b.block("region")
    b.current_block.append(SetRecoveryPtr(1, "region.recover"))
    b.current_block.append(CheckpointReg(1, x))
    b.current_block.append(CheckpointMem(1, MemRef(out, b._coerce(0))))
    d = b.load((flag, 0))
    b.store((out, 0), b.mov(9))
    q = b.sdiv(x, d)
    b.store((out, 1), q)
    b.current_block.append(ClearRecoveryPtr(1))
    b.jmp("exit")

    b.block("region.recover")
    b.current_block.append(RestoreCheckpoints(1))
    b.store((flag, 0), 1)
    b.current_block.append(Jump("region"))

    b.block("exit")
    b.ret(b.load((out, 1)))
    return module


def test_threaded_rollback_identical():
    obs = _assert_equivalent(
        _threaded_protected_module(),
        output_objects=("out", "flag", "scratch"),
        resume_after_trap=True,
        quantum=10,
    )
    assert obs.status == "trap+recovered"
    assert obs.value == 40
    assert obs.output["out"] == [9, 40]
    assert obs.switch_log  # the worker really ran interleaved


# ---------------------------------------------------------------------------
# Fuzzer-generated programs: hypothesis sweep plus a ≥200-seed batch
# ---------------------------------------------------------------------------


def _fuzz_equivalent(program, instrumented: bool) -> None:
    module = program.module
    if instrumented:
        module = compile_for_encore(
            module,
            function=program.entry,
            args=program.args,
            externals=EXTERNALS,
        ).module
    _assert_equivalent(
        module,
        entry=program.entry,
        args=program.args,
        output_objects=program.output_objects,
        externals=EXTERNALS,
    )


@given(program=program_strategy(SMALL))
@settings(max_examples=30, deadline=None)
def test_generated_programs_equivalent(program):
    _fuzz_equivalent(program, instrumented=False)


@given(program=program_strategy(SMALL))
@settings(max_examples=10, deadline=None)
def test_generated_programs_equivalent_instrumented(program):
    _fuzz_equivalent(program, instrumented=True)


@pytest.mark.parametrize("bank", range(8))
def test_seed_batch_equivalent(bank):
    """Deterministic 200-seed sweep (25 per bank), instrumenting every
    eighth program so the Encore ops get fuzz coverage too."""
    for offset in range(25):
        seed = bank * 25 + offset
        program = generate_program(seed, SMALL)
        _fuzz_equivalent(program, instrumented=(seed % 8 == 0))
