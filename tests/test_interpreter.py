"""Interpreter semantics tests: arithmetic, memory, control, calls, hooks."""

import pytest

from repro.ir import IRBuilder, Module, Type, VirtualRegister
from repro.runtime import ExecutionLimit, Interpreter, Pointer, Trap, bitflip
from helpers import (
    build_call_program,
    build_counted_loop,
    build_diamond,
    build_figure4_region,
    build_linear_sum,
    build_nested_loops,
)


def run(module, function="main", args=(), outputs=(), **kw):
    return Interpreter(module, **kw).run(function, args, output_objects=outputs)


class TestBasicExecution:
    def test_linear_sum(self):
        module, out = build_linear_sum()
        result = run(module, outputs=["out"])
        assert result.value == 26
        assert result.output["out"][0] == 26

    def test_diamond_then(self):
        module, _ = build_diamond(take_then=1)
        assert run(module).value == 100

    def test_diamond_else(self):
        module, _ = build_diamond(take_then=0)
        assert run(module).value == 200

    def test_counted_loop(self):
        module, _ = build_counted_loop(10)
        result = run(module, outputs=["arr"])
        assert result.value == sum(i * i for i in range(10))
        assert result.output["arr"] == [i * i for i in range(10)]

    def test_nested_loops(self):
        module, _ = build_nested_loops(4, 3)
        result = run(module, outputs=["mat"])
        assert result.output["mat"] == list(range(12))

    def test_calls(self):
        module, _ = build_call_program()
        result = run(module, outputs=["out"])
        assert result.value == 25 + 81
        assert result.output["out"] == [25, 81]

    def test_figure4_runs_both_paths(self):
        module, _ = build_figure4_region()
        r1 = Interpreter(module).run("main", [5], output_objects=["mem"])
        r2 = Interpreter(module).run("main", [-5], output_objects=["mem"])
        assert r1.output["mem"] == [99, 88, 77]
        assert r2.output["mem"] == [99, 88, 77]

    def test_event_counting(self):
        module, _ = build_linear_sum()
        result = run(module)
        assert result.events == 4  # mul, add, store, ret
        assert result.cost == 4
        assert result.instrumentation_cost == 0


class TestArithmetic:
    def _eval(self, emit):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        result = emit(b)
        b.ret(result)
        return run(module).value

    def test_division_truncates_toward_zero(self):
        assert self._eval(lambda b: b.sdiv(-7, 2)) == -3
        assert self._eval(lambda b: b.sdiv(7, -2)) == -3

    def test_srem_matches_c_semantics(self):
        assert self._eval(lambda b: b.srem(-7, 2)) == -1
        assert self._eval(lambda b: b.srem(7, -2)) == 1

    def test_division_by_zero_traps(self):
        with pytest.raises(Trap, match="division by zero"):
            self._eval(lambda b: b.sdiv(1, 0))

    def test_shifts_and_bitops(self):
        assert self._eval(lambda b: b.shl(1, 10)) == 1024
        assert self._eval(lambda b: b.lshr(-1, 60)) == 15
        assert self._eval(lambda b: b.and_(12, 10)) == 8
        assert self._eval(lambda b: b.or_(12, 10)) == 14
        assert self._eval(lambda b: b.xor(12, 10)) == 6

    def test_overflow_wraps(self):
        big = 2**62
        assert self._eval(lambda b: b.mul(big, 4)) == 0

    def test_float_ops(self):
        assert self._eval(lambda b: b.fadd(1.5, 2.25)) == 3.75
        assert self._eval(lambda b: b.fmul(3.0, 0.5)) == 1.5
        assert self._eval(lambda b: b.unop("fsqrt", 9.0)) == 3.0
        assert self._eval(lambda b: b.unop("sitofp", 7)) == 7.0
        assert self._eval(lambda b: b.unop("fptosi", 7.9)) == 7

    def test_compare_predicates(self):
        assert self._eval(lambda b: b.cmp("slt", 1, 2)) == 1
        assert self._eval(lambda b: b.cmp("sge", 1, 2)) == 0
        assert self._eval(lambda b: b.cmp("eq", 3, 3)) == 1

    def test_select(self):
        assert self._eval(lambda b: b.select(1, 10, 20)) == 10
        assert self._eval(lambda b: b.select(0, 10, 20)) == 20

    def test_min_max(self):
        assert self._eval(lambda b: b.binop("min", 3, 9)) == 3
        assert self._eval(lambda b: b.binop("max", 3, 9)) == 9


class TestMemoryAndPointers:
    def test_out_of_bounds_read_traps(self):
        module = Module()
        arr = module.add_global("arr", 2)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        v = b.load(arr, 5)
        b.ret(v)
        with pytest.raises(Trap, match="out of bounds"):
            run(module)

    def test_global_initializers(self):
        module = Module()
        arr = module.add_global("arr", 4, init=[7, 8])
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        a = b.load(arr, 0)
        c = b.load(arr, 1)
        d = b.load(arr, 3)  # uninitialized -> 0
        s = b.add(a, c)
        s = b.add(s, d)
        b.ret(s)
        assert run(module).value == 15

    def test_pointer_indirection(self):
        module = Module()
        arr = module.add_global("arr", 8)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(arr, 2)
        b.store(p, 0, 42)
        p2 = b.add(p, 1)
        b.store(p2, 0, 43)
        v = b.load(arr, 2)
        w = b.load(arr, 3)
        b.ret(b.add(v, w))
        assert run(module).value == 85

    def test_alloc_creates_fresh_objects(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.alloc(4)
        q = b.alloc(4)
        b.store(p, 0, 1)
        b.store(q, 0, 2)
        v = b.load(p, 0)
        w = b.load(q, 0)
        b.ret(b.add(v, w))
        assert run(module).value == 3

    def test_stack_objects_fresh_per_activation(self):
        module = Module()
        callee = module.add_function("leaf", params=[VirtualRegister("x")])
        buf = callee.add_stack_object("buf", 2)
        cb = IRBuilder(callee)
        cb.block("entry")
        old = cb.load(buf, 0)  # always 0: fresh frame storage
        cb.store(buf, 0, callee.params[0])
        new = cb.load(buf, 0)
        cb.ret(cb.add(old, new))
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        a = b.call("leaf", [10])
        c = b.call("leaf", [20])
        b.ret(b.add(a, c))
        assert run(module).value == 30

    def test_dead_stack_object_read_traps(self):
        # A pointer to a stack object escaping its frame must trap on use.
        module = Module()
        hole = module.add_global("hole", 1)
        callee = module.add_function("leak")
        buf = callee.add_stack_object("buf", 1)
        cb = IRBuilder(callee)
        cb.block("entry")
        p = cb.addrof(buf, 0)
        # Stash pointer in a register returned upward via memory is not
        # possible (memory holds words); instead return... simulate via
        # global pointer-free contract: just check release happened by
        # re-calling and trapping through interpreter internals.
        cb.store(hole, 0, 1)
        cb.ret(0)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.call("leak", [])
        b.ret(0)
        assert run(module).value == 0  # frames clean up without error


class TestCallsAndLimits:
    def test_external_call_default_returns_zero(self):
        module = Module()
        module.declare_external("mystery")
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        v = b.call("mystery", [1, 2])
        b.ret(v)
        assert run(module).value == 0

    def test_external_call_custom_handler(self):
        module = Module()
        module.declare_external("add_ext")
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        v = b.call("add_ext", [3, 4])
        b.ret(v)
        result = run(module, externals={"add_ext": lambda args: args[0] + args[1]})
        assert result.value == 7

    def test_wrong_arity_raises(self):
        module, _ = build_call_program()
        with pytest.raises(TypeError):
            Interpreter(module).run("square", [])

    def test_execution_limit(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.jmp("entry")
        with pytest.raises(ExecutionLimit):
            Interpreter(module, max_steps=100).run("main")

    def test_recursive_calls(self):
        module = Module()
        n = VirtualRegister("n")
        fact = module.add_function("fact", params=[n])
        fb = IRBuilder(fact)
        fb.block("entry")
        c = fb.cmp("sle", n, 1)
        fb.br(c, "base", "rec")
        fb.block("base")
        fb.ret(1)
        fb.block("rec")
        nm1 = fb.sub(n, 1)
        sub = fb.call("fact", [nm1])
        fb.ret(fb.mul(n, sub))
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.ret(b.call("fact", [6]))
        assert run(module).value == 720


class TestHooksAndFaults:
    def test_post_step_hook_sees_resolved_addresses(self):
        module, _ = build_counted_loop(3)
        seen = []

        def hook(interp, event):
            seen.extend(event.stores)

        Interpreter(module, post_step=hook).run("main")
        assert ("arr", 0) in seen and ("arr", 2) in seen

    def test_corrupt_register_changes_result(self):
        module, _ = build_linear_sum()
        flips = {}

        def hook(interp, event):
            if event.index == 0 and event.inst.defs():
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs[dest], 3)
                flips["done"] = True

        result = Interpreter(module, post_step=hook).run("main")
        assert flips.get("done")
        assert result.value == (21 ^ 8) + 5

    def test_bitflip_int_roundtrip(self):
        assert bitflip(bitflip(12345, 7), 7) == 12345

    def test_bitflip_float_changes_value(self):
        v = bitflip(1.5, 52)
        assert isinstance(v, float) and v != 1.5

    def test_bitflip_pointer_changes_offset(self):
        p = Pointer("obj", 4)
        q = bitflip(p, 1)
        assert q.obj == "obj" and q.offset != 4
