"""Unit tests for the IR value/instruction/block/function/module layers."""

import pytest

from repro.ir import (
    BinOp,
    Branch,
    Call,
    Constant,
    IRBuilder,
    Jump,
    Load,
    MemRef,
    MemoryObject,
    Module,
    Ret,
    Store,
    Type,
    VirtualRegister,
    function_to_text,
    module_to_text,
    wrap_int,
)


class TestTypes:
    def test_wrap_int_identity_in_range(self):
        assert wrap_int(42) == 42
        assert wrap_int(-42) == -42

    def test_wrap_int_overflow_wraps(self):
        assert wrap_int(2**63) == -(2**63)
        assert wrap_int(2**64) == 0
        assert wrap_int(2**63 - 1) == 2**63 - 1

    def test_wrap_int_negative_overflow(self):
        assert wrap_int(-(2**63) - 1) == 2**63 - 1


class TestValues:
    def test_registers_hashable_and_equal_by_name(self):
        assert VirtualRegister("x") == VirtualRegister("x")
        assert len({VirtualRegister("x"), VirtualRegister("x")}) == 1

    def test_register_types_distinguish(self):
        assert VirtualRegister("x") != VirtualRegister("x", Type.PTR)

    def test_memory_object_rejects_bad_size(self):
        with pytest.raises(ValueError):
            MemoryObject("bad", 0)

    def test_memory_object_rejects_long_init(self):
        with pytest.raises(ValueError):
            MemoryObject("bad", 2, init=[1, 2, 3])

    def test_memory_object_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            MemoryObject("bad", 4, kind="register")

    def test_memref_direct_and_indirect(self):
        obj = MemoryObject("arr", 8)
        direct = MemRef(obj, Constant(3))
        assert direct.is_direct and direct.has_constant_index
        ptr = VirtualRegister("p", Type.PTR)
        indirect = MemRef(ptr, VirtualRegister("i"))
        assert not indirect.is_direct and not indirect.has_constant_index


class TestInstructions:
    def test_binop_rejects_unknown_op(self):
        r = VirtualRegister("r")
        with pytest.raises(ValueError):
            BinOp("bogus", r, Constant(1), Constant(2))

    def test_uses_and_defs(self):
        a, b_, c = (VirtualRegister(n) for n in "abc")
        inst = BinOp("add", c, a, b_)
        assert set(inst.uses()) == {a, b_}
        assert inst.defs() == (c,)

    def test_store_reports_memref_and_registers(self):
        obj = MemoryObject("m", 4)
        idx = VirtualRegister("i")
        val = VirtualRegister("v")
        store = Store(MemRef(obj, idx), val)
        assert store.stores() == (MemRef(obj, idx),)
        assert set(store.uses()) == {idx, val}
        assert store.defs() == ()

    def test_load_reports_memref(self):
        obj = MemoryObject("m", 4)
        dest = VirtualRegister("d")
        load = Load(dest, MemRef(obj, Constant(0)))
        assert load.loads() == (MemRef(obj, Constant(0)),)
        assert load.defs() == (dest,)

    def test_branch_successors(self):
        br = Branch(Constant(1), "a", "b")
        assert br.successors() == ("a", "b")
        assert br.is_terminator
        assert Jump("c").successors() == ("c",)
        assert Ret().successors() == ()

    def test_call_uses_all_register_args(self):
        a, b_ = VirtualRegister("a"), VirtualRegister("b")
        call = Call(None, "f", [a, Constant(1), b_])
        assert set(call.uses()) == {a, b_}
        assert call.defs() == ()

    def test_instrumentation_costs(self):
        from repro.ir import CheckpointMem, CheckpointReg, SetRecoveryPtr

        obj = MemoryObject("m", 4)
        assert CheckpointMem(0, MemRef(obj, Constant(0))).dynamic_cost == 2
        assert CheckpointReg(0, VirtualRegister("r")).dynamic_cost == 1
        assert SetRecoveryPtr(0, "rec").dynamic_cost == 1
        assert CheckpointMem(0, MemRef(obj, Constant(0))).is_instrumentation


class TestBlocksAndFunctions:
    def test_append_after_terminator_fails(self):
        module = Module()
        func = module.add_function("f")
        b = IRBuilder(func)
        b.block("entry")
        b.ret(0)
        with pytest.raises(ValueError):
            b.mov(1)

    def test_duplicate_block_label_rejected(self):
        module = Module()
        func = module.add_function("f")
        func.add_block("entry")
        with pytest.raises(ValueError):
            func.add_block("entry")

    def test_entry_is_first_block(self):
        module = Module()
        func = module.add_function("f")
        func.add_block("start")
        func.add_block("other")
        assert func.entry_label == "start"

    def test_predecessor_map(self):
        module = Module()
        func = module.add_function("f")
        b = IRBuilder(func)
        b.block("entry")
        b.br(1, "left", "right")
        b.block("left")
        b.jmp("join")
        b.block("right")
        b.jmp("join")
        b.block("join")
        b.ret(0)
        preds = func.predecessor_map()
        assert sorted(preds["join"]) == ["left", "right"]
        assert preds["entry"] == []

    def test_reachable_labels_excludes_orphans(self):
        module = Module()
        func = module.add_function("f")
        b = IRBuilder(func)
        b.block("entry")
        b.ret(0)
        b.block("orphan")
        b.ret(1)
        assert func.reachable_labels() == {"entry"}

    def test_exit_labels(self):
        module = Module()
        func = module.add_function("f")
        b = IRBuilder(func)
        b.block("entry")
        b.br(1, "a", "b")
        b.block("a")
        b.ret(0)
        b.block("b")
        b.ret(1)
        assert sorted(func.exit_labels()) == ["a", "b"]


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module()
        module.add_function("f")
        with pytest.raises(ValueError):
            module.add_function("f")

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global("g", 4)
        with pytest.raises(ValueError):
            module.add_global("g", 4)

    def test_external_declarations(self):
        module = Module()
        module.add_function("f")
        module.declare_external("puts")
        assert not module.is_external("f")
        assert module.is_external("puts")
        assert module.is_external("undeclared")

    def test_printer_round_trips_structure(self):
        module = Module("demo")
        module.add_global("g", 4)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        r = b.add(1, 2)
        b.store(module.globals["g"], 0, r)
        b.ret(r)
        text = module_to_text(module)
        assert "module demo" in text
        assert "global @g[4]" in text
        assert "entry:" in text
        assert "ret" in text
        assert "func main" in function_to_text(func)
