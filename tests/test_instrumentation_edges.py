"""Edge-case tests for the instrumentation pass and recovery runtime."""

import copy

import pytest

from repro.analysis import CFGView, LoopForest
from repro.encore import (
    EncoreConfig,
    compile_for_encore,
    entry_label,
    instrument_module,
    recovery_label,
)
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.encore.regions import RegionBuilder
from repro.ir import IRBuilder, Module, verify_module
from repro.profiling import profile_module
from repro.runtime import Interpreter
from helpers import build_counted_loop


def _multi_entry_module():
    """A region whose header is reached from two different outside blocks."""
    module = Module()
    out = module.add_global("out", 4)
    sel = module.add_global("sel", 1, init=[1])
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    s = b.load(sel, 0)
    b.br(s, "pre_a", "pre_b")
    b.block("pre_a")
    b.store(out, 0, 1)
    b.jmp("shared")
    b.block("pre_b")
    b.store(out, 0, 2)
    b.jmp("shared")
    b.block("shared")
    v = b.load(out, 0)
    b.store(out, 1, b.add(v, 10))
    b.ret(v)
    return module, func


class TestTrampolineEdges:
    def test_all_entry_edges_retargeted(self):
        module, func = _multi_entry_module()
        profile = profile_module(module)
        analyzer = IdempotenceAnalyzer(module, profile=profile, pmin=0.0)
        builder = RegionBuilder(module, profile)
        region = builder.make_region("main", frozenset({"shared"}), "shared")
        from repro.encore.selection import RegionSelector

        selector = RegionSelector(module, analyzer, builder, profile)
        selector.analyze(region)
        region.selected = True
        instrument_module(module, [region])
        verify_module(module)
        tramp = entry_label(region)
        # Both predecessors now jump to the trampoline.
        for label in ("pre_a", "pre_b"):
            term = module.function("main").blocks[label].terminator
            assert term.target == tramp
        # And execution still works through either arm.
        assert Interpreter(copy.deepcopy(module)).run("main").value == 1

    def test_double_instrumentation_rejected(self):
        module, _ = build_counted_loop(5)
        report = compile_for_encore(module, EncoreConfig(), clone=False)
        with pytest.raises(ValueError, match="already instrumented"):
            instrument_module(module, report.selected_regions)

    def test_unselected_regions_skipped(self):
        module, _ = build_counted_loop(5)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        regions = builder.base_regions("main")
        for region in regions:
            region.selected = False
        report = instrument_module(module, regions)
        assert report.instrumented_regions == 0
        assert module.function("main").blocks.keys() >= {"entry", "header"}

    def test_recovery_label_namespacing(self):
        module, _ = build_counted_loop(5)
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        for region in report.selected_regions:
            assert recovery_label(region).startswith("__encore_rec_")
            assert entry_label(region).startswith("__encore_entry_")


def _region_with_tail_module():
    """A single-block region followed by code outside it."""
    module = Module()
    out = module.add_global("out", 4)
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    b.jmp("mid")
    b.block("mid")
    v = b.add(2, 3)
    b.store(out, 0, v)
    b.jmp("tail")
    b.block("tail")
    w = b.load(out, 0)
    b.store(out, 1, b.add(w, 10))
    b.ret(w)
    return module


def _instrument_single_region(module, header, blocks):
    from repro.encore.selection import RegionSelector

    profile = profile_module(module)
    analyzer = IdempotenceAnalyzer(module, profile=profile, pmin=0.0)
    builder = RegionBuilder(module, profile)
    region = builder.make_region("main", frozenset(blocks), header)
    selector = RegionSelector(module, analyzer, builder, profile)
    selector.analyze(region)
    region.selected = True
    report = instrument_module(module, [region])
    verify_module(module)
    return region, report


class TestRegionExitClearing:
    def test_exit_successor_gets_clear_instruction(self):
        module = _region_with_tail_module()
        region, report = _instrument_single_region(module, "mid", {"mid"})
        assert report.clear_sites == 1
        tail = module.function("main").blocks["tail"]
        first = tail.instructions[0]
        assert first.opcode == "clear_recovery_ptr"
        assert first.region_id == region.id

    def test_pointer_dead_after_region_exit(self):
        # Execute to completion while snooping the frame's pointer: it
        # must be live inside the region and cleared in the tail.
        module = _region_with_tail_module()
        _region, _report = _instrument_single_region(module, "mid", {"mid"})
        observed = {}

        def hook(interp, event):
            if not interp.frames:
                return  # the final ret already popped the frame
            observed[(event.block, event.inst_index)] = (
                interp.current_frame.recovery_ptr
            )

        result = Interpreter(copy.deepcopy(module), post_step=hook).run(
            "main", output_objects=["out"]
        )
        assert result.value == 5
        in_region = [v for (blk, _), v in observed.items() if blk == "mid"]
        assert in_region and all(v is not None for v in in_region)
        in_tail = [
            v for (blk, i), v in sorted(observed.items()) if blk == "tail"
        ]
        assert in_tail and all(v is None for v in in_tail)

    def test_instrumented_text_round_trips(self):
        from repro.ir import module_to_text, parse_module

        module = _region_with_tail_module()
        _instrument_single_region(module, "mid", {"mid"})
        text = module_to_text(module)
        assert "clear_recovery_ptr" in text
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert Interpreter(reparsed).run("main").value == 5

    def test_clear_counts_as_instrumentation_cost(self):
        module = _region_with_tail_module()
        _instrument_single_region(module, "mid", {"mid"})
        result = Interpreter(copy.deepcopy(module)).run("main")
        # set_recovery_ptr + clear_recovery_ptr both bill the
        # instrumentation budget, not the application.
        assert result.instrumentation_cost >= 2


class TestRepeatedActivations:
    def test_checkpoint_buffer_resets_per_activation(self):
        """Two sequential activations of the same region: a rollback in
        the second must not restore values from the first."""
        module = Module()
        acc = module.add_global("acc", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        outer = b.fresh("outer")
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, outer)
        b.jmp("outer_head")
        b.block("outer_head")
        oc = b.cmp("slt", outer, 2)
        b.br(oc, "inner_pre", "exit")
        b.block("inner_pre")
        b.mov(0, i)
        b.jmp("inner_head")
        b.block("inner_head")
        ic = b.cmp("slt", i, 5)
        b.br(ic, "inner_body", "outer_latch")
        b.block("inner_body")
        v = b.load(acc, 0)
        b.store(acc, 0, b.add(v, 1))
        b.add(i, 1, i)
        b.jmp("inner_head")
        b.block("outer_latch")
        b.add(outer, 1, outer)
        b.jmp("outer_head")
        b.block("exit")
        b.ret(b.load(acc, 0))

        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["acc"]
        )
        assert golden.value == 10
        report = compile_for_encore(
            module, EncoreConfig(overhead_budget=0.9), clone=True
        )
        inner = [
            r for r in report.selected_regions if "inner_head" in r.blocks
        ]
        assert inner, "inner loop must be protected for this test"

        # Fault late (second activation), detect shortly after.
        state = {"injected": False, "recovered": False, "site": None}

        def hook(interp, event):
            if (
                not state["injected"]
                and event.index >= 60
                and event.inst.opcode == "binop"
            ):
                from repro.runtime import bitflip

                dest = event.inst.dest
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), 6)
                state["injected"] = True
                state["site"] = event.index
            elif (
                state["injected"]
                and not state["recovered"]
                and event.index >= state["site"] + 2
            ):
                state["recovered"] = interp.trigger_recovery()

        result = Interpreter(report.module, post_step=hook).run(
            "main", output_objects=["acc"]
        )
        if state["recovered"]:
            assert result.output == golden.output
            assert result.value == golden.value


class TestLoopForestEdges:
    def test_two_back_edges_same_header_merge(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        i = b.fresh("i")
        b.block("entry")
        b.mov(0, i)
        b.jmp("head")
        b.block("head")
        c = b.cmp("slt", i, 10)
        b.br(c, "body", "exit")
        b.block("body")
        b.add(i, 1, i)
        parity = b.and_(i, 1)
        b.br(parity, "latch_a", "latch_b")
        b.block("latch_a")
        b.jmp("head")
        b.block("latch_b")
        b.jmp("head")
        b.block("exit")
        b.ret(i)
        forest = LoopForest(CFGView(func))
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.latches == {"latch_a", "latch_b"}
        assert loop.blocks == {"head", "body", "latch_a", "latch_b"}
