"""Tests for dynamic memory profiling and the profiled alias mode."""

import copy

import pytest

from repro.analysis import AliasAnalysis
from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.ir import Constant, IRBuilder, MemRef, Module, Type, VirtualRegister
from repro.profiling import MemoryAccessProfile, collect_memory_profile
from repro.runtime import Interpreter
from repro.workloads import build_workload


def _indirect_war_module():
    """Load from arr[i], store through a memory-loaded pointer to out.

    Statically the pointer is TOP (may alias the load -> spurious WAR);
    dynamically it only ever touches ``out``.
    """
    module = Module()
    arr = module.add_global("arr", 8, init=list(range(8)))
    out = module.add_global("out", 8)
    desc = module.add_global("desc", 1)
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    b.block("entry")
    p = b.addrof(out, 0)
    b.store(desc, 0, p)
    handle = b.load(desc, 0, dest=b.fresh("h", Type.PTR))
    b.mov(0, i)
    b.jmp("head")
    b.block("head")
    c = b.cmp("slt", i, 8)
    b.br(c, "body", "exit")
    b.block("body")
    v = b.load(arr, i)
    b.store(handle, i, v)
    b.add(i, 1, i)
    b.jmp("head")
    b.block("exit")
    b.ret(0)
    return module


class TestMemoryAccessProfile:
    def test_collection_normalizes_names(self):
        module = _indirect_war_module()
        profile = collect_memory_profile(module)
        assert len(profile) > 0
        # The pointer store site observed only the `out` object.
        store_sites = [
            site for site in profile._sites
            if profile.observed_objects(site) == frozenset(["out"])
        ]
        assert store_sites

    def test_overflow_to_top(self):
        profile = MemoryAccessProfile(max_objects=2, max_addresses=3)
        site = ("f", "bb", 0)
        for k in range(5):
            profile.record(site, (f"obj{k}", k))
        assert profile.observed_objects(site) is None
        assert profile.observed_addresses(site) is None

    def test_unknown_site_returns_none(self):
        profile = MemoryAccessProfile()
        assert profile.observed_objects(("f", "bb", 0)) is None

    def test_heap_and_stack_normalization(self):
        module = Module()
        callee = module.add_function("leaf")
        buf = callee.add_stack_object("buf", 2)
        cb = IRBuilder(callee)
        cb.block("entry")
        cb.store(buf, 0, 1)
        cb.ret(0)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.call("leaf", [])
        b.call("leaf", [])
        p = b.alloc(4)
        b.store(p, 0, 2)
        b.ret(0)
        profile = collect_memory_profile(module)
        names = set()
        for site in profile._sites:
            objs = profile.observed_objects(site)
            if objs:
                names |= set(objs)
        assert "buf" in names  # not buf@f2 / buf@f3
        assert any(n.startswith("heap:main:") and "#" not in n for n in names)


class TestProfiledAliasMode:
    def test_requires_profile(self):
        module = _indirect_war_module()
        with pytest.raises(ValueError):
            AliasAnalysis(module, mode="profiled")

    def test_refines_top_pointer(self):
        module = _indirect_war_module()
        memprof = collect_memory_profile(module)
        alias = AliasAnalysis(module, mode="profiled", memory_profile=memprof)
        analyzer = IdempotenceAnalyzer(module, alias=alias)
        func = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        # Statically this is a WAR (TOP store vs arr load); the profile
        # proves the store only touches `out`.
        assert result.status is RegionStatus.IDEMPOTENT

    def test_static_mode_flags_the_same_region(self):
        module = _indirect_war_module()
        analyzer = IdempotenceAnalyzer(module)  # static
        func = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func.reachable_labels()), "entry"
        )
        assert result.status is RegionStatus.NON_IDEMPOTENT

    def test_observed_singleton_guards(self):
        # A store whose site always hits one address must-aliases a load
        # of that address: the load is guarded, no WAR.
        module = Module()
        cell = module.add_global("cell", 4)
        desc = module.add_global("desc", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        p = b.addrof(cell, 2)
        b.store(desc, 0, p)
        h = b.load(desc, 0, dest=b.fresh("h", Type.PTR))
        b.store(h, 0, 5)      # always writes cell[2]
        v = b.load(cell, 2)   # guarded by the profiled store
        b.store(cell, 2, b.add(v, 1))
        b.ret(v)
        memprof = collect_memory_profile(module)
        alias = AliasAnalysis(module, mode="profiled", memory_profile=memprof)
        analyzer = IdempotenceAnalyzer(module, alias=alias)
        func_obj = module.function("main")
        result = analyzer.analyze_region(
            "main", frozenset(func_obj.reachable_labels()), "entry"
        )
        assert result.status is RegionStatus.IDEMPOTENT


class TestPipelineProfiledMode:
    def test_profiled_overhead_between_static_and_optimistic(self):
        name = "g721decode"
        overheads = {}
        for mode in ("static", "profiled", "optimistic"):
            built = build_workload(name)
            report = compile_for_encore(
                built.module, EncoreConfig(alias_mode=mode), args=built.args
            )
            overheads[mode] = report.estimated_overhead()
        assert overheads["profiled"] <= overheads["static"] + 1e-9
        # Profiled cannot beat the perfect disambiguator by much (same
        # selection pressure, statistical refinement only).
        assert overheads["profiled"] >= overheads["optimistic"] - 0.05

    def test_profiled_instrumentation_preserves_output(self):
        built = build_workload("rawdaudio")
        golden = Interpreter(copy.deepcopy(built.module)).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        report = compile_for_encore(
            built.module, EncoreConfig(alias_mode="profiled"), args=built.args
        )
        result = Interpreter(report.module).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        assert result.output == golden.output
