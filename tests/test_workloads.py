"""Workload suite tests: every benchmark builds, verifies, runs, and is
deterministic; instrumented runs preserve outputs."""

import copy

import pytest

from repro.encore import compile_for_encore
from repro.ir import verify_module
from repro.runtime import Interpreter
from repro.workloads import (
    SUITE_MEDIABENCH,
    SUITE_SPEC_FP,
    SUITE_SPEC_INT,
    all_workloads,
    build_workload,
    get_workload,
    suites,
    workloads_in_suite,
)

ALL_NAMES = [spec.name for spec in all_workloads()]


class TestRegistry:
    def test_twenty_three_workloads(self):
        assert len(all_workloads()) == 23

    def test_suite_sizes_match_paper(self):
        assert len(workloads_in_suite(SUITE_SPEC_INT)) == 6
        assert len(workloads_in_suite(SUITE_SPEC_FP)) == 5
        assert len(workloads_in_suite(SUITE_MEDIABENCH)) == 12

    def test_suites_order(self):
        assert suites() == [SUITE_SPEC_INT, SUITE_SPEC_FP, SUITE_MEDIABENCH]

    def test_get_workload_roundtrip(self):
        spec = get_workload("175.vpr")
        assert spec.suite == SUITE_SPEC_INT
        assert spec.build().name == "175.vpr"

    def test_builds_are_independent(self):
        a = build_workload("164.gzip")
        c = build_workload("164.gzip")
        assert a.module is not c.module

    def test_malformed_kit_build_fails_at_construction(self):
        """A builder emitting a bad CFG dies in ``WorkloadSpec.build``,
        not hundreds of trials into a campaign that executes it."""
        from repro.ir import VerificationError
        from repro.workloads import WorkloadSpec
        from repro.workloads.synth import BuiltWorkload, new_workload

        def broken():
            module, kit = new_workload("broken")
            kit.b.block("entry")
            kit.b.jmp("nowhere")  # dangling successor label
            return BuiltWorkload(name="broken", module=module)

        spec = WorkloadSpec("broken", SUITE_SPEC_INT, broken)
        with pytest.raises(VerificationError):
            spec.build()


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_verifies(self, name):
        built = build_workload(name)
        verify_module(built.module)

    def test_runs_and_is_deterministic(self, name):
        built = build_workload(name)
        r1 = Interpreter(built.module, externals=built.externals).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        built2 = build_workload(name)
        r2 = Interpreter(built2.module, externals=built2.externals).run(
            built2.entry, built2.args, output_objects=built2.output_objects
        )
        assert r1.value == r2.value
        assert r1.output == r2.output
        assert r1.events == r2.events

    def test_nontrivial_dynamic_length(self, name):
        built = build_workload(name)
        result = Interpreter(built.module).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        assert result.events > 1_000, f"{name} too small ({result.events})"
        assert result.events < 2_000_000, f"{name} too large ({result.events})"

    def test_instrumented_output_matches(self, name):
        built = build_workload(name)
        golden = Interpreter(copy.deepcopy(built.module)).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        report = compile_for_encore(
            built.module, args=built.args, function=built.entry, clone=True
        )
        verify_module(report.module)
        result = Interpreter(report.module).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        assert result.value == golden.value
        assert result.output == golden.output

    def test_produces_memory_output(self, name):
        built = build_workload(name)
        assert built.output_objects, f"{name} declares no outputs"
        result = Interpreter(built.module).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        assert any(any(v != 0 for v in cells) for cells in result.output.values()), (
            f"{name} produced all-zero outputs"
        )
