"""Tests for region formation, selection, instrumentation, and the pipeline."""

import copy

import pytest

from repro.encore import (
    EncoreCompiler,
    EncoreConfig,
    RegionStatus,
    alpha,
    alpha_numeric,
    compile_for_encore,
    recovery_label,
)
from repro.encore.regions import RegionBuilder
from repro.ir import IRBuilder, Module, verify_module
from repro.profiling import profile_module
from repro.runtime import Interpreter
from helpers import (
    build_counted_loop,
    build_diamond,
    build_figure4_region,
    build_nested_loops,
)


class TestRegionBuilder:
    def test_base_regions_cover_function(self):
        module, _ = build_nested_loops()
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        regions = builder.base_regions("main")
        covered = set()
        for region in regions:
            covered |= region.blocks
        assert covered == module.function("main").reachable_labels()

    def test_regions_are_seme(self):
        for build in (build_diamond, build_counted_loop, build_figure4_region):
            module = build()[0]
            builder = RegionBuilder(module, profile_module(module, args=_args(module)))
            for region in builder.base_regions("main"):
                assert builder.is_seme(region), region

    def test_profile_attaches_entries_and_mass(self):
        module, _ = build_counted_loop(10)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        regions = builder.base_regions("main")
        loop_region = next(r for r in regions if r.header == "header")
        # Entries count region activations (entry edges from outside), not
        # loop iterations: the loop is entered once from the preamble.
        assert loop_region.entries == 1
        assert loop_region.dyn_instructions > 0

    def test_hot_path_follows_profile(self):
        module, _ = build_diamond(take_then=1)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        region = builder.base_regions("main")[0]
        assert "then" in region.hot_path
        assert "else_" not in region.hot_path

    def test_activation_length(self):
        module, _ = build_counted_loop(10)
        profile = profile_module(module)
        builder = RegionBuilder(module, profile)
        region = next(r for r in builder.base_regions("main") if r.header == "header")
        # One activation covers the whole loop execution.
        assert region.activation_length == pytest.approx(region.dyn_instructions)


def _args(module):
    func = module.function("main")
    return [5] * len(func.params)


class TestAlphaModel:
    def test_closed_form_matches_paper_cases(self):
        assert alpha(1000, 1000) == pytest.approx(0.5)
        assert alpha(2000, 1000) == pytest.approx(0.75)
        assert alpha(500, 1000) == pytest.approx(0.25)

    def test_boundaries(self):
        assert alpha(0, 100) == 0.0
        assert alpha(100, 0) == 1.0
        assert alpha(10**9, 10) == pytest.approx(1.0, abs=1e-6)

    def test_continuity_at_n_equals_dmax(self):
        left = alpha(999.999, 1000)
        right = alpha(1000.001, 1000)
        assert abs(left - right) < 1e-3

    def test_numeric_integration_agrees_with_closed_form(self):
        for n, dmax in [(100, 1000), (1000, 1000), (5000, 1000), (50, 10)]:
            assert alpha_numeric(n, dmax) == pytest.approx(
                alpha(n, dmax), rel=0.02
            )

    def test_shorter_latency_improves_coverage(self):
        n = 200
        assert alpha(n, 10) > alpha(n, 100) > alpha(n, 1000)


class TestPipelineEndToEnd:
    def test_instrumented_module_verifies_and_matches_output(self):
        module, _ = build_figure4_region()
        original = Interpreter(copy.deepcopy(module)).run(
            "main", [5], output_objects=["mem"]
        )
        report = compile_for_encore(
            module, EncoreConfig(), args=[5], clone=True
        )
        verify_module(report.module)
        instrumented = Interpreter(report.module).run(
            "main", [5], output_objects=["mem"]
        )
        assert instrumented.output == original.output
        assert instrumented.value == original.value

    def test_clone_leaves_original_untouched(self):
        module, _ = build_figure4_region()
        before = module.instruction_count()
        compile_for_encore(module, args=[5], clone=True)
        assert module.instruction_count() == before

    def test_inplace_instruments(self):
        module, _ = build_figure4_region()
        before = module.instruction_count()
        report = compile_for_encore(module, args=[5], clone=False)
        assert report.module is module
        if report.instrumentation.instrumented_regions:
            assert module.instruction_count() > before

    def test_figure4_gets_exactly_one_mem_checkpoint(self):
        module, _ = build_figure4_region()
        report = compile_for_encore(
            module, EncoreConfig(pmin=None, auto_tune=False, gamma=0.0), args=[5]
        )
        assert report.instrumentation.checkpoint_mem_sites == 1

    def test_selected_regions_are_marked(self):
        module, _ = build_counted_loop(20)
        report = compile_for_encore(module)
        assert report.selected_regions
        assert all(r.selected for r in report.selected_regions)

    def test_idempotent_loop_needs_no_mem_checkpoints(self):
        module, _ = build_counted_loop(20)
        report = compile_for_encore(module)
        assert report.instrumentation.checkpoint_mem_sites == 0
        assert any(
            r.status is RegionStatus.IDEMPOTENT for r in report.selected_regions
        )

    def test_instrumented_loop_output_unchanged(self):
        module, arr = build_counted_loop(20)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["arr"]
        )
        report = compile_for_encore(module, clone=True)
        result = Interpreter(report.module).run("main", output_objects=["arr"])
        assert result.output == golden.output
        assert result.value == golden.value

    def test_overhead_estimate_within_budget(self):
        module, _ = build_counted_loop(50)
        report = compile_for_encore(module, EncoreConfig(overhead_budget=0.20))
        assert report.estimated_overhead() <= 0.20 + 1e-6

    def test_measured_overhead_close_to_estimate(self):
        module, _ = build_counted_loop(100)
        report = compile_for_encore(module, clone=True)
        result = Interpreter(report.module).run("main")
        measured = result.overhead
        estimated = report.estimated_overhead()
        assert measured == pytest.approx(estimated, rel=0.35, abs=0.02)

    def test_region_status_fractions_sum_to_one(self):
        module, _ = build_figure4_region()
        report = compile_for_encore(module, args=[5])
        fractions = report.region_status_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_dynamic_breakdown_sums_to_one(self):
        module, _ = build_counted_loop(30)
        report = compile_for_encore(module)
        breakdown = report.dynamic_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["idempotent"] > 0.5  # the loop dominates

    def test_coverage_monotone_in_latency(self):
        module, _ = build_counted_loop(50)
        report = compile_for_encore(module)
        c10 = report.coverage(10).recoverable
        c100 = report.coverage(100).recoverable
        c1000 = report.coverage(1000).recoverable
        assert c10 >= c100 >= c1000

    def test_full_system_composition(self):
        module, _ = build_counted_loop(50)
        report = compile_for_encore(module)
        fs = report.full_system(100, masking_rate=0.91)
        assert fs.masked == pytest.approx(0.91)
        total = (
            fs.masked
            + fs.recoverable_idempotent
            + fs.recoverable_checkpointed
            + fs.not_recoverable
        )
        assert total == pytest.approx(1.0)


class TestRecoveryExecution:
    """Inject a fault, trigger detection, and confirm rollback heals it."""

    def _fault_and_recover(self, module, args, outputs, fault_at, detect_after):
        """Corrupt the dest register at event ``fault_at``; recover later."""
        from repro.runtime import bitflip

        state = {"fault_done": False, "recovered": False}

        def hook(interp, event):
            if event.index >= fault_at and not state["fault_done"]:
                if event.inst.defs():
                    dest = event.inst.defs()[0]
                    frame = interp.current_frame
                    frame.regs[dest] = bitflip(frame.regs.get(dest, 0), 5)
                    state["fault_done"] = True
                    state["fault_index"] = event.index
            elif (
                state["fault_done"]
                and not state["recovered"]
                and event.index >= state["fault_index"] + detect_after
            ):
                state["recovered"] = interp.trigger_recovery()

        interp = Interpreter(module, post_step=hook)
        result = interp.run("main", args, output_objects=outputs)
        return result, state

    def test_recovery_restores_loop_output(self):
        module, _ = build_counted_loop(30)
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=["arr"]
        )
        report = compile_for_encore(module, clone=True)
        assert report.selected_regions
        # Fault early in the loop, detect a few instructions later.
        result, state = self._fault_and_recover(
            report.module, (), ["arr"], fault_at=30, detect_after=3
        )
        assert state["fault_done"] and state["recovered"]
        assert result.output == golden.output
        assert result.value == golden.value

    def test_recovery_in_figure4(self):
        module, _ = build_figure4_region()
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", [5], output_objects=["mem"]
        )
        report = compile_for_encore(
            module, EncoreConfig(auto_tune=False, gamma=0.0), args=[5], clone=True
        )
        assert report.instrumentation.instrumented_regions >= 1
        result, state = self._fault_and_recover(
            report.module, [5], ["mem"], fault_at=4, detect_after=2
        )
        assert state["recovered"]
        assert result.output == golden.output

    def test_recovery_block_labels_present(self):
        module, _ = build_counted_loop(10)
        report = compile_for_encore(module, clone=True)
        func = report.module.function("main")
        for region in report.selected_regions:
            assert recovery_label(region) in func.blocks

    def test_unrecoverable_when_no_region_active(self):
        module, _ = build_counted_loop(10)
        interp = Interpreter(module)  # uninstrumented: no recovery ptr
        interp.run("main")
        assert not interp.trigger_recovery()
