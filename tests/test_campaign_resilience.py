"""Resilient-campaign tests: the on-disk journal, crash-and-resume
bit-equivalence, worker-crash containment, and the wall-clock trial
guard.

The invariant under test everywhere: a campaign that is interrupted —
worker SIGKILL, process crash between journal appends, resume into a
longer run — produces exactly the ``TrialResult`` sequence of an
uninterrupted serial campaign.
"""

import dataclasses
import json
import multiprocessing
import os

import pytest

from helpers import (
    CRASH_SENTINEL_ENV,
    CRASH_SPARE_PID_ENV,
    build_counted_loop,
    build_external_call_loop,
    crash_worker_once,
)
from repro.runtime import (
    CampaignJournal,
    DetectionModel,
    FaultPlan,
    JournalError,
    TrialResult,
    campaign_metadata,
    default_journal_path,
    golden_run,
    infra_error_trial,
    load_journal,
    run_campaign,
    validate_resume,
)
import repro.runtime.sfi as sfi

pytestmark = []

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _module():
    module, _ = build_counted_loop(25)
    return module


def _detector():
    return DetectionModel(dmax=40)


class TestJournalFormat:
    def test_header_and_records_round_trip(self, tmp_path):
        module = _module()
        meta = campaign_metadata(module, 5, _detector())
        path = str(tmp_path / "c.jsonl")
        campaign = None
        with CampaignJournal(path) as journal:
            journal.write_header(meta)
            campaign = run_campaign(
                module, trials=8, seed=5, detector=_detector(),
                output_objects=["arr"], on_result=journal.record,
            )
        loaded_meta, completed = load_journal(path)
        assert loaded_meta == json.loads(json.dumps(meta))
        assert sorted(completed) == list(range(8))
        for index, trial in completed.items():
            assert trial == campaign.trials[index]

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        module = _module()
        with CampaignJournal(path) as journal:
            journal.write_header(campaign_metadata(module, 1, _detector()))
            journal.record(0, infra_error_trial())
        with open(path, "a") as handle:
            handle.write('{"kind": "trial", "index": 1, "outc')
        _meta, completed = load_journal(path)
        assert sorted(completed) == [0]

    def test_duplicate_records_last_wins(self, tmp_path):
        path = str(tmp_path / "dup.jsonl")
        module = _module()
        first = infra_error_trial()
        second = TrialResult("masked", -1, None, 0)
        with CampaignJournal(path) as journal:
            journal.write_header(campaign_metadata(module, 1, _detector()))
            journal.record(0, first)
            journal.record(0, second)
        _meta, completed = load_journal(path)
        assert completed[0] == second

    def test_unknown_fields_are_dropped_on_load(self, tmp_path):
        # Forward compatibility: a journal written by a newer build with
        # extra TrialResult fields still loads.
        path = str(tmp_path / "fwd.jsonl")
        module = _module()
        with CampaignJournal(path) as journal:
            journal.write_header(campaign_metadata(module, 1, _detector()))
            record = {"kind": "trial", "index": 0, "future_field": 9,
                      **dataclasses.asdict(infra_error_trial())}
            journal._write(record)
        _meta, completed = load_journal(path)
        assert completed[0].outcome == "infra_error"

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "nohdr.jsonl"
        path.write_text('{"kind": "trial", "index": 0}\n')
        with pytest.raises(JournalError):
            load_journal(str(path))

    def test_fsync_mode_writes_identically(self, tmp_path):
        path = str(tmp_path / "sync.jsonl")
        module = _module()
        with CampaignJournal(path, fsync=True) as journal:
            journal.write_header(campaign_metadata(module, 2, _detector()))
            journal.record(0, infra_error_trial())
        _meta, completed = load_journal(path)
        assert sorted(completed) == [0]

    def test_default_journal_path_sanitizes_module_name(self):
        path = default_journal_path("lib/mat mul", 7)
        assert path == os.path.join("results", "sfi_lib_mat_mul_s7.jsonl")


class TestResumeValidation:
    def test_matching_metadata_passes(self):
        module = _module()
        meta = campaign_metadata(module, 5, _detector())
        validate_resume(json.loads(json.dumps(meta)), meta)

    def test_seed_mismatch_raises(self):
        module = _module()
        meta = campaign_metadata(module, 5, _detector())
        other = campaign_metadata(module, 6, _detector())
        with pytest.raises(JournalError, match="seed"):
            validate_resume(meta, other)

    def test_module_mismatch_raises(self):
        meta = campaign_metadata(_module(), 5, _detector())
        other_module, _ = build_counted_loop(26)
        other = campaign_metadata(other_module, 5, _detector())
        with pytest.raises(JournalError, match="module"):
            validate_resume(meta, other)

    def test_detector_mismatch_raises(self):
        module = _module()
        meta = campaign_metadata(module, 5, _detector())
        other = campaign_metadata(module, 5, DetectionModel(dmax=99))
        with pytest.raises(JournalError, match="detector"):
            validate_resume(meta, other)

    def test_torn_tail_plus_fingerprint_mismatch_fails_loudly(self, tmp_path):
        # The torn last line is tolerated by the *loader*, but it must
        # never mask a header mismatch: resuming a journal written for a
        # different module still raises, with the fingerprint named —
        # not a silent restart that would merge two campaigns' trials.
        path = str(tmp_path / "torn_mismatch.jsonl")
        with CampaignJournal(path) as journal:
            journal.write_header(campaign_metadata(_module(), 5, _detector()))
            journal.record(0, infra_error_trial())
        with open(path, "a") as handle:
            handle.write('{"kind": "trial", "index": 1, "outc')
        loaded_meta, completed = load_journal(path)
        assert sorted(completed) == [0]  # torn tail dropped, not fatal
        other_module, _ = build_counted_loop(26)
        current = campaign_metadata(other_module, 5, _detector())
        with pytest.raises(JournalError, match="module"):
            validate_resume(loaded_meta, current)

    def test_metadata_fault_journal_cannot_resume_as_plain(self):
        # Symmetric validation: the journal carries a key the current
        # campaign lacks entirely (metadata faults were on when it was
        # written).  An asymmetric current-keys-only comparison would
        # silently accept this and replay trials from a different fault
        # model.
        module = _module()
        meta_campaign = campaign_metadata(
            module, 5, _detector(), metadata_faults_per_trial=1,
            metadata_guard="checksum",
        )
        plain = campaign_metadata(module, 5, _detector())
        with pytest.raises(JournalError, match="metadata_faults_per_trial"):
            validate_resume(meta_campaign, plain)
        with pytest.raises(JournalError, match="metadata_faults_per_trial"):
            validate_resume(plain, meta_campaign)

    def test_cf_fault_journal_cannot_resume_as_plain(self):
        # Same symmetric discipline for the control-flow fault surface:
        # a journal with CFE faults armed refuses to resume a plain
        # campaign and vice versa.
        module = _module()
        cf_campaign = campaign_metadata(
            module, 5, _detector(), cf_faults_per_trial=1,
        )
        plain = campaign_metadata(module, 5, _detector())
        with pytest.raises(JournalError, match="cf_faults_per_trial"):
            validate_resume(cf_campaign, plain)
        with pytest.raises(JournalError, match="cf_faults_per_trial"):
            validate_resume(plain, cf_campaign)

    def test_cfe_detector_mismatch_raises(self):
        module = _module()
        signature = campaign_metadata(
            module, 5, _detector(), cf_faults_per_trial=1,
            cfe_detector="signature",
        )
        off = campaign_metadata(
            module, 5, _detector(), cf_faults_per_trial=1,
            cfe_detector="off",
        )
        with pytest.raises(JournalError, match="cfe_detector"):
            validate_resume(signature, off)

    def test_threads_mismatch_raises(self):
        module = _module()
        threaded = campaign_metadata(module, 5, _detector(), threads=3)
        plain = campaign_metadata(module, 5, _detector())
        with pytest.raises(JournalError, match="threads"):
            validate_resume(threaded, plain)
        with pytest.raises(JournalError, match="threads"):
            validate_resume(plain, threaded)
        other = campaign_metadata(module, 5, _detector(), threads=2)
        with pytest.raises(JournalError, match="threads"):
            validate_resume(threaded, other)

    def test_quantum_mismatch_raises(self):
        module = _module()
        q10 = campaign_metadata(module, 5, _detector(), threads=2, quantum=10)
        default_q = campaign_metadata(module, 5, _detector(), threads=2)
        with pytest.raises(JournalError, match="quantum"):
            validate_resume(q10, default_q)
        with pytest.raises(JournalError, match="quantum"):
            validate_resume(default_q, q10)

    def test_plain_metadata_header_is_byte_stable(self):
        # Default metadata-fault knobs must not change the header at
        # all, so pre-existing journals keep resuming bit-identically.
        module = _module()
        assert campaign_metadata(module, 5, _detector()) == \
            campaign_metadata(
                module, 5, _detector(),
                metadata_faults_per_trial=0, metadata_guard="off",
            )
        # Same guarantee for the threading and control-flow knobs.
        assert campaign_metadata(module, 5, _detector()) == \
            campaign_metadata(
                module, 5, _detector(),
                cf_faults_per_trial=0, cfe_detector="signature",
                threads=1, quantum=None,
            )


class TestResumeEquivalence:
    def test_resumed_campaign_is_bit_identical_to_serial(self, tmp_path):
        # Crash-and-resume round trip: journal the first 10 trials of a
        # 30-trial campaign (as if the process died there), then resume.
        module = _module()
        detector = _detector()
        serial = run_campaign(
            module, trials=30, seed=11, detector=detector,
            output_objects=["arr"],
        )
        path = str(tmp_path / "resume.jsonl")
        with CampaignJournal(path) as journal:
            journal.write_header(campaign_metadata(module, 11, detector))
            run_campaign(
                module, trials=10, seed=11, detector=detector,
                output_objects=["arr"], on_result=journal.record,
            )
        _meta, completed = load_journal(path)
        assert len(completed) == 10
        resumed = run_campaign(
            module, trials=30, seed=11, detector=detector,
            output_objects=["arr"], completed=completed,
        )
        assert resumed.trials == serial.trials
        assert resumed.resumed_trials == 10

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_parallel_resume_matches_serial(self, tmp_path):
        module = _module()
        detector = _detector()
        serial = run_campaign(
            module, trials=24, seed=3, detector=detector,
            output_objects=["arr"],
        )
        completed = {i: serial.trials[i] for i in (0, 5, 6, 7, 20, 23)}
        resumed = run_campaign(
            module, trials=24, seed=3, detector=detector,
            output_objects=["arr"], completed=completed, jobs=2,
        )
        assert resumed.trials == serial.trials
        assert resumed.resumed_trials == 6

    def test_completed_indices_beyond_campaign_are_dropped(self):
        module = _module()
        detector = _detector()
        serial = run_campaign(
            module, trials=6, seed=2, detector=detector,
            output_objects=["arr"],
        )
        completed = {i: serial.trials[i] for i in range(6)}
        completed[50] = infra_error_trial()  # stale record past the end
        shorter = run_campaign(
            module, trials=6, seed=2, detector=detector,
            output_objects=["arr"], completed=completed,
        )
        assert shorter.trials == serial.trials
        assert shorter.resumed_trials == 6

    def test_resume_into_longer_campaign_extends_prefix(self):
        # Prefix-stable planning: a journal from a 10-trial campaign
        # seeds the first 10 trials of a 20-trial campaign.
        module = _module()
        detector = _detector()
        long = run_campaign(
            module, trials=20, seed=9, detector=detector,
            output_objects=["arr"],
        )
        short = run_campaign(
            module, trials=10, seed=9, detector=detector,
            output_objects=["arr"],
        )
        completed = dict(enumerate(short.trials))
        extended = run_campaign(
            module, trials=20, seed=9, detector=detector,
            output_objects=["arr"], completed=completed,
        )
        assert extended.trials == long.trials


class TestCrossEngineResume:
    """Journals deliberately do not record the engine: because both
    engines are bit-identical, a campaign journaled under one must
    resume under the other without a single diverging trial."""

    def test_journal_written_by_reference_resumes_under_fast(self, tmp_path):
        module = _module()
        detector = _detector()
        serial = run_campaign(
            module, trials=30, seed=11, detector=detector,
            output_objects=["arr"], engine="reference",
        )
        path = str(tmp_path / "cross.jsonl")
        meta = campaign_metadata(module, 11, detector)
        with CampaignJournal(path) as journal:
            journal.write_header(meta)
            run_campaign(
                module, trials=10, seed=11, detector=detector,
                output_objects=["arr"], on_result=journal.record,
                engine="reference",
            )
        loaded_meta, completed = load_journal(path)
        validate_resume(loaded_meta, meta)  # engine-free headers match
        resumed = run_campaign(
            module, trials=30, seed=11, detector=detector,
            output_objects=["arr"], completed=completed, engine="fast",
        )
        assert resumed.trials == serial.trials
        assert resumed.resumed_trials == 10

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_fast_parallel_resume_of_reference_journal(self, tmp_path):
        # The resumed tail runs on the fast engine across workers, each
        # cloning its per-worker cached golden memory image — still
        # bit-identical to the serial reference campaign.
        module = _module()
        detector = _detector()
        serial = run_campaign(
            module, trials=24, seed=3, detector=detector,
            output_objects=["arr"], engine="reference",
        )
        completed = {i: serial.trials[i] for i in (0, 5, 6, 7, 20, 23)}
        resumed = run_campaign(
            module, trials=24, seed=3, detector=detector,
            output_objects=["arr"], completed=completed, jobs=2,
            engine="fast",
        )
        assert resumed.trials == serial.trials
        assert resumed.resumed_trials == 6


@pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
class TestWorkerCrashContainment:
    def _env(self, monkeypatch, sentinel):
        monkeypatch.setenv(CRASH_SENTINEL_ENV, sentinel)
        monkeypatch.setenv(CRASH_SPARE_PID_ENV, str(os.getpid()))

    def test_killed_worker_is_contained_and_matches_serial(
        self, tmp_path, monkeypatch
    ):
        module, _ = build_external_call_loop(8)
        externals = {"maybe_crash": crash_worker_once}
        detector = _detector()
        serial = run_campaign(
            module, trials=12, seed=4, detector=detector,
            output_objects=["out"], externals=externals,
        )
        self._env(monkeypatch, str(tmp_path / "crash-sentinel"))
        crashed = run_campaign(
            module, trials=12, seed=4, detector=detector,
            output_objects=["out"], externals=externals,
            jobs=2, chunk_size=3,
        )
        assert crashed.pool_restarts >= 1
        assert crashed.trials == serial.trials

    def test_pool_retries_exhausted_marks_infra_error(self, monkeypatch):
        # Every worker dies on its first external call: after
        # max_pool_retries fresh pools the campaign must still return,
        # with every unfinished trial explicitly marked.
        module, _ = build_external_call_loop(8)
        externals = {"maybe_crash": crash_worker_once}
        self._env(monkeypatch, "always")
        campaign = run_campaign(
            module, trials=6, seed=4, detector=_detector(),
            output_objects=["out"], externals=externals,
            jobs=2, chunk_size=2, max_pool_retries=1,
        )
        assert len(campaign.trials) == 6
        assert campaign.infra_errors == 6
        assert campaign.pool_restarts == 2  # initial pool + 1 retry
        assert campaign.covered_fraction == 0.0


class TestTrialTimeout:
    def test_call_with_timeout_interrupts_busy_loop(self):
        def busy():
            while True:
                pass

        with pytest.raises(sfi.TrialTimeout):
            sfi.call_with_timeout(busy, 0.05)

    def test_call_without_timeout_runs_unguarded(self):
        assert sfi.call_with_timeout(lambda: 42, None) == 42
        assert sfi.call_with_timeout(lambda: 42, 0) == 42

    def test_overrunning_trial_classifies_infra_error(self, monkeypatch):
        module = _module()
        golden = golden_run(module, output_objects=["arr"])

        def stuck_trial(*args, **kwargs):
            while True:
                pass

        monkeypatch.setattr(sfi, "run_trial", stuck_trial)
        plan = FaultPlan(0, (1,), (2,), (None,))
        result = sfi.run_planned_trial(
            module, golden, plan, output_objects=["arr"], trial_timeout=0.05
        )
        assert result.outcome == "infra_error"

    def test_timer_is_disarmed_after_the_trial(self):
        import signal

        sfi.call_with_timeout(lambda: None, 5.0)
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
