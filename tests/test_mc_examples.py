"""The shipped MC example programs compile, run, protect, and recover."""

import copy
import glob
import os

import pytest

from repro.encore import EncoreConfig, compile_for_encore
from repro.frontend import compile_source
from repro.opt import optimize_module
from repro.runtime import Interpreter, run_symptom_campaign

MC_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "mc")
MC_FILES = sorted(glob.glob(os.path.join(MC_DIR, "*.mc")))

OUTPUTS = {
    "adpcm.mc": ("audio",),
    "crc32.mc": ("table",),
    "fir.mc": ("filtered",),
    "sort.mc": ("keys",),
    "matmul.mc": ("C",),
    "quicksort.mc": ("data", "checksum"),
}


def _load(path):
    with open(path) as handle:
        return compile_source(handle.read(), name=os.path.basename(path))


class TestMCPrograms:
    def test_examples_exist(self):
        assert len(MC_FILES) >= 6

    @pytest.mark.parametrize(
        "path", MC_FILES, ids=[os.path.basename(p) for p in MC_FILES]
    )
    def test_compiles_and_runs(self, path):
        module = _load(path)
        outputs = OUTPUTS.get(os.path.basename(path), ())
        result = Interpreter(module).run("main", output_objects=outputs)
        assert result.events > 100

    @pytest.mark.parametrize(
        "path", MC_FILES, ids=[os.path.basename(p) for p in MC_FILES]
    )
    def test_optimizer_preserves_output(self, path):
        module = _load(path)
        outputs = OUTPUTS.get(os.path.basename(path), ())
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=outputs
        )
        optimize_module(module)
        result = Interpreter(module).run("main", output_objects=outputs)
        assert result.value == golden.value
        assert result.output == golden.output

    @pytest.mark.parametrize(
        "path", MC_FILES, ids=[os.path.basename(p) for p in MC_FILES]
    )
    def test_protected_output_identical(self, path):
        module = _load(path)
        optimize_module(module)
        outputs = OUTPUTS.get(os.path.basename(path), ())
        golden = Interpreter(copy.deepcopy(module)).run(
            "main", output_objects=outputs
        )
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        result = Interpreter(report.module).run("main", output_objects=outputs)
        assert result.value == golden.value
        assert result.output == golden.output

    def test_sort_is_non_idempotent_but_protected(self):
        from repro.encore import RegionStatus

        module = _load(os.path.join(MC_DIR, "sort.mc"))
        optimize_module(module)
        report = compile_for_encore(
            module, EncoreConfig(overhead_budget=0.5), clone=True
        )
        hot = max(report.candidate_regions, key=lambda r: r.dyn_instructions)
        assert hot.status is RegionStatus.NON_IDEMPOTENT
        assert hot.selected
        assert hot.checkpoint_sites

    def test_sorted_result_survives_faults(self):
        module = _load(os.path.join(MC_DIR, "sort.mc"))
        optimize_module(module)
        report = compile_for_encore(
            module, EncoreConfig(overhead_budget=0.5), clone=True
        )
        campaign = run_symptom_campaign(
            report.module, output_objects=("keys",), trials=40, seed=6,
            slack=0.25,
        )
        assert campaign.fraction("recovered") > 0.2


    def test_quicksort_actually_sorts(self):
        module = _load(os.path.join(MC_DIR, "quicksort.mc"))
        result = Interpreter(module).run("main", output_objects=("data",))
        assert result.output["data"] == sorted(result.output["data"])

    def test_matmul_identityish_product(self):
        module = _load(os.path.join(MC_DIR, "matmul.mc"))
        result = Interpreter(module).run("main", output_objects=("C",))
        # Row 0 of B is mostly identity-like; spot-check one entry:
        # C[0][0] = sum_k A[0][k] * B[k][0] = A[0][0] + A[0][4] + A[0][6].
        assert result.output["C"][0] == 1 + 5 + 7

    def test_quicksort_recursive_core_is_unknown(self):
        from repro.encore import RegionStatus

        module = _load(os.path.join(MC_DIR, "quicksort.mc"))
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        statuses = {r.func: r.status for r in report.candidate_regions}
        assert statuses.get("qsort_range") is RegionStatus.UNKNOWN
