"""Tests for the function-inlining pass."""

import copy

import pytest

from repro.frontend import compile_source
from repro.ir import IRBuilder, Module, VirtualRegister, verify_module
from repro.opt import inline_functions, optimize_module
from repro.runtime import Interpreter


def run(module, args=(), outputs=(), fn="main"):
    return Interpreter(copy.deepcopy(module)).run(fn, args, output_objects=outputs)


class TestInlining:
    def test_simple_leaf_inlined(self):
        module = Module()
        x = VirtualRegister("x")
        square = module.add_function("square", params=[x])
        sb = IRBuilder(square)
        sb.block("entry")
        sb.ret(sb.mul(x, x))
        main = module.add_function("main")
        b = IRBuilder(main)
        b.block("entry")
        r = b.call("square", [7])
        b.ret(r)
        before = run(module)
        assert inline_functions(module) == 1
        verify_module(module)
        after = run(module)
        assert after.value == before.value == 49
        # No call remains in main.
        assert all(
            inst.opcode != "call"
            for block in module.function("main")
            for inst in block
        )

    def test_branchy_callee(self):
        source = """
        int clamp(int v, int lo, int hi) {
            if (v < lo) { return lo; }
            if (v > hi) { return hi; }
            return v;
        }
        int main() {
            return clamp(99, 0, 15) + clamp(-3, 0, 15) + clamp(7, 0, 15);
        }
        """
        module = compile_source(source)
        before = run(module)
        count = inline_functions(module)
        assert count == 3
        verify_module(module)
        assert run(module).value == before.value == 15 + 0 + 7

    def test_callee_in_loop(self):
        source = """
        global int out[32];
        int mix(int a, int b) { return (a * 17 + b) & 255; }
        int main() {
            int acc = 1;
            for (int i = 0; i < 32; i = i + 1) {
                acc = mix(acc, i);
                out[i] = acc;
            }
            return acc;
        }
        """
        module = compile_source(source)
        before = run(module, outputs=("out",))
        optimize_module(module)  # inline + clean up the splice
        verify_module(module)
        after = run(module, outputs=("out",))
        assert after.value == before.value
        assert after.output == before.output
        # After cleanup the call/ret overhead is gone.
        assert after.events <= before.events

    def test_recursion_not_inlined(self):
        source = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main() { return fact(6); }
        """
        module = compile_source(source)
        inline_functions(module)
        verify_module(module)
        assert run(module).value == 720
        # fact still calls itself.
        assert any(
            inst.opcode == "call"
            for block in module.function("fact")
            for inst in block
        )

    def test_large_functions_kept(self):
        module = Module()
        out = module.add_global("out", 64)
        big = module.add_function("big")
        bb = IRBuilder(big)
        bb.block("entry")
        for i in range(64):
            bb.store(out, i, i)
        bb.ret(0)
        main = module.add_function("main")
        b = IRBuilder(main)
        b.block("entry")
        b.call("big", [])
        b.ret(0)
        assert inline_functions(module, max_size=40) == 0

    def test_callee_with_stack_objects(self):
        module = Module()
        x = VirtualRegister("x")
        leaf = module.add_function("leaf", params=[x])
        buf = leaf.add_stack_object("buf", 2)
        lb = IRBuilder(leaf)
        lb.block("entry")
        lb.store(buf, 0, x)
        v = lb.load(buf, 0)
        lb.ret(lb.add(v, 1))
        main = module.add_function("main")
        b = IRBuilder(main)
        b.block("entry")
        a = b.call("leaf", [4])
        c = b.call("leaf", [10])
        b.ret(b.add(a, c))
        before = run(module)
        assert inline_functions(module) >= 2
        verify_module(module)
        assert run(module).value == before.value == 5 + 11

    def test_chain_inlines_over_rounds(self):
        source = """
        int base(int x) { return x + 1; }
        int middle(int x) { return base(x) * 2; }
        int main() { return middle(10); }
        """
        module = compile_source(source)
        inline_functions(module)
        verify_module(module)
        assert run(module).value == 22
        # After rounds, main no longer calls anything.
        assert all(
            inst.opcode != "call"
            for block in module.function("main")
            for inst in block
        )

    def test_inlining_improves_encore_coverage(self):
        from repro.encore import EncoreConfig, compile_for_encore

        source = open("examples/mc/adpcm.mc").read()
        plain = compile_source(source)
        inlined = compile_source(source)
        inline_functions(inlined)
        optimize_module(inlined, inline=False)
        verify_module(inlined)

        report_plain = compile_for_encore(plain, EncoreConfig())
        report_inlined = compile_for_encore(inlined, EncoreConfig())
        cov_plain = report_plain.coverage(100).recoverable
        cov_inlined = report_inlined.coverage(100).recoverable
        # With clamp() inlined the hot loop covers its work directly.
        assert cov_inlined > cov_plain + 0.10, (cov_plain, cov_inlined)

    def test_workload_semantics_preserved(self):
        from repro.workloads import build_workload

        for name in ("175.vpr", "164.gzip"):
            built = build_workload(name)
            before = Interpreter(copy.deepcopy(built.module)).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            inline_functions(built.module)
            verify_module(built.module)
            after = Interpreter(built.module).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            assert after.value == before.value, name
            assert after.output == before.output, name
