"""The differential-fuzzing subsystem: generator, oracles, reducer,
campaigns.

The load-bearing guarantees tested here:

* every generated program is verified, trap-free, terminating, and a
  pure function of ``(seed, config)``;
* the oracle suite reports zero failures on a clean toolchain and
  catches both planted miscompiles;
* reduction preserves the failure fingerprint and shrinks the planted
  miscompile to a repro of at most 15 IR instructions;
* campaigns are bit-deterministic — across repeat runs, across
  ``jobs``, and across journal resume — with dedup by
  ``(oracle, fingerprint)`` and a reproducible corpus.
"""

import copy
import json

import pytest

from repro.fuzz import (
    DEFECT_ENV,
    EXTERNALS,
    PROFILES,
    SMALL,
    FuzzJournal,
    FuzzRecord,
    FuzzSettings,
    GeneratorConfig,
    count_instructions,
    derive_program_seed,
    generate_program,
    load_fuzz_journal,
    make_oracles,
    reduce_program,
    run_fuzz_campaign,
    run_oracles,
    run_program,
    validate_fuzz_resume,
)
from repro.fuzz.oracles import Oracle, OracleFailure
from repro.ir import module_to_text, verify_module
from repro.runtime import Interpreter


def run_bare(program, module=None):
    return Interpreter(
        copy.deepcopy(module or program.module), externals=EXTERNALS
    ).run(program.entry, program.args,
          output_objects=program.output_objects)


class TestGenerator:
    def test_reproducible_from_seed_and_config(self):
        for seed in (0, 1, 7, 123456789):
            a = generate_program(seed, SMALL)
            b = generate_program(seed, SMALL)
            assert module_to_text(a.module) == module_to_text(b.module)
            assert a.output_objects == b.output_objects

    def test_different_seeds_differ(self):
        texts = {
            module_to_text(generate_program(seed, SMALL).module)
            for seed in range(10)
        }
        assert len(texts) == 10

    def test_programs_verify_and_terminate(self):
        for seed in range(30):
            program = generate_program(seed, GeneratorConfig())
            verify_module(program.module)
            first = run_bare(program)
            second = run_bare(program)
            assert first.output == second.output
            assert first.events == second.events

    def test_derived_seeds_are_independent_streams(self):
        seeds = {derive_program_seed(0, i) for i in range(100)}
        seeds |= {derive_program_seed(1, i) for i in range(100)}
        assert len(seeds) == 200

    def test_config_rejects_non_power_of_two_memory(self):
        with pytest.raises(ValueError):
            GeneratorConfig(global_size=6)

    def test_profiles_registered(self):
        assert "default" in PROFILES and "small" in PROFILES
        assert "threads" in PROFILES

    def test_default_profile_identity_unchanged_by_threads_knob(self):
        """The ``threads`` knob must not perturb pre-existing journals:
        at its default it is absent from the config key (campaign
        fingerprints hash it), and the default/small grammars draw the
        same RNG stream as before the knob existed."""
        key = GeneratorConfig().key()
        assert "threads" not in key
        assert key == (
            '{"externals":true,"float_globals":1,"float_ops":true,'
            '"global_size":8,"helpers":2,"int_globals":2,"max_depth":3,'
            '"max_stmts":7,"max_trip":5,"pointers":true}'
        )
        assert '"threads":2' in PROFILES["threads"].key()
        for seed in range(10):
            module = generate_program(seed, GeneratorConfig()).module
            opcodes = {inst.opcode for func in module
                       for block in func for inst in block}
            assert not opcodes & {"spawn", "join"}

    def test_threads_profile_spawns_and_stays_in_envelope(self):
        """Threaded programs keep every generator guarantee: verified,
        trap-free, terminating, reproducible — plus a real multithreaded
        interleaving and a schedule-invariant result."""
        from repro.runtime import make_interpreter

        for seed in range(12):
            program = generate_program(seed, PROFILES["threads"])
            assert program.threads == 3
            verify_module(program.module)
            opcodes = {inst.opcode for func in program.module
                       for block in func for inst in block}
            assert {"spawn", "join"} <= opcodes

            def run(quantum=None):
                interp = make_interpreter(
                    copy.deepcopy(program.module), externals=EXTERNALS,
                    max_steps=2_000_000, quantum=quantum,
                )
                result = interp.run(
                    program.entry, program.args,
                    output_objects=program.output_objects,
                )
                return result, interp.scheduler

            first, sched = run()
            assert sched is not None and sched.switch_log
            second, _ = run()
            assert (first.value, first.output, first.events) == (
                second.value, second.output, second.events)
            # Schedule-invariance: a different quantum changes the
            # interleaving but not the observable result — the property
            # that keeps the differential oracles sound on this profile.
            skewed, skewed_sched = run(quantum=7)
            assert skewed_sched.switch_log != tuple(sched.switch_log) or (
                len(skewed_sched.switch_log) == len(sched.switch_log))
            assert skewed.value == first.value
            assert skewed.output == first.output

    def test_threads_profile_oracles_clean(self):
        """The full oracle suite holds on spawn-containing programs
        (the replay oracle self-gates — chunked replay has no scheduler
        state)."""
        from repro.fuzz import DEFAULT_ORACLES

        for seed in (3, 4):
            program = generate_program(seed, PROFILES["threads"])
            failures = run_oracles(program, make_oracles(DEFAULT_ORACLES))
            assert failures == [], [f"{f.oracle}:{f.kind}" for f in failures]

    def test_replay_oracle_gates_off_for_threaded_programs(self):
        from repro.fuzz.oracles import ReplayDeterminismOracle

        program = generate_program(5, PROFILES["threads"])
        assert ReplayDeterminismOracle().check(program) == []

    def test_richness_covers_grammar(self):
        """The corpus actually exercises loops, calls, pointers, and
        floats — not just straight-line arithmetic."""
        opcodes = set()
        for seed in range(40):
            module = generate_program(seed, GeneratorConfig()).module
            for func in module:
                for block in func:
                    for inst in block:
                        opcodes.add(inst.opcode)
                        if inst.opcode == "binop":
                            opcodes.add(inst.op)
        for needed in ("br", "call", "load", "store", "addrof",
                       "fadd", "fmul", "add", "mul"):
            assert needed in opcodes, needed


class TestOracles:
    def test_clean_toolchain_reports_zero_failures(self):
        oracles = make_oracles(
            ["semantic", "conservative", "opt", "rollback"]
        )
        for seed in range(15):
            program = generate_program(seed, SMALL)
            assert run_oracles(program, oracles) == [], seed

    def test_campaign_oracle_clean(self):
        program = generate_program(3, SMALL)
        assert run_oracles(program, make_oracles(["campaign"])) == []

    def test_replay_oracle_clean_on_generated_programs(self):
        oracles = make_oracles(["replay"])
        for seed in range(8):
            program = generate_program(seed, SMALL)
            assert run_oracles(program, oracles) == [], seed

    def test_replay_oracle_in_registry_and_defaults(self):
        from repro.fuzz.oracles import DEFAULT_ORACLES, ORACLE_REGISTRY

        assert "replay" in ORACLE_REGISTRY
        assert "replay" in DEFAULT_ORACLES
        (oracle,) = make_oracles(["replay"])
        assert oracle.name == "replay"

    def test_replay_oracle_fingerprint_reduction_stable(self):
        # Coarse kinds survive delta-debugging: the same oracle+kind
        # fingerprints identically regardless of the detail text.
        a = OracleFailure("replay", "spurious-divergence:raw",
                          "chunk 3 of 40 diverged")
        b = OracleFailure("replay", "spurious-divergence:raw",
                          "chunk 1 of 2 diverged")
        c = OracleFailure("replay", "spurious-divergence:instrumented",
                          "chunk 3 of 40 diverged")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_fingerprint_is_coarse_and_stable(self):
        a = OracleFailure("opt", "mismatch", "value 1->2")
        b = OracleFailure("opt", "mismatch", "completely different detail")
        c = OracleFailure("opt", "crash", "value 1->2")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            make_oracles(["semantic", "nonsense"])

    def test_crashing_oracle_is_contained(self):
        class Exploding(Oracle):
            name = "exploding"

            def check(self, program):
                raise RuntimeError("boom")

        failures = run_oracles(
            generate_program(0, SMALL), [Exploding()]
        )
        assert len(failures) == 1
        assert failures[0].kind == "oracle-error"
        assert "boom" in failures[0].detail

    def test_planted_opt_defect_is_found(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        oracles = make_oracles(["opt"])
        found = [
            seed for seed in range(10)
            if run_oracles(generate_program(seed, SMALL), oracles)
        ]
        assert found, "opt-swap-add never detected in 10 programs"

    def test_planted_rollback_defect_is_found(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "drop-ckpt-mem")
        oracles = make_oracles(["rollback"])
        found = []
        for seed in range(12):
            failures = run_oracles(generate_program(seed, SMALL), oracles)
            found.extend(f.kind for f in failures)
        assert "inexact-restore" in found


class TestReduction:
    def _first_finding(self, oracle_name, budget=20):
        oracle = make_oracles([oracle_name])[0]
        for seed in range(budget):
            program = generate_program(seed, SMALL)
            failures = run_oracles(program, [oracle])
            if failures:
                return program, oracle, failures[0]
        pytest.fail(f"no {oracle_name} finding in {budget} programs")

    def test_planted_miscompile_shrinks_to_at_most_15_instructions(
        self, monkeypatch
    ):
        """The acceptance-criterion demo: find the hidden miscompile,
        then delta-debug it below 15 IR instructions."""
        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        program, oracle, failure = self._first_finding("opt")
        result = reduce_program(program, oracle, failure.fingerprint)
        assert result.final_instructions <= 15
        assert result.final_instructions < result.initial_instructions
        # The shrunk module still reproduces the same failure class.
        reduced_failures = run_oracles(result.program, [oracle])
        assert failure.fingerprint in [
            f.fingerprint for f in reduced_failures
        ]
        verify_module(result.program.module)

    def test_reduction_is_deterministic(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        program, oracle, failure = self._first_finding("opt")
        a = reduce_program(program, oracle, failure.fingerprint)
        b = reduce_program(program, oracle, failure.fingerprint)
        assert module_to_text(a.program.module) == \
            module_to_text(b.program.module)
        assert a.checks == b.checks

    def test_render_carries_replay_command(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        program, oracle, failure = self._first_finding("opt")
        result = reduce_program(program, oracle, failure.fingerprint)
        result.profile = "small"
        text = result.render()
        assert f"--replay {program.seed}" in text
        assert "--profile small" in text
        assert "module" in text  # the IR itself is embedded

    def test_refuses_non_reproducing_fingerprint(self):
        program = generate_program(0, SMALL)
        oracle = make_oracles(["opt"])[0]
        with pytest.raises(ValueError, match="does not reproduce"):
            reduce_program(program, oracle, "deadbeef0000")


SETTINGS = FuzzSettings(seed=7, profile="small",
                        oracles=("opt", "conservative"),
                        campaign_every=0)


class TestCampaign:
    def test_run_twice_is_bit_identical(self):
        a = run_fuzz_campaign(SETTINGS, budget=12, reduce=False)
        b = run_fuzz_campaign(SETTINGS, budget=12, reduce=False)
        assert a.fingerprint() == b.fingerprint()
        assert a.records == b.records

    def test_parallel_equals_serial(self):
        serial = run_fuzz_campaign(SETTINGS, budget=12, reduce=False)
        parallel = run_fuzz_campaign(
            SETTINGS, budget=12, jobs=2, chunk_size=3, reduce=False
        )
        assert parallel.records == serial.records
        assert parallel.fingerprint() == serial.fingerprint()

    def test_journal_matches_fingerprint_and_resumes(self, tmp_path):
        path = tmp_path / "fuzz.jsonl"
        with FuzzJournal(path, SETTINGS) as journal:
            full = run_fuzz_campaign(
                SETTINGS, budget=10, journal=journal, reduce=False
            )
        import hashlib
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert digest == full.fingerprint()

        # A prefix journal resumes to the same bytes.
        prefix = tmp_path / "prefix.jsonl"
        with FuzzJournal(prefix, SETTINGS) as journal:
            run_fuzz_campaign(
                SETTINGS, budget=4, journal=journal, reduce=False
            )
        header, completed = load_fuzz_journal(prefix)
        validate_fuzz_resume(header, SETTINGS)
        assert len(completed) == 4
        with FuzzJournal(prefix, SETTINGS) as journal:
            resumed = run_fuzz_campaign(
                SETTINGS, budget=10, journal=journal,
                completed=completed, reduce=False,
            )
        assert resumed.executed == 6 and resumed.resumed == 4
        assert prefix.read_bytes() == path.read_bytes()
        assert resumed.records == full.records

    def test_resume_rejects_mismatched_settings(self, tmp_path):
        path = tmp_path / "fuzz.jsonl"
        with FuzzJournal(path, SETTINGS) as journal:
            run_fuzz_campaign(
                SETTINGS, budget=2, journal=journal, reduce=False
            )
        header, _ = load_fuzz_journal(path)
        other = FuzzSettings(seed=8, profile="small",
                             oracles=("opt", "conservative"),
                             campaign_every=0)
        with pytest.raises(ValueError, match="refusing to resume"):
            validate_fuzz_resume(header, other)

    def test_journal_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "fuzz.jsonl"
        with FuzzJournal(path, SETTINGS) as journal:
            run_fuzz_campaign(
                SETTINGS, budget=4, journal=journal, reduce=False
            )
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"index": 99, "torn')
        header, records = load_fuzz_journal(path)
        assert len(records) == 4

    def test_record_json_roundtrip(self):
        record = run_program(SETTINGS, 3)
        assert FuzzRecord.from_json(record.to_json()) == record

    def test_defect_campaign_dedups_and_fills_corpus(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        corpus = tmp_path / "corpus"
        result = run_fuzz_campaign(
            FuzzSettings(seed=7, profile="small", oracles=("opt",),
                         campaign_every=0),
            budget=8, corpus_dir=corpus, max_reduce_checks=500,
        )
        assert result.failures
        unique = result.unique_failures
        assert len(unique) == 1  # one defect class, many witnesses
        ((oracle_name, fingerprint), (index, _)) = \
            next(iter(unique.items()))
        # dedup keeps the first failing index regardless of order
        assert index == min(i for i, _ in result.failures)
        artifact = corpus / f"{oracle_name}-{fingerprint}.ir"
        assert artifact.exists()
        assert f"fingerprint={fingerprint}" in artifact.read_text()
        assert len(result.reductions) == 1
        assert result.reductions[0].final_instructions <= 15

    def test_defect_corpus_identical_serial_vs_parallel(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(DEFECT_ENV, "opt-swap-add")
        settings = FuzzSettings(seed=7, profile="small",
                                oracles=("opt",), campaign_every=0)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_fuzz_campaign(
            settings, budget=8, corpus_dir=serial_dir,
            max_reduce_checks=500,
        )
        parallel = run_fuzz_campaign(
            settings, budget=8, jobs=2, corpus_dir=parallel_dir,
            max_reduce_checks=500,
        )
        assert serial.fingerprint() == parallel.fingerprint()
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        parallel_files = sorted(p.name for p in parallel_dir.iterdir())
        assert serial_files == parallel_files
        for name in serial_files:
            assert (serial_dir / name).read_text() == \
                (parallel_dir / name).read_text()

    def test_campaign_every_gates_campaign_oracle(self):
        settings = FuzzSettings(seed=7, profile="small",
                                oracles=("campaign",), campaign_every=4)
        # Only index 0 runs the campaign oracle in a 3-program window
        # starting at 0; indices 1, 2 skip it entirely.
        record = run_program(settings, 1)
        assert record.failures == ()

    def test_settings_validation(self):
        with pytest.raises(ValueError, match="unknown profile"):
            FuzzSettings(profile="gigantic")
        with pytest.raises(ValueError, match="unknown oracle"):
            FuzzSettings(oracles=("semantic", "nope"))
