"""Unit tests for the generic worklist dataflow solvers."""

from repro.analysis.dataflow import solve_backward_union, solve_forward_union


class TestBackwardUnion:
    def test_linear_liveness_shape(self):
        # a -> b -> c ; gen at c propagates backward unless killed.
        nodes = ["a", "b", "c"]
        succs = {"a": ["b"], "b": ["c"], "c": []}
        gen = {"c": {"x"}}
        kill = {"b": {"x"}}
        result = solve_backward_union(nodes, succs, gen, kill)
        assert result["c"] == {"x"}
        assert result["b"] == set()   # killed at b
        assert result["a"] == set()

    def test_join_over_branches(self):
        nodes = ["top", "l", "r", "join"]
        succs = {"top": ["l", "r"], "l": ["join"], "r": ["join"], "join": []}
        gen = {"l": {"a"}, "r": {"b"}, "join": {"c"}}
        result = solve_backward_union(nodes, succs, gen, {})
        assert result["top"] == {"a", "b", "c"}

    def test_cycle_reaches_fixpoint(self):
        nodes = ["h", "b"]
        succs = {"h": ["b"], "b": ["h"]}
        gen = {"b": {"x"}}
        result = solve_backward_union(nodes, succs, gen, {})
        assert result["h"] == {"x"}
        assert result["b"] == {"x"}


class TestForwardUnion:
    def test_reaching_shape(self):
        nodes = ["a", "b", "c"]
        preds = {"a": [], "b": ["a"], "c": ["b"]}
        gen = {"a": {"d1"}}
        kill = {"b": {"d1"}}
        result = solve_forward_union(nodes, preds, gen, kill)
        assert result["a"] == {"d1"}
        assert result["b"] == set()
        assert result["c"] == set()

    def test_merge_at_join(self):
        nodes = ["top", "l", "r", "join"]
        preds = {"top": [], "l": ["top"], "r": ["top"], "join": ["l", "r"]}
        gen = {"l": {"x"}, "r": {"y"}}
        result = solve_forward_union(nodes, preds, gen, {})
        assert result["join"] == {"x", "y"}

    def test_loop_fixpoint(self):
        nodes = ["h", "b"]
        preds = {"h": ["b"], "b": ["h"]}
        gen = {"h": {"x"}}
        result = solve_forward_union(nodes, preds, gen, {})
        assert result["b"] == {"x"}
