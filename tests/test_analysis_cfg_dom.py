"""Tests for CFG traversals and dominator-tree construction."""

import pytest

from repro.analysis import CFGView, DominatorTree, post_order, topological_order
from repro.analysis.cfg import reachable_from, reverse_graph
from repro.ir import IRBuilder, Module
from helpers import build_counted_loop, build_diamond, build_figure4_region, build_nested_loops


def cfg_of(module, fn="main"):
    return CFGView(module.function(fn))


class TestCFGView:
    def test_diamond_edges(self):
        module, _ = build_diamond()
        cfg = cfg_of(module)
        assert set(cfg.succs["entry"]) == {"then", "else_"}
        assert sorted(cfg.preds["join"]) == ["else_", "then"]
        assert cfg.entry == "entry"

    def test_unreachable_excluded(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.ret(0)
        b.block("orphan")
        b.ret(1)
        cfg = CFGView(func)
        assert "orphan" not in cfg
        assert len(cfg) == 1

    def test_post_order_children_before_parents(self):
        module, _ = build_diamond()
        cfg = cfg_of(module)
        order = cfg.post_order()
        assert order.index("join") < order.index("then")
        assert order.index("then") < order.index("entry")
        assert order[-1] == "entry"

    def test_reverse_post_order_is_topological_for_dag(self):
        module, _ = build_diamond()
        cfg = cfg_of(module)
        rpo = cfg.reverse_post_order()
        pos = {l: i for i, l in enumerate(rpo)}
        for src, dsts in cfg.succs.items():
            for dst in dsts:
                assert pos[src] < pos[dst]

    def test_exit_labels(self):
        module, _ = build_counted_loop()
        cfg = cfg_of(module)
        assert cfg.exit_labels() == ["exit"]


class TestGraphHelpers:
    def test_reverse_graph(self):
        g = {"a": ["b", "c"], "b": ["c"], "c": []}
        rev = reverse_graph(g)
        assert sorted(rev["c"]) == ["a", "b"]
        assert rev["a"] == []

    def test_reachable_from(self):
        g = {"a": ["b"], "b": [], "c": ["a"]}
        assert reachable_from(g, "a") == {"a", "b"}

    def test_topological_order_rejects_cycles(self):
        g = {"a": ["b"], "b": ["a"]}
        with pytest.raises(ValueError):
            topological_order(g, ["a"])

    def test_post_order_on_cycle_terminates(self):
        g = {"a": ["b"], "b": ["a", "c"], "c": []}
        order = post_order(g, "a")
        assert set(order) == {"a", "b", "c"}


class TestDominators:
    def test_diamond_dominators(self):
        module, _ = build_diamond()
        cfg = cfg_of(module)
        dom = DominatorTree(cfg)
        assert dom.idom["then"] == "entry"
        assert dom.idom["else_"] == "entry"
        assert dom.idom["join"] == "entry"
        assert dom.dominates("entry", "join")
        assert not dom.dominates("then", "join")

    def test_loop_dominators(self):
        module, _ = build_counted_loop()
        cfg = cfg_of(module)
        dom = DominatorTree(cfg)
        assert dom.idom["header"] == "entry"
        assert dom.idom["body"] == "header"
        assert dom.idom["exit"] == "header"
        assert dom.dominates("header", "body")

    def test_every_block_dominated_by_entry(self):
        module, _ = build_figure4_region()
        cfg = cfg_of(module)
        dom = DominatorTree(cfg)
        for label in cfg.labels:
            assert dom.dominates("bb1", label)

    def test_figure4_join_dominator(self):
        module, _ = build_figure4_region()
        dom = DominatorTree(cfg_of(module))
        # bb6 joins the two arms; its idom is the fork point bb1.
        assert dom.idom["bb6"] == "bb1"
        assert dom.idom["bb8"] == "bb6"

    def test_dominated_set(self):
        module, _ = build_nested_loops()
        dom = DominatorTree(cfg_of(module))
        inner = dom.dominated_set("inner_header")
        assert "inner_body" in inner
        assert "outer_header" not in inner

    def test_strict_dominance(self):
        module, _ = build_diamond()
        dom = DominatorTree(cfg_of(module))
        assert dom.strictly_dominates("entry", "join")
        assert not dom.strictly_dominates("join", "join")
        assert dom.dominates("join", "join")
