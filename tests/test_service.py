"""Campaign-service tests: sharding/backoff/watchdog bookkeeping, the
in-order journal, spec validation, and the supervised dispatcher —
including the load-bearing invariant that a campaign served over HTTP
(even one whose worker is SIGKILLed mid-flight) produces a journal
byte-identical to the same one-shot serial run.
"""

import asyncio
import dataclasses
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from helpers import build_counted_loop
from repro.ir.printer import module_to_text
from repro.runtime import (
    CampaignInterrupted,
    CampaignJournal,
    DetectionModel,
    InOrderJournal,
    JournalError,
    TrialResult,
    campaign_metadata,
    header_fingerprint,
    infra_error_trial,
    load_journal,
    run_campaign,
    validate_resume,
)
from repro.service import (
    COMPLETED,
    CampaignServer,
    CampaignSpec,
    CampaignTask,
    ExponentialBackoff,
    HealthMonitor,
    ServiceClient,
    ServiceError,
    SpecError,
    default_batch_size,
    shard_batches,
)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="service workers require the fork start method"
)


def _module(n=25):
    module, _ = build_counted_loop(n)
    return module


def _detector():
    return DetectionModel(dmax=40)


def _spec(module=None, **overrides):
    module = module or _module()
    settings = dict(
        module_text=module_to_text(module) + "\n",
        output_objects=("arr",),
        trials=12,
        seed=9,
        dmax=40,
    )
    settings.update(overrides)
    return CampaignSpec(**settings)


def _reference_journal(path, spec):
    """The one-shot serial journal the service must reproduce exactly."""
    from repro.ir.parser import parse_module

    module = parse_module(spec.module_text)
    detector = spec.detector()
    with CampaignJournal(str(path)) as journal:
        journal.write_header(campaign_metadata(
            module, spec.seed, detector,
            function=spec.function, args=list(spec.args),
            faults_per_trial=spec.faults_per_trial,
        ))
        campaign = run_campaign(
            module, trials=spec.trials, seed=spec.seed, detector=detector,
            output_objects=list(spec.output_objects),
            on_result=journal.record,
        )
    return campaign


def _run_task(task):
    asyncio.run(task.run())
    return task


# ---------------------------------------------------------------------
# Health bookkeeping (pure state, fake clocks)
# ---------------------------------------------------------------------


class TestBackoff:
    def test_doubles_then_caps(self):
        backoff = ExponentialBackoff(base=0.25, factor=2.0, cap=10.0)
        assert [backoff.delay(a) for a in range(1, 7)] == [
            0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        assert backoff.delay(7) == 10.0
        assert backoff.delay(100) == 10.0

    def test_zero_attempts_no_delay(self):
        assert ExponentialBackoff().delay(0) == 0.0


class TestSharding:
    def test_batches_partition_indices(self):
        batches = shard_batches(list(range(23)), batch_size=5)
        got = [i for b in batches for i in b.indices]
        assert got == list(range(23))
        assert [len(b.indices) for b in batches] == [5, 5, 5, 5, 3]
        assert all(b.assigned_slot is None for b in batches)

    def test_static_pins_round_robin(self):
        batches = shard_batches(list(range(10)), batch_size=2,
                                workers=3, static=True)
        assert [b.assigned_slot for b in batches] == [0, 1, 2, 0, 1]

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            shard_batches([0, 1], batch_size=0)

    def test_default_batch_size_eight_per_worker(self):
        assert default_batch_size(160, workers=2) == 10
        assert default_batch_size(3, workers=8) == 1


class TestHealthMonitor:
    def test_busy_worker_goes_overdue_after_silence(self):
        monitor = HealthMonitor(heartbeat_timeout=5.0)
        health = monitor.track(0, pid=100, now=0.0)
        health.state = "busy"
        assert monitor.overdue(now=4.0) == []
        monitor.beat(0, now=4.0)
        assert monitor.overdue(now=8.0) == []
        assert monitor.overdue(now=9.5) == [0]

    def test_starting_worker_gets_longer_allowance(self):
        monitor = HealthMonitor(heartbeat_timeout=5.0, startup_timeout=60.0)
        monitor.track(0, pid=100, now=0.0)
        assert monitor.overdue(now=30.0) == []
        assert monitor.overdue(now=61.0) == [0]

    def test_idle_and_dead_never_overdue(self):
        monitor = HealthMonitor(heartbeat_timeout=5.0)
        for slot, state in ((0, "idle"), (1, "dead")):
            monitor.track(slot, pid=None, now=0.0).state = state
        assert monitor.overdue(now=1e9) == []

    def test_restart_preserves_counters(self):
        monitor = HealthMonitor()
        first = monitor.track(0, pid=1, now=0.0)
        first.restarts = 2
        first.trials_done = 7
        again = monitor.track(0, pid=2, now=1.0)
        assert again.restarts == 2
        assert again.trials_done == 7


# ---------------------------------------------------------------------
# The in-order hold-back journal
# ---------------------------------------------------------------------


class TestInOrderJournal:
    def _open(self, tmp_path):
        path = str(tmp_path / "ordered.jsonl")
        journal = CampaignJournal(path)
        journal.write_header(campaign_metadata(_module(), 3, _detector()))
        return path, InOrderJournal(journal)

    def test_out_of_order_records_written_in_index_order(self, tmp_path):
        path, ordered = self._open(tmp_path)
        trial = infra_error_trial()
        for index in (2, 0, 3, 1):
            ordered.record(index, trial)
        ordered.close()
        _, completed = load_journal(path)
        with open(path) as handle:
            lines = [line for line in handle if '"trial"' in line]
        import json
        assert [json.loads(line)["index"] for line in lines] == [0, 1, 2, 3]
        assert sorted(completed) == [0, 1, 2, 3]

    def test_duplicates_first_delivery_wins(self, tmp_path):
        path, ordered = self._open(tmp_path)
        first = infra_error_trial()
        second = dataclasses.replace(first, outcome="sdc")
        ordered.record(0, first)
        ordered.record(0, second)  # retried batch re-delivers: ignored
        ordered.close()
        _, completed = load_journal(path)
        assert completed[0].outcome == first.outcome

    def test_flush_out_of_order_preserves_resumability(self, tmp_path):
        path, ordered = self._open(tmp_path)
        trial = infra_error_trial()
        ordered.record(2, trial)  # held: index 0 missing
        assert ordered.held == 1
        ordered.flush_out_of_order()
        ordered.close()
        _, completed = load_journal(path)
        assert sorted(completed) == [2]


# ---------------------------------------------------------------------
# Journal refusal messages (satellites)
# ---------------------------------------------------------------------


class TestJournalRefusals:
    def test_fingerprint_mismatch_names_both_fingerprints(self):
        module = _module()
        ours = campaign_metadata(module, 5, _detector())
        theirs = dict(ours, seed=6)
        with pytest.raises(JournalError) as err:
            validate_resume(theirs, ours)
        message = str(err.value)
        assert header_fingerprint(ours) in message
        assert header_fingerprint(theirs) in message
        assert "seed" in message

    def test_torn_header_line_refuses_loudly(self, tmp_path):
        path = tmp_path / "torn-header.jsonl"
        header = '{"kind": "campaign", "version": 1, "seed": 5'
        path.write_text(header)  # no closing brace, no newline
        with pytest.raises(JournalError) as err:
            load_journal(str(path))
        assert "torn or corrupt" in str(err.value)

    def test_truncated_header_refuses_via_cli_resume(self, tmp_path):
        journal = tmp_path / "trunc.jsonl"
        journal.write_text('{"kind": "campaign", "vers')
        from repro.cli import main

        code = main([
            "inject", "examples/mc/crc32.mc", "--trials", "2",
            "--resume", str(journal),
        ])
        assert code == 1

    def test_empty_file_still_generic_no_header_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(JournalError) as err:
            load_journal(str(path))
        assert "torn" not in str(err.value)


# ---------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------


class TestCampaignSpec:
    def test_round_trips_through_json(self):
        spec = _spec(trials=7, faults_per_trial=2, metadata_guard="dup")
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        data = _spec().to_json()
        data["explode"] = True
        with pytest.raises(SpecError, match="explode"):
            CampaignSpec.from_json(data)

    def test_missing_module_text_rejected(self):
        with pytest.raises(SpecError, match="module_text"):
            CampaignSpec.from_json({"trials": 5})

    def test_replay_backend_refuses_threads(self):
        with pytest.raises(SpecError, match="replay"):
            _spec(detector_backend="replay", threads=2)

    @pytest.mark.parametrize("overrides", [
        {"trials": -1},
        {"metadata_guard": "bogus"},
        {"cfe_detector": "bogus"},
        {"engine": "bogus"},
        {"batch_size": 0},
        {"detector_backend": "bogus"},
    ])
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(SpecError):
            _spec(**overrides)


# ---------------------------------------------------------------------
# The supervised dispatcher
# ---------------------------------------------------------------------


@needs_fork
class TestCampaignTask:
    def test_served_journal_byte_identical_to_serial(self, tmp_path):
        spec = _spec()
        reference = tmp_path / "serial.jsonl"
        _reference_journal(reference, spec)
        task = CampaignTask("c0001", spec, str(tmp_path / "served.jsonl"),
                            workers=2)
        _run_task(task)
        assert task.state == COMPLETED
        assert task.result is not None
        assert (tmp_path / "served.jsonl").read_bytes() == \
            reference.read_bytes()

    def test_sigkilled_worker_retries_to_identical_journal(self, tmp_path):
        spec = _spec(trials=16, batch_size=2)
        reference = tmp_path / "serial.jsonl"
        campaign = _reference_journal(reference, spec)
        task = CampaignTask(
            "c0001", spec, str(tmp_path / "served.jsonl"),
            workers=2, chaos_kill_after=3,
        )
        _run_task(task)
        assert task.state == COMPLETED
        assert task.worker_restarts >= 1
        assert (tmp_path / "served.jsonl").read_bytes() == \
            reference.read_bytes()
        # No trial lost, no trial degraded to infra_error.
        assert [t.outcome for t in task.result.trials] == \
            [t.outcome for t in campaign.trials]

    def test_restart_budget_exhaustion_quarantines_not_hangs(self, tmp_path):
        spec = _spec(trials=8, batch_size=4)
        task = CampaignTask(
            "c0001", spec, str(tmp_path / "served.jsonl"),
            workers=1, chaos_kill_after=2, max_worker_restarts=0,
        )
        _run_task(task)
        assert task.state == COMPLETED
        result = task.result
        assert len(result.trials) == spec.trials
        infra = sum(1 for t in result.trials if t.outcome == "infra_error")
        assert infra > 0  # honest denominator: lost work is visible
        assert task.quarantined_batches > 0
        # The journal stays loadable and complete.
        _, completed = load_journal(str(tmp_path / "served.jsonl"))
        assert sorted(completed) == list(range(spec.trials))


# ---------------------------------------------------------------------
# The HTTP surface
# ---------------------------------------------------------------------


class _ServerThread:
    """A CampaignServer on its own event loop in a daemon thread."""

    def __init__(self, tmp_path, **kwargs):
        self.server = CampaignServer(
            port=0, journal_dir=str(tmp_path / "journals"), **kwargs
        )
        self.loop = asyncio.new_event_loop()
        self.ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.server.start()
            self.ready.set()
            await self.server.serve_until_shutdown()

        self.loop.run_until_complete(main())

    def __enter__(self):
        self.thread.start()
        assert self.ready.wait(15), "server did not start"
        return self

    def __exit__(self, *exc):
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )
        future.result(timeout=30)
        self.thread.join(timeout=10)

    @property
    def client(self):
        return ServiceClient(
            f"http://127.0.0.1:{self.server.port}", timeout=30
        )


@needs_fork
class TestHTTPService:
    def test_submit_wait_journal_byte_identical(self, tmp_path):
        spec = _spec()
        reference = tmp_path / "serial.jsonl"
        _reference_journal(reference, spec)
        with _ServerThread(tmp_path, workers=2) as served:
            client = served.client
            assert client.health()["status"] == "ok"
            accepted = client.submit(spec.to_json())
            status = client.wait(accepted["id"], timeout=120)
            assert status["state"] == "completed"
            data = client.fetch_journal(accepted["id"], follow=False)
        assert data == reference.read_bytes()

    def test_bad_spec_rejected_with_400(self, tmp_path):
        with _ServerThread(tmp_path) as served:
            with pytest.raises(ServiceError) as err:
                served.client.submit({"kind": "sfi", "trials": 3})
            assert err.value.status == 400

    def test_unknown_campaign_404(self, tmp_path):
        with _ServerThread(tmp_path) as served:
            with pytest.raises(ServiceError) as err:
                served.client.status("c9999")
            assert err.value.status == 404

    def test_harness_routes_campaigns_through_server(
            self, tmp_path, monkeypatch):
        from repro.experiments.harness import run_sfi

        module = _module()
        local = run_sfi(module, output_objects=["arr"], trials=10,
                        seed=4, detector=_detector(), jobs=1)
        with _ServerThread(tmp_path, workers=2) as served:
            monkeypatch.setenv(
                "ENCORE_SFI_SERVER",
                f"http://127.0.0.1:{served.server.port}",
            )
            routed = run_sfi(_module(), output_objects=["arr"], trials=10,
                             seed=4, detector=_detector())
        assert [t.outcome for t in routed.trials] == \
            [t.outcome for t in local.trials]
        assert routed.jobs == 2

    def test_harness_falls_back_when_server_unreachable(
            self, monkeypatch, capsys):
        from repro.experiments.harness import run_sfi

        monkeypatch.setenv("ENCORE_SFI_SERVER", "http://127.0.0.1:9")
        result = run_sfi(_module(), output_objects=["arr"], trials=4,
                         seed=1, detector=_detector(), jobs=1)
        assert len(result.trials) == 4
        assert "running campaign locally" in capsys.readouterr().err


# ---------------------------------------------------------------------
# Graceful SIGINT (satellite)
# ---------------------------------------------------------------------


class TestGracefulInterrupt:
    def test_serial_interrupt_carries_partial_results(self):
        module = _module()
        def hook(index, trial):
            if index == 3:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as err:
            run_campaign(module, trials=10, seed=2, detector=_detector(),
                         output_objects=["arr"], on_result=hook)
        exc = err.value
        assert isinstance(exc, KeyboardInterrupt)
        assert exc.total == 10
        assert exc.done == 3
        assert sorted(exc.results) == [0, 1, 2]

    def test_interrupted_results_match_uninterrupted_prefix(self):
        module = _module()
        full = run_campaign(module, trials=8, seed=2, detector=_detector(),
                            output_objects=["arr"])

        def hook(index, trial):
            if index == 4:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as err:
            run_campaign(_module(), trials=8, seed=2, detector=_detector(),
                         output_objects=["arr"], on_result=hook)
        for index, trial in err.value.results.items():
            assert trial == full.trials[index]

    @needs_fork
    def test_cli_sigint_exits_130_and_journal_resumes(self, tmp_path):
        journal = tmp_path / "interrupted.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "inject",
             "examples/mc/crc32.mc", "--trials", "500", "--seed", "3",
             "--jobs", "2", "--journal", str(journal)],
            cwd=os.path.join(os.path.dirname(__file__), ".."),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and len(
                    journal.read_text().splitlines()) >= 5:
                break
            time.sleep(0.1)
        else:
            proc.kill()
            pytest.fail("campaign produced no journal rows to interrupt")
        proc.send_signal(signal.SIGINT)
        output, _ = proc.communicate(timeout=60)
        assert proc.returncode == 130, output
        assert "interrupted" in output
        assert "--resume" in output
        # The journal a SIGINT leaves behind resumes into a (shorter)
        # campaign whose rows equal the uninterrupted run's.
        metadata, completed = load_journal(str(journal))
        assert completed  # flushed, not lost
        code = subprocess.run(
            [sys.executable, "-m", "repro", "inject",
             "examples/mc/crc32.mc", "--trials", "500", "--seed", "3",
             "--jobs", "2", "--resume", str(journal)],
            cwd=os.path.join(os.path.dirname(__file__), ".."),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            timeout=300,
        ).returncode
        assert code == 0
        _, resumed = load_journal(str(journal))
        assert sorted(resumed) == list(range(500))
