"""Golden-workload equivalence: pass pipeline == the seed monolith.

``reference_compile`` re-implements the pre-refactor ``EncoreCompiler``
flow directly from the public primitives (profiler, alias analysis,
idempotence analyzer, region builder/selector, instrumenter), exactly
in the seed's order.  The staged pass pipeline must produce identical
reports on every golden workload — same selected regions, same
instrumentation counts, same coverage — both cold and when served from
a shared :class:`AnalysisCache`.
"""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.encore import EncoreConfig, compile_for_encore
from repro.encore.coverage_model import region_coverage
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.encore.instrumentation import instrument_module
from repro.encore.regions import RegionBuilder
from repro.encore.selection import RegionSelector
from repro.pipeline import AnalysisCache, PipelineStats
from repro.profiling.profiler import profile_module
from repro.workloads import all_workloads, build_workload

WORKLOADS = [spec.name for spec in all_workloads()]

VARIANT_CONFIGS = [
    EncoreConfig(pmin=None),
    EncoreConfig(pmin=0.25),
    EncoreConfig(merge_regions=False),
    EncoreConfig(granularity="function"),
    EncoreConfig(alias_mode="optimistic"),
    EncoreConfig(gamma=2.0, eta=0.1),
]


def region_key(region):
    return (region.func, region.header, tuple(sorted(region.blocks)),
            region.status.name)


def reference_compile(built, config):
    """The seed monolith's compile(), stage by stage, on ``built``."""
    module = built.module
    profile = profile_module(
        module, function=built.entry, args=built.args,
        externals=built.externals,
    )
    memory_profile = None
    if config.alias_mode == "profiled":
        from repro.profiling.memprofile import collect_memory_profile

        memory_profile = collect_memory_profile(
            module, function=built.entry, args=built.args,
            externals=built.externals,
        )
    alias = AliasAnalysis(
        module, mode=config.alias_mode, memory_profile=memory_profile
    )
    analyzer = IdempotenceAnalyzer(
        module, alias=alias, profile=profile, pmin=config.pmin
    )
    builder = RegionBuilder(module, profile)
    selector = RegionSelector(
        module, analyzer, builder, profile, config.selection()
    )

    if config.granularity == "function":
        base = builder.function_regions()
    else:
        base = builder.base_regions()
    for region in base:
        selector.analyze(region)

    total_app = 0
    for (func_name, label), count in profile.block_counts.items():
        func = module.get_function(func_name)
        if func is None or label not in func.blocks:
            continue
        total_app += count * sum(
            1 for inst in func.blocks[label] if not inst.is_instrumentation
        )

    if config.granularity == "function":
        candidates = [
            builder.make_region(r.func, r.blocks, r.header, r.level)
            for r in base
        ]
    elif config.merge_regions:
        candidates = []
        for func_name in module.functions:
            if not module.function(func_name).blocks:
                continue
            candidates.extend(selector.merge_candidates(func_name))
    else:
        candidates = [
            builder.make_region(r.func, r.blocks, r.header, r.level)
            for r in base
        ]
    for region in candidates:
        selector.analyze(region)

    selected = selector.select(candidates, total_app)
    inst = instrument_module(module, selected)
    return {
        "base": sorted(region_key(r) for r in base),
        "candidates": sorted(region_key(r) for r in candidates),
        "selected": sorted(region_key(r) for r in selected),
        "instrumented_regions": inst.instrumented_regions,
        "checkpoint_mem_sites": inst.checkpoint_mem_sites,
        "checkpoint_reg_sites": inst.checkpoint_reg_sites,
        "clear_sites": inst.clear_sites,
        "overhead": sum(
            selector.estimated_overhead(r, total_app) for r in selected
        ),
        "recoverable": region_coverage(selected, total_app, 100.0).recoverable,
    }


def report_facts(report):
    return {
        "base": sorted(region_key(r) for r in report.base_regions),
        "candidates": sorted(region_key(r) for r in report.candidate_regions),
        "selected": sorted(region_key(r) for r in report.selected_regions),
        "instrumented_regions": report.instrumentation.instrumented_regions,
        "checkpoint_mem_sites": report.instrumentation.checkpoint_mem_sites,
        "checkpoint_reg_sites": report.instrumentation.checkpoint_reg_sites,
        "clear_sites": report.instrumentation.clear_sites,
        "overhead": report.estimated_overhead(),
        "recoverable": report.coverage(100).recoverable,
    }


def assert_equivalent(reference, facts, label):
    for key in reference:
        if key in ("overhead", "recoverable"):
            assert facts[key] == pytest.approx(reference[key]), (label, key)
        else:
            assert facts[key] == reference[key], (label, key)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_default_config_matches_reference(self, name):
        reference = reference_compile(build_workload(name), EncoreConfig())
        report = compile_for_encore(
            build_workload(name).module, EncoreConfig(), clone=False,
            function=build_workload(name).entry,
            args=build_workload(name).args,
            externals=build_workload(name).externals,
        )
        assert_equivalent(reference, report_facts(report), name)

    @pytest.mark.parametrize("config", VARIANT_CONFIGS,
                             ids=lambda c: repr(c)[:40])
    def test_variant_configs_match_reference(self, config):
        for name in ("164.gzip", "181.mcf", "epic"):
            built = build_workload(name)
            reference = reference_compile(built, config)
            fresh = build_workload(name)
            report = compile_for_encore(
                fresh.module, config, clone=False, function=fresh.entry,
                args=fresh.args, externals=fresh.externals,
            )
            assert_equivalent(reference, report_facts(report), name)

    def test_cached_sweep_matches_cold_and_profiles_once(self):
        # A Pmin sweep through one shared AnalysisCache must (a) agree
        # with cold compilations and (b) execute profiling exactly once.
        cache = AnalysisCache()
        stats = PipelineStats()
        configs = [EncoreConfig(pmin=p) for p in (None, 0.0, 0.1, 0.25)]
        for config in configs:
            built = build_workload("164.gzip")
            cached = compile_for_encore(
                built.module, config, clone=False, cache=cache,
                function=built.entry, args=built.args,
                externals=built.externals, stats=stats,
            )
            cold = build_workload("164.gzip")
            cold_report = compile_for_encore(
                cold.module, config, clone=False, function=cold.entry,
                args=cold.args, externals=cold.externals,
            )
            assert_equivalent(
                report_facts(cold_report), report_facts(cached), config.pmin
            )
        assert stats.executed("profile") == 1
        assert stats.stat("profile").cache_hits == len(configs) - 1

    def test_profiled_alias_mode_matches_reference(self):
        config = EncoreConfig(alias_mode="profiled")
        built = build_workload("181.mcf")
        reference = reference_compile(built, config)
        fresh = build_workload("181.mcf")
        report = compile_for_encore(
            fresh.module, config, clone=False, function=fresh.entry,
            args=fresh.args, externals=fresh.externals,
        )
        assert_equivalent(reference, report_facts(report), "profiled")
