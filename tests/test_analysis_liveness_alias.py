"""Tests for liveness analysis and the alias/points-to machinery."""

from repro.analysis import AliasAnalysis, CFGView, LivenessAnalysis, UNKNOWN_INDEX
from repro.ir import Constant, IRBuilder, MemRef, Module, Type, VirtualRegister
from helpers import build_counted_loop, build_figure4_region


class TestLiveness:
    def test_loop_counter_live_in_at_header(self):
        module, _ = build_counted_loop()
        func = module.function("main")
        live = LivenessAnalysis(func)
        reg_names = {r.name for r in live.live_in["header"]}
        # Both the counter and accumulator flow around the loop.
        assert any(n.startswith("i") for n in reg_names)
        assert any(n.startswith("sum") for n in reg_names)

    def test_entry_has_no_live_in_registers(self):
        module, _ = build_counted_loop()
        live = LivenessAnalysis(module.function("main"))
        assert live.live_in["entry"] == set()

    def test_region_live_in_overwritten(self):
        module, _ = build_counted_loop()
        func = module.function("main")
        live = LivenessAnalysis(func)
        regs = live.region_live_in_overwritten({"header", "body"}, "header")
        names = {r.name for r in regs}
        # i and sum are live into the loop and redefined inside it.
        assert any(n.startswith("i") for n in names)
        assert any(n.startswith("sum") for n in names)

    def test_use_before_def_within_block(self):
        module = Module()
        func = module.add_function("main", params=[VirtualRegister("x")])
        b = IRBuilder(func)
        b.block("entry")
        y = b.add(func.params[0], 1)  # uses x before any def of x
        b.mov(0, func.params[0])  # then kills x
        b.ret(y)
        live = LivenessAnalysis(func)
        assert VirtualRegister("x") in live.use["entry"]

    def test_def_shadows_later_use(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        x = b.mov(1)
        b.add(x, 1)
        b.ret(0)
        live = LivenessAnalysis(func)
        assert x not in live.use["entry"]
        assert x in live.defs["entry"]

    def test_live_out_union_of_successors(self):
        module, _ = build_counted_loop()
        func = module.function("main")
        live = LivenessAnalysis(func)
        out = live.live_out("entry")
        assert out == live.live_in["header"]


class TestAliasStatic:
    def test_same_object_same_index_must_alias(self):
        module, mem = build_figure4_region()
        aa = AliasAnalysis(module, mode="static")
        k1 = aa.key("main", MemRef(mem, Constant(1)))
        k2 = aa.key("main", MemRef(mem, Constant(1)))
        assert aa.must_alias(k1, k2)
        assert aa.may_alias(k1, k2)

    def test_same_object_different_index_no_alias(self):
        module, mem = build_figure4_region()
        aa = AliasAnalysis(module)
        k1 = aa.key("main", MemRef(mem, Constant(0)))
        k2 = aa.key("main", MemRef(mem, Constant(1)))
        assert not aa.may_alias(k1, k2)
        assert not aa.must_alias(k1, k2)

    def test_different_objects_no_alias(self):
        module = Module()
        a = module.add_global("a", 4)
        b_ = module.add_global("b", 4)
        module.add_function("main")
        aa = AliasAnalysis(module)
        k1 = aa.key("main", MemRef(a, Constant(0)))
        k2 = aa.key("main", MemRef(b_, Constant(0)))
        assert not aa.may_alias(k1, k2)

    def test_unknown_index_may_alias_same_object(self):
        module = Module()
        a = module.add_global("a", 4)
        module.add_function("main")
        aa = AliasAnalysis(module)
        sym = aa.key("main", MemRef(a, VirtualRegister("i")))
        conc = aa.key("main", MemRef(a, Constant(2)))
        assert sym.index is UNKNOWN_INDEX
        assert aa.may_alias(sym, conc)
        assert not aa.must_alias(sym, conc)

    def test_pointer_through_addrof_tracks_object(self):
        module = Module()
        a = module.add_global("a", 4)
        b_ = module.add_global("b", 4)
        func = module.add_function("main")
        ib = IRBuilder(func)
        ib.block("entry")
        p = ib.addrof(a, 0)
        ib.store(p, 0, 1)
        ib.ret(0)
        aa = AliasAnalysis(module)
        kp = aa.key("main", MemRef(p, Constant(0)))
        assert kp.objs == frozenset(["a"])
        kb = aa.key("main", MemRef(b_, Constant(0)))
        assert not aa.may_alias(kp, kb)

    def test_untracked_pointer_is_top(self):
        module = Module()
        a = module.add_global("a", 4)
        module.declare_external("get_ptr")
        func = module.add_function("main")
        ib = IRBuilder(func)
        ib.block("entry")
        p = ib.call("get_ptr", [], dest=VirtualRegister("p", Type.PTR))
        ib.store(p, 0, 1)
        ib.ret(0)
        aa = AliasAnalysis(module)
        kp = aa.key("main", MemRef(p, Constant(0)))
        assert kp.objs is None  # TOP
        ka = aa.key("main", MemRef(a, Constant(0)))
        assert aa.may_alias(kp, ka)
        assert not aa.must_alias(kp, ka)

    def test_alloc_site_abstraction(self):
        module = Module()
        func = module.add_function("main")
        ib = IRBuilder(func)
        ib.block("entry")
        p = ib.alloc(8)
        ib.store(p, 0, 1)
        ib.ret(0)
        aa = AliasAnalysis(module)
        kp = aa.key("main", MemRef(p, Constant(0)))
        assert kp.objs is not None
        assert any(name.startswith("heap:main:") for name in kp.objs)

    def test_interprocedural_pointer_argument(self):
        module = Module()
        a = module.add_global("a", 4)
        q = VirtualRegister("q", Type.PTR)
        callee = module.add_function("write_to", params=[q])
        cb = IRBuilder(callee)
        cb.block("entry")
        cb.store(q, 0, 9)
        cb.ret(0)
        func = module.add_function("main")
        ib = IRBuilder(func)
        ib.block("entry")
        p = ib.addrof(a, 0)
        ib.call("write_to", [p])
        ib.ret(0)
        aa = AliasAnalysis(module)
        kq = aa.key("write_to", MemRef(q, Constant(0)))
        assert kq.objs == frozenset(["a"])


class TestAliasOptimistic:
    def test_symbolic_indices_assumed_distinct(self):
        module = Module()
        a = module.add_global("a", 16)
        module.add_function("main")
        aa = AliasAnalysis(module, mode="optimistic")
        ki = aa.key("main", MemRef(a, VirtualRegister("i")))
        kj = aa.key("main", MemRef(a, VirtualRegister("j")))
        assert not aa.may_alias(ki, kj)

    def test_identical_symbolic_reference_must_alias(self):
        module = Module()
        a = module.add_global("a", 16)
        module.add_function("main")
        aa = AliasAnalysis(module, mode="optimistic")
        k1 = aa.key("main", MemRef(a, VirtualRegister("i")))
        k2 = aa.key("main", MemRef(a, VirtualRegister("i")))
        assert aa.must_alias(k1, k2)
        assert aa.may_alias(k1, k2)

    def test_optimistic_never_flags_top(self):
        module = Module()
        a = module.add_global("a", 4)
        module.declare_external("get_ptr")
        func = module.add_function("main")
        ib = IRBuilder(func)
        ib.block("entry")
        p = ib.call("get_ptr", [], dest=VirtualRegister("p", Type.PTR))
        ib.store(p, 0, 1)
        ib.ret(0)
        aa = AliasAnalysis(module, mode="optimistic")
        kp = aa.key("main", MemRef(p, Constant(0)))
        ka = aa.key("main", MemRef(a, Constant(0)))
        assert not aa.may_alias(kp, ka)

    def test_mode_validation(self):
        module = Module()
        import pytest

        with pytest.raises(ValueError):
            AliasAnalysis(module, mode="psychic")
