"""Tests for the optimizer passes: semantics preservation is the law."""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import IRBuilder, Module, verify_module
from repro.opt import (
    eliminate_dead_code,
    fold_binop,
    fold_compare,
    fold_function,
    fold_unop,
    optimize_function,
    optimize_module,
    propagate_function,
    simplify_cfg,
)
from repro.runtime import Interpreter
from helpers import build_counted_loop, build_figure4_region, build_nested_loops


def run_value(module, args=(), outputs=()):
    return Interpreter(copy.deepcopy(module)).run(
        "main", args, output_objects=outputs
    )


class TestFoldPrimitives:
    def test_fold_matches_interpreter_semantics(self):
        assert fold_binop("sdiv", -7, 2) == -3
        assert fold_binop("srem", -7, 2) == -1
        assert fold_binop("mul", 2**62, 4) == 0
        assert fold_binop("lshr", -1, 60) == 15

    def test_division_by_zero_not_folded(self):
        assert fold_binop("sdiv", 1, 0) is None
        assert fold_binop("srem", 1, 0) is None
        assert fold_binop("fdiv", 1.0, 0.0) is None

    def test_fold_compare(self):
        assert fold_compare("slt", 1, 2) == 1
        assert fold_compare("eq", 2.0, 2.0) == 1
        assert fold_compare("sge", 1, 2) == 0

    def test_fold_unop(self):
        assert fold_unop("neg", 5) == -5
        assert fold_unop("fsqrt", 9.0) == 3.0
        assert fold_unop("fsqrt", -1.0) is None
        assert fold_unop("fptosi", 2.9) == 2

    @given(
        op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "shl"]),
        a=st.integers(-(2**32), 2**32),
        b_=st.integers(-(2**32), 2**32),
    )
    @settings(max_examples=100, deadline=None)
    def test_fold_agrees_with_interpreter(self, op, a, b_):
        module = Module()
        func = module.add_function("main")
        ib = IRBuilder(func)
        ib.block("entry")
        r = ib.binop(op, a, b_)
        ib.ret(r)
        expected = Interpreter(module).run("main").value
        assert fold_binop(op, a, b_) == expected


class TestPassesPreserveSemantics:
    def _check(self, module, args=(), outputs=()):
        before = run_value(module, args, outputs)
        count_before = module.instruction_count()
        optimize_module(module)
        verify_module(module)
        after = run_value(module, args, outputs)
        assert after.value == before.value
        assert after.output == before.output
        assert module.instruction_count() <= count_before
        return before, after

    def test_counted_loop(self):
        module, _ = build_counted_loop(12)
        self._check(module, outputs=["arr"])

    def test_nested_loops(self):
        module, _ = build_nested_loops()
        self._check(module, outputs=["mat"])

    def test_figure4(self):
        module, _ = build_figure4_region()
        self._check(module, args=[5], outputs=["mem"])

    def test_all_workloads_optimize_cleanly(self):
        from repro.workloads import all_workloads

        for spec in all_workloads()[:8]:  # a representative subset
            built = spec.build()
            before = Interpreter(copy.deepcopy(built.module)).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            optimize_module(built.module)
            verify_module(built.module)
            after = Interpreter(built.module).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            assert after.value == before.value, spec.name
            assert after.output == before.output, spec.name


class TestIndividualPasses:
    def test_constant_chain_folds_to_move(self):
        module = Module()
        out = module.add_global("out", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        x = b.add(2, 3)
        y = b.mul(x, 4)
        b.store(out, 0, y)
        b.ret(y)
        optimize_function(func)
        # After fold+copyprop+DCE only the store and ret remain.
        opcodes = [inst.opcode for inst in func.blocks["entry"]]
        assert "binop" not in opcodes
        result = Interpreter(module).run("main")
        assert result.value == 20

    def test_algebraic_identities(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        x = b.mov(7)
        y = b.add(x, 0)
        z = b.mul(y, 1)
        w = b.or_(z, 0)
        b.ret(w)
        optimize_function(func)
        assert Interpreter(module).run("main").value == 7
        assert func.instruction_count() <= 3

    def test_dce_keeps_loads(self):
        # A dead load may trap; it must survive DCE.
        module = Module()
        arr = module.add_global("arr", 2)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.load(arr, 0)  # dead but kept
        b.ret(0)
        assert eliminate_dead_code(func) == 0
        assert func.blocks["entry"].instructions[0].opcode == "load"

    def test_dce_removes_dead_arithmetic(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.add(1, 2)  # dead
        keep = b.mov(9)
        b.ret(keep)
        removed = eliminate_dead_code(func)
        assert removed >= 1
        assert Interpreter(module).run("main").value == 9

    def test_constant_branch_threading(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.br(1, "taken", "dead")
        b.block("taken")
        b.ret(1)
        b.block("dead")
        b.ret(0)
        changed = simplify_cfg(func)
        assert changed >= 2  # threaded + unreachable removal
        assert "dead" not in func.blocks
        assert Interpreter(module).run("main").value == 1

    def test_straightline_merging(self):
        module = Module()
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        b.jmp("middle")
        b.block("middle")
        x = b.mov(5)
        b.jmp("end")
        b.block("end")
        b.ret(x)
        simplify_cfg(func)
        assert len(func.blocks) == 1
        assert Interpreter(module).run("main").value == 5

    def test_copyprop_through_moves(self):
        module = Module()
        out = module.add_global("out", 1)
        func = module.add_function("main")
        b = IRBuilder(func)
        b.block("entry")
        x = b.mov(3)
        y = b.mov(x)
        z = b.mov(y)
        b.store(out, 0, z)
        b.ret(z)
        propagate_function(func)
        store = next(i for i in func.blocks["entry"] if i.opcode == "store")
        from repro.ir import Constant

        assert store.value == Constant(3)

    def test_simplify_refuses_instrumented_functions(self):
        from repro.encore import EncoreConfig, compile_for_encore

        module, _ = build_counted_loop(10)
        report = compile_for_encore(module, EncoreConfig(), clone=True)
        func = report.module.function("main")
        blocks_before = set(func.blocks)
        assert simplify_cfg(func) == 0
        assert set(func.blocks) == blocks_before


class TestEncoreAfterOptimization:
    def test_optimized_workload_still_protectable(self):
        from repro.encore import EncoreConfig, compile_for_encore
        from repro.workloads import build_workload

        built = build_workload("g721decode")
        optimize_module(built.module)
        golden = Interpreter(copy.deepcopy(built.module)).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        report = compile_for_encore(built.module, EncoreConfig(), clone=True)
        assert report.selected_regions
        result = Interpreter(report.module).run(
            built.entry, built.args, output_objects=built.output_objects
        )
        assert result.output == golden.output
