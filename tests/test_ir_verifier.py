"""Verifier tests: each structural error class is detected."""

import pytest

from repro.ir import (
    Branch,
    Constant,
    IRBuilder,
    Load,
    MemRef,
    MemoryObject,
    Module,
    Store,
    Type,
    VerificationError,
    VirtualRegister,
    verify_function,
    verify_module,
)
from helpers import build_call_program, build_counted_loop, build_figure4_region


def _simple_module():
    module = Module()
    func = module.add_function("f")
    return module, func


class TestVerifier:
    def test_clean_modules_verify(self):
        for build in (build_counted_loop, build_call_program, build_figure4_region):
            module = build()[0]
            verify_module(module)  # should not raise

    def test_missing_terminator(self):
        module, func = _simple_module()
        b = IRBuilder(func)
        b.block("entry")
        b.mov(1)
        errors = verify_function(func, module)
        assert any("missing terminator" in e for e in errors)

    def test_branch_to_unknown_label(self):
        module, func = _simple_module()
        block = func.add_block("entry")
        block.append(Branch(Constant(1), "nowhere", "alsonowhere"))
        errors = verify_function(func, module)
        assert any("unknown label" in e for e in errors)

    def test_use_of_undefined_register(self):
        module, func = _simple_module()
        b = IRBuilder(func)
        b.block("entry")
        ghost = VirtualRegister("ghost")
        b.add(ghost, 1)
        b.ret(0)
        errors = verify_function(func, module)
        assert any("undefined register" in e for e in errors)

    def test_params_count_as_defined(self):
        module = Module()
        func = module.add_function("f", params=[VirtualRegister("x")])
        b = IRBuilder(func)
        b.block("entry")
        b.add(func.params[0], 1)
        b.ret(0)
        assert verify_function(func, module) == []

    def test_undeclared_memory_object(self):
        module, func = _simple_module()
        rogue = MemoryObject("rogue", 4)
        block = func.add_block("entry")
        block.append(Store(MemRef(rogue, Constant(0)), Constant(1)))
        from repro.ir import Ret

        block.append(Ret(Constant(0)))
        errors = verify_function(func, module)
        assert any("undeclared memory object" in e for e in errors)

    def test_indirect_access_through_non_pointer(self):
        module, func = _simple_module()
        b = IRBuilder(func)
        b.block("entry")
        notptr = b.mov(5)  # i64 register
        block = func.blocks["entry"]
        block.append(Load(VirtualRegister("d"), MemRef(notptr, Constant(0))))
        from repro.ir import Ret

        block.append(Ret(Constant(0)))
        errors = verify_function(func, module)
        assert any("non-pointer" in e for e in errors)

    def test_call_to_undeclared_target(self):
        module, func = _simple_module()
        b = IRBuilder(func)
        b.block("entry")
        b.call("mystery", [])
        b.ret(0)
        errors = verify_function(func, module)
        assert any("undeclared target" in e for e in errors)
        module.declare_external("mystery")
        assert verify_function(func, module) == []

    def test_verify_module_raises_aggregate(self):
        module, func = _simple_module()
        func.add_block("entry")  # no terminator
        with pytest.raises(VerificationError) as info:
            verify_module(module)
        assert info.value.errors

    def test_terminator_not_last_detected(self):
        module, func = _simple_module()
        block = func.add_block("entry")
        from repro.ir import Jump, Move

        func.add_block("next").append(Jump("next"))
        block.instructions.append(Jump("next"))
        block.instructions.append(Move(VirtualRegister("x"), Constant(1)))
        block.instructions.append(Jump("next"))
        errors = verify_function(func, module)
        assert any("not last" in e for e in errors)
