"""Tests for input variants (train/ref) and wasted-work accounting."""

import pytest

from repro.encore import EncoreConfig, compile_for_encore
from repro.runtime import DetectionModel, Interpreter, golden_run, run_campaign
from repro.workloads import all_workloads, build_workload


class TestInputVariants:
    def test_variants_are_deterministic(self):
        a = build_workload("256.bzip2", "ref")
        c = build_workload("256.bzip2", "ref")
        ra = Interpreter(a.module).run("main", output_objects=a.output_objects)
        rc = Interpreter(c.module).run("main", output_objects=c.output_objects)
        assert ra.output == rc.output

    def test_ref_differs_from_train(self):
        train = build_workload("256.bzip2", "train")
        ref = build_workload("256.bzip2", "ref")
        rt = Interpreter(train.module).run(
            "main", output_objects=train.output_objects
        )
        rr = Interpreter(ref.module).run(
            "main", output_objects=ref.output_objects
        )
        assert rt.output != rr.output

    def test_default_is_train(self):
        default = build_workload("172.mgrid")
        train = build_workload("172.mgrid", "train")
        rd = Interpreter(default.module).run(
            "main", output_objects=default.output_objects
        )
        rt = Interpreter(train.module).run(
            "main", output_objects=train.output_objects
        )
        assert rd.output == rt.output

    def test_variant_restored_after_build(self):
        from repro.workloads.synth import _DATA_VARIANT, set_data_variant

        build_workload("epic", "ref")
        import repro.workloads.synth as synth

        assert synth._DATA_VARIANT == "train"

    def test_ref_variants_run_for_every_workload(self):
        for spec in all_workloads()[:6]:
            built = spec.build("ref")
            result = Interpreter(built.module).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            assert result.events > 1000, spec.name


class TestWastedWork:
    def test_recovered_trials_record_wasted_work(self):
        built = build_workload("g721decode")
        report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
        campaign = run_campaign(
            report.module,
            args=built.args,
            output_objects=built.output_objects,
            detector=DetectionModel(dmax=10),
            trials=40,
            seed=21,
        )
        recovered = [t for t in campaign.trials if t.outcome == "recovered"
                     and t.recovery_attempts > 0]
        assert recovered, "campaign produced no recoveries"
        # Re-execution costs extra instructions, bounded by the region's
        # activation length (plus the recovery block itself).
        golden = golden_run(report.module, args=built.args)
        for trial in recovered:
            assert trial.wasted_work >= 0
            assert trial.wasted_work < golden.events
        assert campaign.mean_wasted_work > 0

    def test_wasted_work_scales_with_region_size(self):
        # Coarse regions re-execute more on rollback than fine ones.
        wasted = {}
        for cap in (50.0, 5000.0):
            built = build_workload("g721decode")
            report = compile_for_encore(
                built.module,
                EncoreConfig(max_region_length=cap),
                args=built.args,
            )
            campaign = run_campaign(
                report.module,
                args=built.args,
                output_objects=built.output_objects,
                detector=DetectionModel(dmax=5),
                trials=40,
                seed=8,
            )
            wasted[cap] = campaign.mean_wasted_work
        if wasted[50.0] and wasted[5000.0]:
            assert wasted[5000.0] >= wasted[50.0] * 0.5  # not dramatically less

    def test_masked_trials_waste_nothing_substantial(self):
        built = build_workload("epic")
        module = built.module  # unprotected: no recovery, no wasted work
        campaign = run_campaign(
            module,
            args=built.args,
            output_objects=built.output_objects,
            detector=DetectionModel(dmax=10, coverage=0.0),  # never detects
            trials=20,
            seed=3,
        )
        assert campaign.mean_wasted_work == 0.0
