"""Tests for the conventional-recovery baselines (Table 1 comparators)."""

import pytest

from repro.runtime.baselines import (
    BaselineStats,
    FullCheckpointRecovery,
    LogBasedRecovery,
    run_baseline_campaign,
)
from repro.runtime import Interpreter
from repro.workloads import build_workload
from helpers import build_counted_loop


class TestFullCheckpoint:
    def test_snapshot_and_rollback_restore_everything(self):
        module, _ = build_counted_loop(30)
        mech = FullCheckpointRecovery(interval=40)
        captured = {}

        def hook(interp, event):
            mech.hook(interp, event)
            if event.index == 100:
                # Corrupt memory directly, then roll back.
                interp.memory.write("arr", 2, 999_999)
                captured["rolled"] = mech.rollback(interp)

        result = Interpreter(module, post_step=hook).run(
            "main", output_objects=["arr"]
        )
        assert captured["rolled"]
        assert result.output["arr"] == [i * i for i in range(30)]
        assert mech.stats.checkpoints_taken >= 2
        assert mech.stats.peak_storage_words > 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            FullCheckpointRecovery(0)
        with pytest.raises(ValueError):
            LogBasedRecovery(-5)

    def test_rollback_without_snapshot_fails(self):
        module, _ = build_counted_loop(5)
        mech = FullCheckpointRecovery(interval=10)
        interp = Interpreter(module)
        interp.run("main")
        # Never hooked: no snapshot exists.
        assert not mech.rollback(interp)


class TestLogBased:
    def test_log_unroll_restores_memory(self):
        module, _ = build_counted_loop(20)
        mech = LogBasedRecovery(interval=500)
        captured = {}

        def post(interp, event):
            mech.post_hook(interp, event)
            if event.index == 60:
                interp.memory.write("arr", 1, 424242)
                captured["rolled"] = mech.rollback(interp)

        result = Interpreter(
            module, pre_step=mech.pre_hook, post_step=post
        ).run("main", output_objects=["arr"])
        assert captured["rolled"]
        assert result.output["arr"] == [i * i for i in range(20)]
        assert mech.stats.log_entries > 0

    def test_storage_scales_with_stores(self):
        module, _ = build_counted_loop(40)
        mech = LogBasedRecovery(interval=10_000)  # never re-checkpoints
        Interpreter(
            module, pre_step=mech.pre_hook, post_step=mech.post_hook
        ).run("main")
        # 40 logged stores, two words each (address + data).
        assert mech.stats.log_entries == 40


class TestBaselineCampaigns:
    def test_full_scheme_guarantees_recovery(self):
        built = build_workload("rawdaudio")
        campaign = run_baseline_campaign(
            built.module, "full", interval=500,
            args=built.args, output_objects=built.output_objects,
            trials=25, latency=5, seed=4,
        )
        # Guaranteed recovery: everything detected is recovered.
        assert campaign.covered_fraction > 0.9
        assert campaign.fraction("recovered") > 0.5

    def test_log_scheme_guarantees_recovery(self):
        built = build_workload("rawdaudio")
        campaign = run_baseline_campaign(
            built.module, "log", interval=500,
            args=built.args, output_objects=built.output_objects,
            trials=25, latency=5, seed=4,
        )
        assert campaign.covered_fraction > 0.9

    def test_unknown_scheme_rejected(self):
        built = build_workload("rawdaudio")
        with pytest.raises(ValueError):
            run_baseline_campaign(built.module, "psychic", 100)
