"""MC: a mini-C frontend compiling to the repro IR.

The paper's workloads are C programs; MC provides the corresponding
authoring path here — write C-like source, compile it to IR, optimize
it, and protect it with Encore::

    from repro.frontend import compile_source

    module = compile_source('''
        global int hist[16];
        int main() {
            int i;
            for (i = 0; i < 64; i = i + 1) {
                hist[i % 16] = hist[i % 16] + 1;
            }
            return hist[0];
        }
    ''')
"""

from repro.frontend.ast_nodes import Program
from repro.frontend.codegen import CodegenError, compile_program
from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.parser import MCSyntaxError, parse_source

from repro.ir import Module, verify_module


def compile_source(source: str, name: str = "mc", verify: bool = True) -> Module:
    """Compile MC source text to a verified IR module."""
    module = compile_program(parse_source(source), name)
    if verify:
        verify_module(module)
    return module


__all__ = [
    "CodegenError",
    "LexError",
    "MCSyntaxError",
    "Program",
    "Token",
    "compile_program",
    "compile_source",
    "parse_source",
    "tokenize",
]
