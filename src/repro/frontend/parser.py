"""Recursive-descent parser for MC.

Grammar (C subset)::

    program     := (global | extern | function)*
    global      := 'global' type IDENT ('[' INT ']')? ('=' ginit)? ';'
    ginit       := number | '{' number (',' number)* '}'
    extern      := 'extern' IDENT ';'
    function    := ('int'|'float'|'void') IDENT '(' params ')' block
    params      := (type IDENT (',' type IDENT)*)?
    block       := '{' stmt* '}'
    stmt        := decl | if | while | for | jump | block | simple ';'
    decl        := type IDENT ('[' INT ']')? ('=' expr)? ';'
    simple      := lvalue '=' expr | expr
    jump        := 'return' expr? ';' | 'break' ';' | 'continue' ';'

Expression precedence (loosest to tightest): ``||``, ``&&``, ``|``,
``^``, ``&``, equality, relational, shifts, additive, multiplicative,
unary (- ! ~), postfix (call, index), primary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize


class MCSyntaxError(Exception):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.column}: {message} (got {token})")
        self.token = token


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in ("op", "keyword")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise MCSyntaxError(f"expected {text!r}", self.current)
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise MCSyntaxError(f"expected {kind}", self.current)
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        externs: List[ast.ExternDecl] = []
        functions: List[ast.FuncDecl] = []
        while self.current.kind != "eof":
            if self.check("global"):
                globals_.append(self.parse_global())
            elif self.check("extern"):
                externs.append(self.parse_extern())
            else:
                functions.append(self.parse_function())
        return ast.Program(globals_, externs, functions)

    def parse_global(self) -> ast.GlobalDecl:
        line = self.expect("global").line
        type_name = self.parse_type()
        name = self.expect_kind("ident").text
        size = None
        if self.accept("["):
            size = int(self.expect_kind("int").text)
            self.expect("]")
        init = None
        if self.accept("="):
            init = self.parse_global_init()
        self.expect(";")
        return ast.GlobalDecl(type_name, name, size, init, line=line)

    def parse_global_init(self) -> List[ast.Number]:
        if self.accept("{"):
            values = [self.parse_number()]
            while self.accept(","):
                values.append(self.parse_number())
            self.expect("}")
            return values
        return [self.parse_number()]

    def parse_number(self) -> ast.Number:
        negative = self.accept("-")
        token = self.current
        if token.kind == "int":
            self.advance()
            value: ast.Number = int(token.text)
        elif token.kind == "float":
            self.advance()
            value = float(token.text)
        else:
            raise MCSyntaxError("expected a numeric literal", token)
        return -value if negative else value

    def parse_extern(self) -> ast.ExternDecl:
        line = self.expect("extern").line
        name = self.expect_kind("ident").text
        self.expect(";")
        return ast.ExternDecl(name, line=line)

    def parse_type(self) -> str:
        token = self.current
        if token.text in ("int", "float"):
            self.advance()
            return token.text
        raise MCSyntaxError("expected a type", token)

    def parse_function(self) -> ast.FuncDecl:
        token = self.current
        if token.text not in ("int", "float", "void"):
            raise MCSyntaxError("expected a function declaration", token)
        self.advance()
        name = self.expect_kind("ident").text
        self.expect("(")
        params: List[ast.Param] = []
        if not self.check(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect_kind("ident").text
                params.append(ast.Param(ptype, pname, line=self.current.line))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDecl(token.text, name, params, body, line=token.line)

    # -- statements -------------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.expect("{")
        stmts: List[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.text in ("int", "float"):
            return self.parse_decl()
        if self.check("if"):
            return self.parse_if()
        if self.check("while"):
            return self.parse_while()
        if self.check("for"):
            return self.parse_for()
        if self.accept("return"):
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(value, line=token.line)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(line=token.line)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(line=token.line)
        if self.check("{"):
            # Anonymous block: flatten into an If(1) for simplicity.
            body = self.parse_block()
            return ast.If(ast.IntLiteral(1, line=token.line), body, [], line=token.line)
        stmt = self.parse_simple()
        self.expect(";")
        return stmt

    def parse_decl(self) -> ast.VarDecl:
        line = self.current.line
        type_name = self.parse_type()
        name = self.expect_kind("ident").text
        size = None
        if self.accept("["):
            size = int(self.expect_kind("int").text)
            self.expect("]")
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.VarDecl(type_name, name, size, init, line=line)

    def parse_if(self) -> ast.If:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_statement_as_block()
        else_body: List[ast.Stmt] = []
        if self.accept("else"):
            else_body = self.parse_statement_as_block()
        return ast.If(cond, then_body, else_body, line=line)

    def parse_while(self) -> ast.While:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(cond, self.parse_statement_as_block(), line=line)

    def parse_for(self) -> ast.For:
        line = self.expect("for").line
        self.expect("(")
        init = None if self.check(";") else self.parse_simple_or_decl()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step = None if self.check(")") else self.parse_simple()
        self.expect(")")
        return ast.For(init, cond, step, self.parse_statement_as_block(), line=line)

    def parse_statement_as_block(self) -> List[ast.Stmt]:
        if self.check("{"):
            return self.parse_block()
        return [self.parse_statement()]

    def parse_simple_or_decl(self) -> ast.Stmt:
        if self.current.text in ("int", "float"):
            # A declaration inside for(...) has no trailing ';' here, so
            # parse it manually.
            line = self.current.line
            type_name = self.parse_type()
            name = self.expect_kind("ident").text
            init = self.parse_expr() if self.accept("=") else None
            return ast.VarDecl(type_name, name, None, init, line=line)
        return self.parse_simple()

    def parse_simple(self) -> ast.Stmt:
        line = self.current.line
        expr = self.parse_expr()
        if self.accept("="):
            if not isinstance(expr, (ast.VarRef, ast.IndexRef)):
                raise MCSyntaxError("invalid assignment target", self.current)
            value = self.parse_expr()
            return ast.Assign(expr, value, line=line)
        return ast.ExprStmt(expr, line=line)

    # -- expressions (precedence climbing) ----------------------------------------

    _LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_expr(self) -> ast.Expr:
        return self._parse_level(0)

    def _parse_level(self, level: int) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        expr = self._parse_level(level + 1)
        while self.current.kind == "op" and self.current.text in self._LEVELS[level]:
            op = self.advance().text
            rhs = self._parse_level(level + 1)
            expr = ast.Binary(op, expr, rhs, line=self.current.line)
        return expr

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(token.text, self.parse_unary(), line=token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(int(token.text), line=token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(float(token.text), line=token.line)
        if token.kind == "ident":
            self.advance()
            if self.accept("("):
                args: List[ast.Expr] = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.CallExpr(token.text, args, line=token.line)
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return ast.IndexRef(token.text, index, line=token.line)
            return ast.VarRef(token.text, line=token.line)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise MCSyntaxError("expected an expression", token)


def parse_source(source: str) -> ast.Program:
    return Parser(tokenize(source)).parse_program()
