"""AST node definitions for the MC language."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

Number = Union[int, float]


@dataclasses.dataclass
class Node:
    line: int = dataclasses.field(default=0, kw_only=True)


# -- expressions --------------------------------------------------------------


@dataclasses.dataclass
class IntLiteral(Node):
    value: int


@dataclasses.dataclass
class FloatLiteral(Node):
    value: float


@dataclasses.dataclass
class VarRef(Node):
    name: str


@dataclasses.dataclass
class IndexRef(Node):
    name: str
    index: "Expr"


@dataclasses.dataclass
class Unary(Node):
    op: str  # "-", "!", "~"
    operand: "Expr"


@dataclasses.dataclass
class Binary(Node):
    op: str  # + - * / % << >> < <= > >= == != & ^ | && ||
    lhs: "Expr"
    rhs: "Expr"


@dataclasses.dataclass
class CallExpr(Node):
    callee: str
    args: List["Expr"]


Expr = Union[IntLiteral, FloatLiteral, VarRef, IndexRef, Unary, Binary, CallExpr]


# -- statements ---------------------------------------------------------------


@dataclasses.dataclass
class VarDecl(Node):
    type: str  # "int" | "float"
    name: str
    size: Optional[int] = None  # None: scalar; int: local array
    init: Optional[Expr] = None


@dataclasses.dataclass
class Assign(Node):
    target: Union[VarRef, IndexRef]
    value: Expr


@dataclasses.dataclass
class ExprStmt(Node):
    expr: Expr


@dataclasses.dataclass
class If(Node):
    cond: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"]


@dataclasses.dataclass
class While(Node):
    cond: Expr
    body: List["Stmt"]


@dataclasses.dataclass
class For(Node):
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: List["Stmt"]


@dataclasses.dataclass
class Return(Node):
    value: Optional[Expr]


@dataclasses.dataclass
class Break(Node):
    pass


@dataclasses.dataclass
class Continue(Node):
    pass


Stmt = Union[VarDecl, Assign, ExprStmt, If, While, For, Return, Break, Continue]


# -- top level ------------------------------------------------------------------


@dataclasses.dataclass
class GlobalDecl(Node):
    type: str
    name: str
    size: Optional[int] = None
    init: Optional[List[Number]] = None


@dataclasses.dataclass
class ExternDecl(Node):
    name: str


@dataclasses.dataclass
class Param(Node):
    type: str
    name: str


@dataclasses.dataclass
class FuncDecl(Node):
    return_type: str  # "int" | "float" | "void"
    name: str
    params: List[Param]
    body: List[Stmt]


@dataclasses.dataclass
class Program(Node):
    globals: List[GlobalDecl]
    externs: List[ExternDecl]
    functions: List[FuncDecl]
