"""Code generation: MC AST -> repro IR.

Scalars live in virtual registers (the IR is not SSA, so assignment is
an in-place ``mov``); global scalars live in size-1 memory objects;
arrays are memory objects (module globals or frame-local stack
objects).  ``int`` maps to i64 words, ``float`` to f64; mixed arithmetic
promotes to float with explicit conversions, exactly what a C compiler
would emit.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple, Union

from repro.frontend import ast_nodes as ast
from repro.ir import IRBuilder, Module, Type, VirtualRegister
from repro.ir.values import Constant, MemoryObject


class CodegenError(Exception):
    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


# A binding in the symbol table.
@dataclasses.dataclass
class _Binding:
    kind: str  # "reg" | "global_scalar" | "array"
    type: str  # "int" | "float"
    reg: Optional[VirtualRegister] = None
    obj: Optional[MemoryObject] = None


# An evaluated expression: IR operand + MC type.
Value = Tuple[object, str]

_INT_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
               "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
_FLOAT_BINOPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_INT_PREDS = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
              ">": "sgt", ">=": "sge"}
_FLOAT_PREDS = {"==": "feq", "!=": "fne", "<": "flt", "<=": "fle",
                ">": "fgt", ">=": "fge"}


class _FunctionCodegen:
    def __init__(
        self,
        module: Module,
        decl: ast.FuncDecl,
        signatures: Dict[str, ast.FuncDecl],
        global_scope: Dict[str, _Binding],
    ) -> None:
        self.module = module
        self.decl = decl
        self.signatures = signatures
        self.scopes: List[Dict[str, _Binding]] = [dict(global_scope)]
        self.loop_stack: List[Tuple[str, str]] = []  # (break, continue)
        self._labels = itertools.count()
        self._locals = itertools.count()
        params = []
        self._param_bindings = {}
        for param in decl.params:
            reg = VirtualRegister(
                param.name, Type.F64 if param.type == "float" else Type.I64
            )
            params.append(reg)
            self._param_bindings[param.name] = _Binding(
                "reg", param.type, reg=reg
            )
        self.func = module.add_function(decl.name, params=params)
        self.b = IRBuilder(self.func)

    # -- scope management ---------------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise CodegenError(f"undefined variable {name!r}", line)

    def declare(self, name: str, binding: _Binding, line: int) -> None:
        if name in self.scopes[-1]:
            raise CodegenError(f"redeclaration of {name!r}", line)
        self.scopes[-1][name] = binding

    def label(self, stem: str) -> str:
        return f"{stem}_{next(self._labels)}"

    # -- entry point ------------------------------------------------------------

    def generate(self) -> None:
        self.b.block("entry")
        self.push_scope()
        for name, binding in self._param_bindings.items():
            self.declare(name, binding, self.decl.line)
        self.gen_body(self.decl.body)
        self.pop_scope()
        self._terminate_open_blocks()

    def _terminate_open_blocks(self) -> None:
        for block in self.func:
            if not block.is_terminated:
                current = self.b.position_at(block.label)
                if self.decl.return_type == "void":
                    self.b.ret()
                elif self.decl.return_type == "float":
                    self.b.ret(0.0)
                else:
                    self.b.ret(0)

    # -- statements ----------------------------------------------------------------

    def gen_body(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if self.b.current_block.is_terminated:
                # Dead code after return/break/continue: emit into a
                # fresh unreachable block so codegen stays simple.
                self.b.block(self.label("dead"))
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        handler = getattr(self, f"_gen_{type(stmt).__name__.lower()}", None)
        if handler is None:
            raise CodegenError(f"unsupported statement {type(stmt).__name__}")
        handler(stmt)

    def _gen_vardecl(self, stmt: ast.VarDecl) -> None:
        if stmt.size is not None:
            unique = f"{stmt.name}__a{next(self._locals)}"
            obj = self.func.add_stack_object(unique, stmt.size)
            self.declare(
                stmt.name, _Binding("array", stmt.type, obj=obj), stmt.line
            )
            if stmt.init is not None:
                raise CodegenError(
                    "local array initializers are not supported", stmt.line
                )
            return
        reg = VirtualRegister(
            f"{stmt.name}__{next(self._locals)}",
            Type.F64 if stmt.type == "float" else Type.I64,
        )
        self.declare(stmt.name, _Binding("reg", stmt.type, reg=reg), stmt.line)
        if stmt.init is not None:
            value = self.coerce(self.gen_expr(stmt.init), stmt.type, stmt.line)
            self.b.mov(value, reg)
        else:
            self.b.mov(0.0 if stmt.type == "float" else 0, reg)

    def _gen_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            binding = self.lookup(target.name, stmt.line)
            value = self.coerce(self.gen_expr(stmt.value), binding.type, stmt.line)
            if binding.kind == "reg":
                self.b.mov(value, binding.reg)
            elif binding.kind == "global_scalar":
                self.b.store(binding.obj, 0, value)
            else:
                raise CodegenError(
                    f"cannot assign to array {target.name!r}", stmt.line
                )
            return
        binding = self.lookup(target.name, stmt.line)
        if binding.kind != "array" and binding.kind != "global_scalar":
            raise CodegenError(f"{target.name!r} is not indexable", stmt.line)
        index, _ = self._int_value(self.gen_expr(target.index), stmt.line)
        value = self.coerce(self.gen_expr(stmt.value), binding.type, stmt.line)
        self.b.store(binding.obj, index, value)

    def _gen_exprstmt(self, stmt: ast.ExprStmt) -> None:
        self.gen_expr(stmt.expr, allow_void=True)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self.truthy(self.gen_expr(stmt.cond), stmt.line)
        then_l = self.label("then")
        else_l = self.label("else") if stmt.else_body else None
        join_l = self.label("join")
        self.b.br(cond, then_l, else_l or join_l)
        self.b.block(then_l)
        self.push_scope()
        self.gen_body(stmt.then_body)
        self.pop_scope()
        if not self.b.current_block.is_terminated:
            self.b.jmp(join_l)
        if else_l is not None:
            self.b.block(else_l)
            self.push_scope()
            self.gen_body(stmt.else_body)
            self.pop_scope()
            if not self.b.current_block.is_terminated:
                self.b.jmp(join_l)
        self.b.block(join_l)

    def _gen_while(self, stmt: ast.While) -> None:
        head_l = self.label("while_head")
        body_l = self.label("while_body")
        exit_l = self.label("while_exit")
        self.b.jmp(head_l)
        self.b.block(head_l)
        cond = self.truthy(self.gen_expr(stmt.cond), stmt.line)
        self.b.br(cond, body_l, exit_l)
        self.b.block(body_l)
        self.loop_stack.append((exit_l, head_l))
        self.push_scope()
        self.gen_body(stmt.body)
        self.pop_scope()
        self.loop_stack.pop()
        if not self.b.current_block.is_terminated:
            self.b.jmp(head_l)
        self.b.block(exit_l)

    def _gen_for(self, stmt: ast.For) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        head_l = self.label("for_head")
        body_l = self.label("for_body")
        step_l = self.label("for_step")
        exit_l = self.label("for_exit")
        self.b.jmp(head_l)
        self.b.block(head_l)
        if stmt.cond is not None:
            cond = self.truthy(self.gen_expr(stmt.cond), stmt.line)
            self.b.br(cond, body_l, exit_l)
        else:
            self.b.jmp(body_l)
        self.b.block(body_l)
        self.loop_stack.append((exit_l, step_l))
        self.push_scope()
        self.gen_body(stmt.body)
        self.pop_scope()
        self.loop_stack.pop()
        if not self.b.current_block.is_terminated:
            self.b.jmp(step_l)
        self.b.block(step_l)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.b.jmp(head_l)
        self.b.block(exit_l)
        self.pop_scope()

    def _gen_return(self, stmt: ast.Return) -> None:
        if self.decl.return_type == "void":
            if stmt.value is not None:
                raise CodegenError("void function returning a value", stmt.line)
            self.b.ret()
            return
        if stmt.value is None:
            raise CodegenError("non-void function must return a value", stmt.line)
        value = self.coerce(
            self.gen_expr(stmt.value), self.decl.return_type, stmt.line
        )
        self.b.ret(value)

    def _gen_break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:
            raise CodegenError("break outside a loop", stmt.line)
        self.b.jmp(self.loop_stack[-1][0])

    def _gen_continue(self, stmt: ast.Continue) -> None:
        if not self.loop_stack:
            raise CodegenError("continue outside a loop", stmt.line)
        self.b.jmp(self.loop_stack[-1][1])

    # -- expressions ------------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr, allow_void: bool = False) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return (expr.value, "int")
        if isinstance(expr, ast.FloatLiteral):
            return (expr.value, "float")
        if isinstance(expr, ast.VarRef):
            binding = self.lookup(expr.name, expr.line)
            if binding.kind == "reg":
                return (binding.reg, binding.type)
            if binding.kind == "global_scalar":
                return (self.b.load(binding.obj, 0), binding.type)
            raise CodegenError(
                f"array {expr.name!r} used without an index", expr.line
            )
        if isinstance(expr, ast.IndexRef):
            binding = self.lookup(expr.name, expr.line)
            if binding.kind not in ("array", "global_scalar"):
                raise CodegenError(f"{expr.name!r} is not indexable", expr.line)
            index, _ = self._int_value(self.gen_expr(expr.index), expr.line)
            return (self.b.load(binding.obj, index), binding.type)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._gen_call(expr, allow_void)
        raise CodegenError(f"unsupported expression {type(expr).__name__}")

    def _gen_unary(self, expr: ast.Unary) -> Value:
        operand, mc_type = self.gen_expr(expr.operand)
        if expr.op == "-":
            if mc_type == "float":
                return (self.b.unop("fneg", operand), "float")
            return (self.b.unop("neg", operand), "int")
        if expr.op == "!":
            truth = self.truthy((operand, mc_type), expr.line)
            return (self.b.xor(truth, 1), "int")
        if expr.op == "~":
            if mc_type != "int":
                raise CodegenError("~ requires an int operand", expr.line)
            return (self.b.unop("not", operand), "int")
        raise CodegenError(f"unknown unary operator {expr.op!r}", expr.line)

    def _gen_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)
        if expr.op in _INT_PREDS:
            if lhs[1] == "float" or rhs[1] == "float":
                flhs = self.coerce(lhs, "float", expr.line)
                frhs = self.coerce(rhs, "float", expr.line)
                return (self.b.cmp(_FLOAT_PREDS[expr.op], flhs, frhs), "int")
            return (self.b.cmp(_INT_PREDS[expr.op], lhs[0], rhs[0]), "int")
        if expr.op in ("%", "&", "|", "^", "<<", ">>"):
            if lhs[1] == "float" or rhs[1] == "float":
                raise CodegenError(
                    f"{expr.op!r} requires int operands", expr.line
                )
            return (self.b.binop(_INT_BINOPS[expr.op], lhs[0], rhs[0]), "int")
        if lhs[1] == "float" or rhs[1] == "float":
            flhs = self.coerce(lhs, "float", expr.line)
            frhs = self.coerce(rhs, "float", expr.line)
            return (self.b.binop(_FLOAT_BINOPS[expr.op], flhs, frhs), "float")
        return (self.b.binop(_INT_BINOPS[expr.op], lhs[0], rhs[0]), "int")

    def _gen_logical(self, expr: ast.Binary) -> Value:
        """Short-circuit && / || with proper control flow."""
        result = self.b.fresh("bool")
        rhs_l = self.label("sc_rhs")
        done_l = self.label("sc_done")
        lhs_truth = self.truthy(self.gen_expr(expr.lhs), expr.line)
        if expr.op == "&&":
            self.b.mov(0, result)
            self.b.br(lhs_truth, rhs_l, done_l)
        else:
            self.b.mov(1, result)
            self.b.br(lhs_truth, done_l, rhs_l)
        self.b.block(rhs_l)
        rhs_truth = self.truthy(self.gen_expr(expr.rhs), expr.line)
        self.b.mov(rhs_truth, result)
        self.b.jmp(done_l)
        self.b.block(done_l)
        return (result, "int")

    def _gen_call(self, expr: ast.CallExpr, allow_void: bool) -> Value:
        callee = self.signatures.get(expr.callee)
        if callee is not None:
            if len(expr.args) != len(callee.params):
                raise CodegenError(
                    f"{expr.callee}() expects {len(callee.params)} args, "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            args = [
                self.coerce(self.gen_expr(arg), param.type, expr.line)
                for arg, param in zip(expr.args, callee.params)
            ]
            if callee.return_type == "void":
                if not allow_void:
                    raise CodegenError(
                        f"void call {expr.callee}() used as a value", expr.line
                    )
                self.b.call(expr.callee, args, returns=False)
                return (0, "int")
            dest = self.b.call(expr.callee, args)
            return (dest, callee.return_type)
        if self.module.is_external(expr.callee) or expr.callee in self.module.externals:
            args = [self.gen_expr(arg)[0] for arg in expr.args]
            if expr.callee not in self.module.externals:
                raise CodegenError(
                    f"call to undeclared function {expr.callee!r}", expr.line
                )
            dest = self.b.call(expr.callee, args)
            return (dest, "int")
        raise CodegenError(
            f"call to undeclared function {expr.callee!r}", expr.line
        )

    # -- conversions ----------------------------------------------------------------------

    def coerce(self, value: Value, target: str, line: int):
        operand, mc_type = value
        if mc_type == target:
            return operand
        if target == "float":
            if isinstance(operand, (int, float)):
                return float(operand)
            return self.b.unop("sitofp", operand)
        if target == "int":
            if isinstance(operand, (int, float)):
                return int(operand)
            return self.b.unop("fptosi", operand)
        raise CodegenError(f"cannot convert {mc_type} to {target}", line)

    def truthy(self, value: Value, line: int):
        operand, mc_type = value
        if mc_type == "float":
            return self.b.cmp("fne", operand, 0.0)
        return self.b.cmp("ne", operand, 0)

    def _int_value(self, value: Value, line: int) -> Value:
        if value[1] != "int":
            raise CodegenError("array index must be an int", line)
        return value


def compile_program(program: ast.Program, name: str = "mc") -> Module:
    """Lower a parsed MC program to a repro IR module."""
    module = Module(name)
    global_scope: Dict[str, _Binding] = {}
    for decl in program.globals:
        size = decl.size if decl.size is not None else 1
        init = list(decl.init) if decl.init is not None else None
        if init is not None and len(init) > size:
            raise CodegenError(
                f"initializer for {decl.name!r} longer than the object",
                decl.line,
            )
        if init is not None and decl.type == "float":
            init = [float(v) for v in init]
        obj = module.add_global(decl.name, size, init=init)
        kind = "array" if decl.size is not None else "global_scalar"
        global_scope[decl.name] = _Binding(kind, decl.type, obj=obj)
    for decl in program.externs:
        module.declare_external(decl.name)

    signatures = {}
    for func in program.functions:
        if func.name in signatures:
            raise CodegenError(f"duplicate function {func.name!r}", func.line)
        signatures[func.name] = func
    for func in program.functions:
        _FunctionCodegen(module, func, signatures, global_scope).generate()
    return module
