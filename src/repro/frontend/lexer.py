"""Lexer for MC, the mini-C frontend language.

MC covers the C subset the paper's workloads live in: ints and floats,
global/local arrays, functions, and structured control flow.  The lexer
produces a flat token stream with line/column positions for error
reporting.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, List, Optional

KEYWORDS = frozenset(
    ["int", "float", "void", "global", "extern", "if", "else", "while",
     "for", "return", "break", "continue"]
)

# Longest-match-first operator table.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>""" + "|".join(re.escape(op) for op in OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "int", "float", "ident", "keyword", "op", "eof"
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.text!r}"


class LexError(Exception):
    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> List[Token]:
    """Tokenize MC source; raises :class:`LexError` on bad characters."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        text = match.group(0)
        kind = match.lastgroup
        column = pos - line_start + 1
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
