"""The pass-manager core: passes, scheduling, caching, observability.

The Encore compiler (and the ``opt/`` clean-up mix) is structured as a
set of named *passes* run by a :class:`PassManager`, LLVM-style:

* **analysis passes** compute a product (profile, alias facts, region
  partition, idempotence verdicts ...) that later passes consume.  Each
  declares ``requires`` (passes that must run first) and
  ``config_keys`` — the slice of the pipeline configuration its product
  actually depends on.  Products are memoized per compilation and, when
  the pass marks itself ``portable``, shared *across* compilations
  through an :class:`AnalysisCache` keyed by
  ``(module fingerprint, pass name, config slice, context token)``;
* **transform passes** mutate the module.  Running one invalidates every
  in-flight analysis product it does not explicitly ``preserve`` and
  dirties the module fingerprint, so stale products can never leak into
  a later compilation.

Every pass execution records wall time and named counters into a
:class:`PipelineStats`, surfaced on :class:`repro.encore.EncoreReport`
and via the ``--time-passes`` / ``--stats`` CLI flags.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module

#: Sentinel distinguishing "cached None" from "absent".
_MISSING = object()


def module_fingerprint(module: Module) -> str:
    """Content hash of a module: equal text IR ⇒ equal fingerprint.

    Deterministic workload builders produce byte-identical textual IR on
    every build, so portable analysis products computed against one
    build instance are safely reusable against any other.
    """
    from repro.ir.printer import module_to_text

    return hashlib.sha256(module_to_text(module).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class PassStats:
    """Wall time and counters accumulated by one pass."""

    name: str
    seconds: float = 0.0
    runs: int = 0
    #: How many of ``runs`` were satisfied from the AnalysisCache.
    cache_hits: int = 0
    counters: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def executed(self) -> int:
        """Runs that actually computed (not served from cache)."""
        return self.runs - self.cache_hits


class PipelineStats:
    """Per-pass timing and counters for one (or several) compilations."""

    def __init__(self) -> None:
        self._passes: Dict[str, PassStats] = {}
        self._order: List[str] = []

    def stat(self, name: str) -> PassStats:
        if name not in self._passes:
            self._passes[name] = PassStats(name)
            self._order.append(name)
        return self._passes[name]

    def bump(self, pass_name: str, counter: str, value: float = 1) -> None:
        counters = self.stat(pass_name).counters
        counters[counter] = counters.get(counter, 0) + value

    def set_counter(self, pass_name: str, counter: str, value: float) -> None:
        self.stat(pass_name).counters[counter] = value

    def counter(self, pass_name: str, counter: str, default: float = 0) -> float:
        return self.stat(pass_name).counters.get(counter, default)

    def executed(self, pass_name: str) -> int:
        return self.stat(pass_name).executed

    @property
    def passes(self) -> List[PassStats]:
        return [self._passes[name] for name in self._order]

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.passes)

    @property
    def cache_hits(self) -> int:
        return sum(stat.cache_hits for stat in self.passes)

    def merge(self, other: "PipelineStats") -> None:
        for stat in other.passes:
            mine = self.stat(stat.name)
            mine.seconds += stat.seconds
            mine.runs += stat.runs
            mine.cache_hits += stat.cache_hits
            for counter, value in stat.counters.items():
                mine.counters[counter] = mine.counters.get(counter, 0) + value

    # -- rendering (the --time-passes / --stats output format) ----------

    def render_timing(self) -> str:
        """LLVM-style pass execution timing report."""
        total = self.total_seconds
        lines = [
            "===" + "-" * 60 + "===",
            "   ... Pass execution timing report ...",
            "===" + "-" * 60 + "===",
            f"  Total Execution Time: {total:.4f} seconds",
            "",
            f"  {'---Wall Time---':>17}  {'---Runs---':>12}  --Pass Name--",
        ]
        for stat in sorted(self.passes, key=lambda s: -s.seconds):
            if stat.runs == 0:  # counter-only entries (e.g. "opt")
                continue
            share = (stat.seconds / total * 100.0) if total > 0 else 0.0
            runs = f"{stat.runs}"
            if stat.cache_hits:
                runs += f" ({stat.cache_hits} cached)"
            lines.append(
                f"  {stat.seconds:9.4f}s ({share:5.1f}%)  {runs:>12}  {stat.name}"
            )
        return "\n".join(lines)

    def render_counters(self) -> str:
        """Per-pass statistics, LLVM ``-stats`` style."""
        lines = [
            "===" + "-" * 60 + "===",
            "   ... Pass statistics ...",
            "===" + "-" * 60 + "===",
        ]
        for stat in self.passes:
            for counter in sorted(stat.counters):
                value = stat.counters[counter]
                text = f"{value:g}"
                lines.append(f"  {text:>10}  {stat.name}.{counter}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Cross-compilation analysis cache
# ---------------------------------------------------------------------------


class AnalysisCache:
    """Cross-compilation store of *portable* analysis products.

    Entries are keyed ``(module fingerprint, pass name, config slice,
    context token)``.  Only coordinate-based products (no references to
    live IR objects) may be stored: a profile keyed by block labels, an
    idempotence verdict keyed by (block label, instruction index), and
    so on.  Because the fingerprint is a content hash, a transform pass
    mutating a module automatically orphans (never corrupts) entries
    computed against the pristine text — explicit invalidation exists to
    reclaim the memory.
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple) -> Any:
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self.hits += 1
        return value

    def store(self, key: tuple, value: Any) -> Any:
        self._entries[key] = value
        return value

    def get_or_create(self, key: tuple, factory: Callable[[], Any]) -> Any:
        """Fetch a mutable accumulator (e.g. a per-region verdict table),
        creating it on first use.  Does not count as a hit or miss —
        the accumulator's own consumers do their own accounting."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            value = self._entries[key] = factory()
        return value

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop entries for one fingerprint (or everything)."""
        if fingerprint is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        stale = [k for k in self._entries if k and k[0] == fingerprint]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class Pass:
    """Base class for analysis and transform passes."""

    #: Unique pass name (also the stats/report key).
    name: str = "?"
    #: Pass names that must have produced results before this one runs.
    requires: Tuple[str, ...] = ()
    #: Configuration attribute names this pass's product depends on.
    #: Two configurations agreeing on this slice share cache entries.
    config_keys: Tuple[str, ...] = ()
    #: True when the product holds no live IR references and may be
    #: shared across module instances with equal fingerprints.
    portable: bool = False
    #: Transform passes mutate the module instead of computing a product.
    is_transform: bool = False
    #: Analysis pass names a transform leaves valid.
    preserves: Tuple[str, ...] = ()

    def cache_token(self, ctx: "PipelineContext") -> tuple:
        """Extra context the cache key must include (e.g. entry + args)."""
        return ()

    def run(self, ctx: "PipelineContext") -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "transform" if self.is_transform else "analysis"
        return f"<{kind} pass {self.name}>"


@dataclasses.dataclass
class PipelineContext:
    """Everything a pass may read while running."""

    module: Module
    config: Any
    manager: "PassManager"
    function: str = "main"
    args: Sequence = ()
    externals: Any = None
    jobs: int = 1
    results: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def require(self, name: str) -> Any:
        """Fetch another pass's product, running it if necessary."""
        return self.manager.run(name)

    def bump(self, pass_name: str, counter: str, value: float = 1) -> None:
        self.manager.stats.bump(pass_name, counter, value)


class PassManager:
    """Schedules passes over one module, with caching and accounting."""

    def __init__(
        self,
        module: Module,
        config: Any = None,
        passes: Sequence[Pass] = (),
        cache: Optional[AnalysisCache] = None,
        stats: Optional[PipelineStats] = None,
        function: str = "main",
        args: Sequence = (),
        externals: Any = None,
        jobs: int = 1,
    ) -> None:
        self.passes: Dict[str, Pass] = {}
        for pass_ in passes:
            self.register(pass_)
        self.cache = cache
        self.stats = stats if stats is not None else PipelineStats()
        self.ctx = PipelineContext(
            module=module,
            config=config,
            manager=self,
            function=function,
            args=tuple(args),
            externals=externals,
            jobs=max(1, jobs),
        )
        self._fingerprint: Optional[str] = None
        self._running: List[str] = []

    # -- registration and bookkeeping ------------------------------------

    def register(self, pass_: Pass) -> None:
        if pass_.name in self.passes:
            raise ValueError(f"duplicate pass {pass_.name!r}")
        self.passes[pass_.name] = pass_

    def seed(self, name: str, value: Any) -> None:
        """Install an externally-provided product (e.g. a saved profile)."""
        self.ctx.results[name] = value
        self.stats.bump(name, "seeded")

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = module_fingerprint(self.ctx.module)
        return self._fingerprint

    def config_slice(self, pass_: Pass) -> tuple:
        config = self.ctx.config
        return tuple(
            (key, getattr(config, key)) for key in pass_.config_keys
        )

    def cache_key(self, pass_: Pass) -> tuple:
        return (
            self.fingerprint(),
            pass_.name,
            self.config_slice(pass_),
            pass_.cache_token(self.ctx),
        )

    # -- execution ---------------------------------------------------------

    def run(self, name: str) -> Any:
        """Run pass ``name`` (and, first, anything it requires).

        Analysis products are memoized for the compilation; portable
        products additionally go through the shared
        :class:`AnalysisCache`.  Transform passes always execute and
        invalidate whatever they do not preserve.
        """
        if name not in self.passes:
            raise KeyError(f"unknown pass {name!r}")
        pass_ = self.passes[name]
        if not pass_.is_transform and name in self.ctx.results:
            return self.ctx.results[name]
        if name in self._running:
            chain = " -> ".join(self._running + [name])
            raise RuntimeError(f"pass dependency cycle: {chain}")

        self._running.append(name)
        try:
            for dep in pass_.requires:
                self.run(dep)

            stat = self.stats.stat(name)
            start = time.perf_counter()
            try:
                cached = _MISSING
                key = None
                if (
                    pass_.portable
                    and not pass_.is_transform
                    and self.cache is not None
                ):
                    key = self.cache_key(pass_)
                    cached = self.cache.lookup(key)
                if cached is not _MISSING:
                    result = cached
                    stat.cache_hits += 1
                else:
                    result = pass_.run(self.ctx)
                    if key is not None:
                        self.cache.store(key, result)
            finally:
                stat.seconds += time.perf_counter() - start
                stat.runs += 1

            self.ctx.results[name] = result
            if pass_.is_transform:
                self._invalidate_after(pass_)
            return result
        finally:
            self._running.pop()

    def _invalidate_after(self, transform: Pass) -> None:
        """A transform ran: drop non-preserved products, dirty the hash."""
        preserved = set(transform.preserves) | {transform.name}
        for name in list(self.ctx.results):
            registered = self.passes.get(name)
            if registered is None or registered.is_transform:
                continue  # transform results and scratch entries persist
            if name in preserved:
                continue
            del self.ctx.results[name]
            self.stats.bump(transform.name, "invalidated_products")
        self._fingerprint = None
        # Transforms may rewrite instruction fields in place (copyprop's
        # ``inst.ref = ...``), which the decode cache's structural
        # signature cannot see — drop its per-object memo explicitly.
        # Imported lazily: the runtime is a client of the pipeline, not
        # a dependency.
        from repro.runtime.predecode import DECODE_CACHE

        DECODE_CACHE.invalidate(self.ctx.module)
