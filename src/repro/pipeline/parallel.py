"""Parallel per-function analysis fan-out.

Mirrors the executor pattern of :mod:`repro.runtime.parallel` — work is
chunked per independent unit (here: one function, there: one trial
chunk), fanned across an executor, and merged deterministically — but
uses *threads* rather than processes: analysis products carry live IR
object references (``id(inst)``-keyed checkpoint sites, region objects)
that must stay identity-stable with the module being compiled, and a
process boundary would sever them.  The analyses are pure functions of
the module, so concurrent duplicated work in shared memo dictionaries
is benign: every thread computes the same value, and results attach to
disjoint per-function region objects.

``ENCORE_ANALYSIS_JOBS`` plays the same fleet-wide role as
``ENCORE_SFI_JOBS`` does for campaigns: ``0``/``all`` means every core,
unset falls back to the caller's default (serial).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def analysis_jobs(default: Optional[int] = None) -> int:
    """Worker-thread count for per-function analysis."""
    env = os.environ.get("ENCORE_ANALYSIS_JOBS", "").strip()
    if env:
        if env.lower() in ("0", "all"):
            return os.cpu_count() or 1
        return max(1, int(env))
    if default is not None:
        return max(1, default)
    return 1


def map_over_functions(
    items_by_func: Dict[str, Sequence[T]],
    worker: Callable[[str, Sequence[T]], None],
    jobs: int = 1,
) -> List[str]:
    """Apply ``worker(func_name, items)`` to every function's work list.

    With ``jobs > 1`` functions are processed concurrently; results are
    identical to the serial path because workers only mutate their own
    function's items.  Returns the function names processed, in
    deterministic (input) order.
    """
    names = list(items_by_func)
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            worker(name, items_by_func[name])
        return names
    with ThreadPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = [
            pool.submit(worker, name, items_by_func[name]) for name in names
        ]
        for future in futures:
            future.result()  # re-raise worker exceptions deterministically
    return names
