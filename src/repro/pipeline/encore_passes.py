"""The Encore compiler pipeline as named passes (paper Figure 3).

Dependency graph (``a -> b`` = *b requires a*)::

    profile ----> regions ----> idempotence --> merge --> selection --> instrument
    memprofile -> alias ------/
                 (profiled alias mode only)

Cacheability of each product across a configuration sweep:

============  ========  ===========================  =====================
pass          portable  config slice                 shared across
============  ========  ===========================  =====================
profile       yes       (none)                       every configuration
memprofile    yes       (none)                       every configuration
alias         no        alias_mode                   one compilation
regions       no        granularity                  one compilation
idempotence   verdicts  pmin, alias_mode             sweep (via verdict
                                                     store, see
                                                     :mod:`..portable`)
merge         no        eta, max_region_length, ...  one compilation
selection     no        gamma, budget, auto_tune...  one compilation
instrument    transform (mutates the module)         never
============  ========  ===========================  =====================

``alias``/``regions``/``merge``/``selection`` hold live IR references
and are memoized only within a compilation; the heavy work they perform
(region verdicts) flows through the portable verdict store, which *is*
shared.  Independent functions' regions are analyzed in parallel
(:mod:`repro.pipeline.parallel`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.alias import AliasAnalysis
from repro.encore.idempotence import IdempotenceAnalyzer
from repro.encore.instrumentation import instrument_module
from repro.encore.regions import Region, RegionBuilder
from repro.pipeline.manager import Pass, PipelineContext
from repro.pipeline.parallel import map_over_functions
from repro.pipeline.portable import CachedRegionSelector, RegionAnalysis
from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import profile_module


def total_app_instructions(module, profile: ProfileData) -> int:
    """Dynamic application (non-instrumentation) instruction count."""
    total = 0
    for (func_name, label), count in profile.block_counts.items():
        func = module.get_function(func_name)
        if func is None or label not in func.blocks:
            continue
        length = sum(
            1 for inst in func.blocks[label] if not inst.is_instrumentation
        )
        total += count * length
    return total


class ProfilePass(Pass):
    """Execute the training input and collect block/edge/call counts."""

    name = "profile"
    portable = True  # ProfileData is keyed by (function, label) names

    def cache_token(self, ctx: PipelineContext) -> tuple:
        return (ctx.function, tuple(ctx.args))

    def run(self, ctx: PipelineContext) -> ProfileData:
        profile = profile_module(
            ctx.module,
            function=ctx.function,
            args=ctx.args,
            externals=ctx.externals,
        )
        ctx.bump(self.name, "training_instructions", profile.total_instructions)
        ctx.bump(self.name, "blocks_counted", len(profile.block_counts))
        return profile


class MemProfilePass(Pass):
    """Dynamic memory-access profile for the ``profiled`` alias mode."""

    name = "memprofile"
    portable = True  # sites are (function, block, index) coordinates

    def cache_token(self, ctx: PipelineContext) -> tuple:
        return (ctx.function, tuple(ctx.args))

    def run(self, ctx: PipelineContext):
        from repro.profiling.memprofile import collect_memory_profile

        memory_profile = collect_memory_profile(
            ctx.module,
            function=ctx.function,
            args=ctx.args,
            externals=ctx.externals,
        )
        ctx.bump(self.name, "sites_observed", len(memory_profile))
        return memory_profile


class AliasPass(Pass):
    """Points-to solve + may/must alias oracle for the configured mode."""

    name = "alias"
    config_keys = ("alias_mode",)

    def run(self, ctx: PipelineContext) -> AliasAnalysis:
        memory_profile = None
        if ctx.config.alias_mode == "profiled":
            memory_profile = ctx.require("memprofile")
        return AliasAnalysis(
            ctx.module, mode=ctx.config.alias_mode, memory_profile=memory_profile
        )


class RegionPartitionPass(Pass):
    """Partition every function into base SEME candidate regions."""

    name = "regions"
    requires = ("profile",)
    config_keys = ("granularity",)

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        profile = ctx.require("profile")
        builder = RegionBuilder(ctx.module, profile)
        if ctx.config.granularity == "function":
            base = builder.function_regions()
        else:
            base = builder.base_regions()
        ctx.bump(self.name, "base_regions", len(base))
        ctx.bump(
            self.name,
            "functions",
            sum(1 for f in ctx.module if f.blocks),
        )
        return {"builder": builder, "base": base}


class IdempotencePass(Pass):
    """Equations 1–4 over every base region, parallel per function.

    The product is the shared :class:`RegionAnalysis` used by every
    later pass that needs verdicts; base regions come back analyzed in
    place.  When the manager carries an :class:`AnalysisCache`, verdicts
    additionally flow through the portable per-region store for this
    module fingerprint and ``(pmin, alias_mode)`` slice, so a sweep
    never re-derives RS/GA/EA for a region shape it has seen.
    """

    name = "idempotence"
    requires = ("regions", "alias")
    config_keys = ("pmin", "alias_mode")

    def run(self, ctx: PipelineContext) -> RegionAnalysis:
        alias = ctx.require("alias")
        partition = ctx.require("regions")
        profile = ctx.require("profile")
        analyzer = IdempotenceAnalyzer(
            ctx.module, alias=alias, profile=profile, pmin=ctx.config.pmin
        )
        store = None
        manager = ctx.manager
        if manager.cache is not None:
            store = manager.cache.get_or_create(
                (
                    manager.fingerprint(),
                    "idempotence.store",
                    manager.config_slice(self),
                ),
                dict,
            )
        analysis = RegionAnalysis(
            ctx.module,
            analyzer,
            store=store,
            stats=manager.stats,
            stats_pass=self.name,
        )

        base: List[Region] = partition["base"]
        by_func: Dict[str, List[Region]] = {}
        for region in base:
            by_func.setdefault(region.func, []).append(region)

        if ctx.jobs > 1:
            # Call summaries recurse through the call graph behind a
            # shared in-progress guard; warm them serially so worker
            # threads only ever read completed summaries.
            for func in ctx.module:
                if func.blocks:
                    analyzer.summaries.function_summary(func.name)

        def worker(func_name: str, regions) -> None:
            for region in regions:
                analysis.analyze(region)

        map_over_functions(by_func, worker, ctx.jobs)
        manager.stats.set_counter(self.name, "analysis_jobs", ctx.jobs)
        return analysis


class MergePass(Pass):
    """Equation 5: fuse adjacent regions while dCoverage/dCost > η."""

    name = "merge"
    requires = ("idempotence",)
    config_keys = (
        "pmin",
        "alias_mode",
        "granularity",
        "merge_regions",
        "eta",
        "max_region_length",
        "gamma",
        "overhead_budget",
        "auto_tune",
    )

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        partition = ctx.require("regions")
        analysis: RegionAnalysis = ctx.require("idempotence")
        profile = ctx.require("profile")
        builder: RegionBuilder = partition["builder"]
        base: List[Region] = partition["base"]
        selector = CachedRegionSelector(
            ctx.module,
            analysis.analyzer,
            builder,
            profile,
            ctx.config.selection(),
            region_analysis=analysis,
        )

        if ctx.config.granularity == "function":
            candidates = [
                builder.make_region(r.func, r.blocks, r.header, r.level)
                for r in base
            ]
        elif ctx.config.merge_regions:
            candidates = []
            for func_name in ctx.module.functions:
                if not ctx.module.function(func_name).blocks:
                    continue
                candidates.extend(selector.merge_candidates(func_name))
        else:
            candidates = [
                builder.make_region(r.func, r.blocks, r.header, r.level)
                for r in base
            ]
        for region in candidates:
            selector.analyze(region)
        ctx.bump(self.name, "candidate_regions", len(candidates))
        ctx.bump(
            self.name, "regions_fused", max(0, len(base) - len(candidates))
        )
        return {"selector": selector, "candidates": candidates}


class SelectionPass(Pass):
    """γ threshold + overhead-budget auto-tuning over the candidates."""

    name = "selection"
    requires = ("merge",)
    config_keys = (
        "pmin",
        "alias_mode",
        "granularity",
        "merge_regions",
        "eta",
        "max_region_length",
        "gamma",
        "overhead_budget",
        "auto_tune",
    )

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        merged = ctx.require("merge")
        profile = ctx.require("profile")
        selector: CachedRegionSelector = merged["selector"]
        candidates: List[Region] = merged["candidates"]
        total_app = total_app_instructions(ctx.module, profile)
        selected = selector.select(candidates, total_app)
        # Freeze each winner's overhead estimate onto the region so the
        # report can answer overhead queries without a live selector.
        for region in selected:
            region.est_overhead = selector.estimated_overhead(region, total_app)
        ctx.bump(self.name, "regions_selected", len(selected))
        ctx.bump(
            self.name,
            "stores_checkpointed",
            sum(len(s.refs) for r in selected for s in r.checkpoint_sites),
        )
        ctx.bump(
            self.name,
            "register_checkpoints",
            sum(len(r.live_in_checkpoints) for r in selected),
        )
        return {"selected": selected, "total_app": total_app}


class InstrumentationPass(Pass):
    """Insert recovery blocks, entry trampolines, and checkpoints."""

    name = "instrument"
    requires = ("selection",)
    is_transform = True
    config_keys = ("metadata_guard",)

    def run(self, ctx: PipelineContext):
        selection = ctx.require("selection")
        report = instrument_module(
            ctx.module, selection["selected"],
            guard_level=ctx.config.metadata_guard,
        )
        ctx.bump(self.name, "regions_instrumented", report.instrumented_regions)
        ctx.bump(self.name, "checkpoint_mem_sites", report.checkpoint_mem_sites)
        ctx.bump(self.name, "checkpoint_reg_sites", report.checkpoint_reg_sites)
        ctx.bump(self.name, "clear_sites", report.clear_sites)
        return report


class BitLivenessPass(Pass):
    """Backward bit-liveness: per-site dead-bit masks for fault pruning.

    On-demand (no pipeline stage requires it): the incremental SFI
    subsystem requests it *after* instrumentation, so the masks describe
    the module campaigns actually inject into.  Portable — the product
    is keyed by ``(function, block, index)`` coordinates and the module
    fingerprint, so an edit-free re-run composes from cache.  Computed
    without an output-object set (every store observable): sound for
    any campaign, merely less aggressive than
    :func:`repro.incremental.bitmask.module_dead_masks` with the
    workload's real outputs.
    """

    name = "bitliveness"
    portable = True

    def run(self, ctx: PipelineContext):
        from repro.incremental.bitmask import module_dead_masks

        masks = module_dead_masks(ctx.module)
        ctx.bump(self.name, "sites", len(masks))
        ctx.bump(
            self.name,
            "dead_bits",
            sum(bin(mask).count("1") for mask in masks.values()),
        )
        return masks


def encore_passes() -> List[Pass]:
    """A fresh pass set for one :class:`~repro.pipeline.manager.PassManager`."""
    return [
        ProfilePass(),
        MemProfilePass(),
        AliasPass(),
        RegionPartitionPass(),
        IdempotencePass(),
        MergePass(),
        SelectionPass(),
        InstrumentationPass(),
        BitLivenessPass(),
    ]
