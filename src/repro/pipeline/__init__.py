"""Pass-manager compiler infrastructure.

``manager`` holds the generic machinery (passes, scheduling, the
cross-compilation :class:`AnalysisCache`, per-pass observability);
``encore_passes`` the staged Encore pipeline of paper Figure 3;
``optpasses`` the ``opt/`` clean-up mix under the same manager;
``portable`` the coordinate-based encodings that let region verdicts
survive across a sweep's module copies; ``parallel`` the per-function
analysis fan-out.
"""

from repro.pipeline.manager import (
    AnalysisCache,
    Pass,
    PassManager,
    PassStats,
    PipelineContext,
    PipelineStats,
    module_fingerprint,
)
from repro.pipeline.parallel import analysis_jobs, map_over_functions

__all__ = [
    "AnalysisCache",
    "Pass",
    "PassManager",
    "PassStats",
    "PipelineContext",
    "PipelineStats",
    "analysis_jobs",
    "map_over_functions",
    "module_fingerprint",
]
