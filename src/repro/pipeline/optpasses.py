"""The ``opt/`` clean-up mix as transform passes under the pass manager.

The optimizer used to be a hand-rolled fixpoint loop in
:mod:`repro.opt`; it now runs through the same :class:`PassManager` as
the Encore pipeline, so ``--time-passes`` and ``--stats`` cover the
whole toolchain uniformly.  Each pass is a module-level transform that
applies one rewriting family to every (non-instrumented) function and
reports per-function rewrite counts through the pipeline context.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.module import Module
from repro.pipeline.manager import Pass, PassManager, PipelineContext, PipelineStats


class _FunctionRewritePass(Pass):
    """A transform applying one per-function rewrite to the module."""

    is_transform = True

    #: set by subclasses: func -> rewrite count
    def rewrite(self, func) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, ctx: PipelineContext) -> int:
        counts: Dict[str, int] = ctx.results.setdefault("opt.counts", {})
        total = 0
        for name, func in ctx.module.functions.items():
            if not func.blocks:
                continue
            changed = self.rewrite(func)
            if changed:
                counts[name] = counts.get(name, 0) + changed
                total += changed
        ctx.bump(self.name, "rewrites", total)
        return total


class FoldPass(_FunctionRewritePass):
    name = "fold"

    def rewrite(self, func) -> int:
        from repro.opt.fold import fold_function

        return fold_function(func)


class CopyPropPass(_FunctionRewritePass):
    name = "copyprop"

    def rewrite(self, func) -> int:
        from repro.opt.copyprop import propagate_function

        return propagate_function(func)


class DCEPass(_FunctionRewritePass):
    name = "dce"

    def rewrite(self, func) -> int:
        from repro.opt.dce import eliminate_dead_code

        return eliminate_dead_code(func)


class SimplifyCFGPass(_FunctionRewritePass):
    name = "simplifycfg"

    def rewrite(self, func) -> int:
        from repro.opt.simplifycfg import simplify_cfg

        return simplify_cfg(func)


class InlinePass(Pass):
    """Splice small leaf callees into their callers (module-level)."""

    name = "inline"
    is_transform = True

    def run(self, ctx: PipelineContext) -> int:
        from repro.opt.inline import inline_functions

        inlined = inline_functions(ctx.module)
        ctx.bump(self.name, "calls_inlined", inlined)
        return inlined


#: The fixpoint mix, in the order the hand-rolled loop applied it.
OPT_PIPELINE = (FoldPass, CopyPropPass, DCEPass, SimplifyCFGPass)


def run_opt_pipeline(
    module: Module,
    max_rounds: int = 10,
    inline: bool = True,
    stats: Optional[PipelineStats] = None,
) -> Dict[str, int]:
    """Optimize ``module`` to a fixpoint via the pass manager.

    Returns per-function rewrite counts (plus ``"<inline>"``), the
    contract :func:`repro.opt.optimize_module` has always had.  Every
    function converges independently, so iterating the module-level
    passes to a global fixpoint performs exactly the per-function
    rewrites of the old per-function loops.
    """
    passes: List[Pass] = [cls() for cls in OPT_PIPELINE]
    manager = PassManager(
        module, passes=[InlinePass()] + passes, stats=stats
    )
    counts: Dict[str, int] = {}
    if inline:
        counts["<inline>"] = manager.run("inline")
    for _ in range(max_rounds):
        changed = sum(manager.run(p.name) for p in passes)
        manager.stats.bump("opt", "rounds")
        if changed == 0:
            break
    per_function: Dict[str, int] = manager.ctx.results.get("opt.counts", {})
    for name, func in module.functions.items():
        if func.blocks:
            counts[name] = per_function.get(name, 0)
    return counts
