"""Portable (coordinate-based) region analysis products.

Idempotence verdicts reference live IR objects — checkpoint sites point
at ``Instruction`` instances, register checkpoints at
``VirtualRegister`` values — so the raw :class:`IdempotenceResult`
cannot cross module instances.  This module encodes a verdict into pure
coordinates (block label, instruction index, global name, word offset)
and re-materializes it against any module with the same fingerprint,
which is what lets a Pmin/γ/η sweep share the expensive per-region
analysis across its per-configuration module copies.

A verdict depends only on the region's block set and the
``(pmin, alias_mode)`` slice of the configuration, so the store for one
slice is shared by every pass that analyzes regions (base partition,
merge candidates, selection re-analysis) and by every compilation in a
sweep that agrees on the slice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.liveness import LivenessAnalysis
from repro.encore.idempotence import (
    CheckpointSite,
    IdempotenceAnalyzer,
    IdempotenceResult,
    RegionStatus,
)
from repro.encore.regions import Region
from repro.encore.selection import RegionSelector
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import Constant, MemRef, VirtualRegister

RegionKey = Tuple[str, str, Tuple[str, ...]]  # (func, header, sorted blocks)

#: Site kinds in the portable encoding.
_OWN_REF = "own-ref"  # a store: checkpoint its own address operand
_NAMED_REFS = "named-refs"  # a call: checkpoint concrete (global, index) words
_OPAQUE = "opaque"  # non-checkpointable offender


def region_key(region: Region) -> RegionKey:
    return (region.func, region.header, tuple(sorted(region.blocks)))


def _instruction_coords(module: Module, func_name: str) -> Dict[int, Tuple[str, int]]:
    coords: Dict[int, Tuple[str, int]] = {}
    func = module.function(func_name)
    for block in func:
        for index, inst in enumerate(block.instructions):
            coords[id(inst)] = (block.label, index)
    return coords


def encode_result(
    module: Module,
    func_name: str,
    result: IdempotenceResult,
    live_ins: List[VirtualRegister],
    coords: Optional[Dict[int, Tuple[str, int]]] = None,
) -> dict:
    """Strip a verdict down to coordinates (raises KeyError for
    instructions not present in ``module`` — callers encode against the
    same module instance the analysis ran on)."""
    if coords is None:
        coords = _instruction_coords(module, func_name)
    sites = []
    for site in result.checkpoint_sites:
        label, index = coords[id(site.inst)]
        if not site.checkpointable:
            sites.append((label, index, _OPAQUE, ()))
        elif site.inst.opcode == "store":
            sites.append((label, index, _OWN_REF, ()))
        else:
            refs = tuple((ref.base.name, ref.index.value) for ref in site.refs)
            sites.append((label, index, _NAMED_REFS, refs))
    return {
        "status": result.status.value,
        "checkpointable": result.checkpointable,
        "sites": tuple(sites),
        "live_ins": tuple((reg.name, reg.type.value) for reg in live_ins),
    }


def materialize_result(
    module: Module, func_name: str, record: dict
) -> Tuple[IdempotenceResult, List[VirtualRegister]]:
    """Rebuild a verdict against ``module``'s own IR objects.

    The per-node RS/GA/EA tables are not part of the portable encoding
    (nothing downstream of the analyzer consumes them); a materialized
    result carries empty tables.
    """
    func = module.function(func_name)
    sites: List[CheckpointSite] = []
    for label, index, kind, refs in record["sites"]:
        inst = func.blocks[label].instructions[index]
        if kind == _OWN_REF:
            sites.append(CheckpointSite(inst, [inst.ref], True))
        elif kind == _NAMED_REFS:
            mem_refs = [
                MemRef(module.globals[name], Constant(offset))
                for name, offset in refs
            ]
            sites.append(CheckpointSite(inst, mem_refs, True))
        else:
            sites.append(CheckpointSite(inst, [], False))
    result = IdempotenceResult(
        RegionStatus(record["status"]),
        sites,
        record["checkpointable"],
        {},
        {},
        {},
    )
    live_ins = [
        VirtualRegister(name, Type(type_value))
        for name, type_value in record["live_ins"]
    ]
    return result, live_ins


class RegionAnalysis:
    """Cache-aware region analysis: verdicts + live-in checkpoints.

    Three tiers, consulted in order:

    1. the region object itself (``region.idem`` already filled);
    2. an in-compilation memo keyed by :func:`region_key` — identical
       region shapes (a base region re-materialized as a candidate, a
       re-analyzed merge product) share one live result object;
    3. the optional cross-compilation *portable store* (a dict obtained
       from :class:`repro.pipeline.manager.AnalysisCache` for this
       module fingerprint and ``(pmin, alias_mode)`` slice), hit counts
       reported through ``stats``.
    """

    def __init__(
        self,
        module: Module,
        analyzer: IdempotenceAnalyzer,
        store: Optional[dict] = None,
        stats=None,
        stats_pass: str = "idempotence",
    ) -> None:
        self.module = module
        self.analyzer = analyzer
        self.store = store
        self.stats = stats
        self.stats_pass = stats_pass
        self._liveness: Dict[str, LivenessAnalysis] = {}
        self._local: Dict[RegionKey, Tuple[IdempotenceResult, List[VirtualRegister]]] = {}
        self._coords: Dict[str, Dict[int, Tuple[str, int]]] = {}

    def _bump(self, counter: str) -> None:
        if self.stats is not None:
            self.stats.bump(self.stats_pass, counter)

    def liveness(self, func_name: str) -> LivenessAnalysis:
        if func_name not in self._liveness:
            func = self.module.function(func_name)
            self._liveness[func_name] = LivenessAnalysis(
                func, self.analyzer.cfg(func_name)
            )
        return self._liveness[func_name]

    def coords(self, func_name: str) -> Dict[int, Tuple[str, int]]:
        if func_name not in self._coords:
            self._coords[func_name] = _instruction_coords(self.module, func_name)
        return self._coords[func_name]

    def analyze(self, region: Region) -> Region:
        if region.idem is not None:
            return region
        key = region_key(region)
        memo = self._local.get(key)
        if memo is not None:
            region.idem, live_ins = memo
            region.live_in_checkpoints = list(live_ins)
            self._bump("memo_hits")
            return region
        if self.store is not None and key in self.store:
            result, live_ins = materialize_result(
                self.module, region.func, self.store[key]
            )
            self._bump("cache_hits")
        else:
            result = self.analyzer.analyze_region(
                region.func, region.blocks, region.header
            )
            live_ins = self.liveness(region.func).region_live_in_overwritten(
                region.blocks, region.header
            )
            self._bump("regions_analyzed")
            if self.store is not None:
                self.store[key] = encode_result(
                    self.module,
                    region.func,
                    result,
                    live_ins,
                    self.coords(region.func),
                )
        self._local[key] = (result, live_ins)
        region.idem = result
        region.live_in_checkpoints = list(live_ins)
        return region


class CachedRegionSelector(RegionSelector):
    """A :class:`RegionSelector` whose ``analyze`` routes through a
    shared :class:`RegionAnalysis`, so merging and selection reuse
    verdicts across passes and across a sweep's compilations."""

    def __init__(self, *args, region_analysis: RegionAnalysis, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.region_analysis = region_analysis

    def analyze(self, region: Region) -> Region:
        return self.region_analysis.analyze(region)
