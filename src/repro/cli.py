"""The ``encore`` command-line tool.

Operates on textual IR files (the format of :mod:`repro.ir.printer`),
so a downstream user can protect a program without writing Python:

* ``analyze``  — print the candidate-region table for a module;
* ``protect``  — run the full Encore pipeline and write the
  instrumented module (plus a report) out;
* ``run``      — execute a module and print its result;
* ``inject``   — run an SFI campaign against a module;
* ``fuzz``     — run a differential-fuzzing campaign (or replay one
  generated program by seed) against the whole toolchain.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.encore import EncoreConfig, compile_for_encore
from repro.frontend import compile_source
from repro.ir import module_to_text, parse_module, verify_module
from repro.opt import optimize_module
from repro.runtime import (
    CampaignInterrupted,
    CampaignJournal,
    CampaignResult,
    DetectionModel,
    ENGINES,
    JournalError,
    REPLAY_CHUNK_DEFAULT,
    SupervisorPolicy,
    campaign_metadata,
    default_journal_path,
    load_journal,
    make_interpreter,
    run_campaign,
    validate_resume,
)


def _load(path: str):
    """Load a module from textual IR (.ir) or MC source (anything else)."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".mc") or text.lstrip().startswith(("global", "extern", "int", "float", "void")):
        return compile_source(text)
    module = parse_module(text)
    verify_module(module)
    return module


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pmin", type=float, default=0.0,
                        help="pruning threshold (use --no-pruning to disable)")
    parser.add_argument("--no-pruning", action="store_true",
                        help="disable Pmin pruning entirely")
    parser.add_argument("--budget", type=float, default=0.20,
                        help="overhead budget fraction (default 0.20)")
    parser.add_argument("--alias", choices=["static", "optimistic", "profiled"],
                        default="static")
    parser.add_argument("--gamma", type=float, default=1.0)
    parser.add_argument("--eta", type=float, default=0.25)
    parser.add_argument("--guard", choices=["off", "checksum", "dup"],
                        default="off",
                        help="self-protection level for the recovery "
                             "metadata (default off)")


def _add_stats_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--time-passes", action="store_true",
                        help="print per-pass wall-time report to stderr")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass counters to stderr")


def _print_stats(stats, args) -> None:
    """Emit the requested observability reports (LLVM style: stderr)."""
    if stats is None:
        return
    if getattr(args, "time_passes", False):
        print(stats.render_timing(), file=sys.stderr)
    if getattr(args, "stats", False):
        print(stats.render_counters(), file=sys.stderr)


def _config_from(args) -> EncoreConfig:
    return EncoreConfig(
        pmin=None if args.no_pruning else args.pmin,
        overhead_budget=args.budget,
        alias_mode=args.alias,
        gamma=args.gamma,
        eta=args.eta,
        metadata_guard=getattr(args, "guard", "off"),
    )


def _int_args(tokens: List[str]) -> List[int]:
    return [int(token) for token in tokens]


def cmd_analyze(args) -> int:
    module = _load(args.module)
    report = compile_for_encore(
        module, _config_from(args), args=_int_args(args.args), instrument=False
    )
    print(f"{'region':<24} {'status':<16} {'sel':<4} {'dyn':>9} "
          f"{'act.len':>9} {'ckpts':>6} {'regs':>5}")
    for region in sorted(
        report.candidate_regions, key=lambda r: -r.dyn_instructions
    ):
        print(f"{region.func + '/' + region.header:<24} "
              f"{region.status.value:<16} "
              f"{'yes' if region.selected else 'no':<4} "
              f"{region.dyn_instructions:>9} "
              f"{region.activation_length:>9.1f} "
              f"{sum(len(s.refs) for s in region.checkpoint_sites):>6} "
              f"{len(region.live_in_checkpoints):>5}")
    print(f"\nestimated overhead: {report.estimated_overhead():.2%}")
    print(f"recoverable at Dmax=100: {report.coverage(100).recoverable:.2%}")
    _print_stats(report.stats, args)
    return 0


def cmd_protect(args) -> int:
    module = _load(args.module)
    report = compile_for_encore(
        module, _config_from(args), args=_int_args(args.args), clone=False
    )
    output = args.output or args.module.replace(".ir", "") + ".encore.ir"
    with open(output, "w") as handle:
        handle.write(module_to_text(report.module))
        handle.write("\n")
    inst = report.instrumentation
    print(f"wrote {output}")
    print(f"protected {inst.instrumented_regions} regions "
          f"({inst.checkpoint_mem_sites} memory checkpoint sites, "
          f"{inst.checkpoint_reg_sites} register checkpoints)")
    print(f"estimated overhead: {report.estimated_overhead():.2%}")
    _print_stats(report.stats, args)
    return 0


def cmd_run(args) -> int:
    module = _load(args.module)
    result = make_interpreter(
        module, engine=args.engine, max_threads=args.threads,
        quantum=args.quantum,
    ).run(
        args.function, _int_args(args.args), output_objects=args.outputs or ()
    )
    print(f"result: {result.value}")
    print(f"dynamic instructions: {result.events} "
          f"(instrumentation: {result.instrumentation_cost}, "
          f"overhead {result.overhead:.2%})")
    for name, cells in result.output.items():
        preview = ", ".join(str(c) for c in cells[:8])
        suffix = ", ..." if len(cells) > 8 else ""
        print(f"  @{name} = [{preview}{suffix}]")
    return 0


def _print_section_table(rows) -> None:
    """The ``--by-section`` breakdown, deterministic for a given seed."""
    print(f"{'section':<28} {'status':<12} {'est':<10} {'n':>9} "
          f"{'exec':>6} {'pruned':>7} {'covered':>8}")
    for row in rows:
        print(f"{row['section']:<28} {row['status']:<12} "
              f"{row['estimator']:<10} {row['n']:>9.1f} "
              f"{row['executed']:>6} {row['pruned']:>7.1%} "
              f"{row['covered']:>8.1%}")


def _plain_section_rows(module, campaign, args, detector):
    """Per-section outcome rows for a plain (non-incremental) campaign:
    re-derive the plans, attribute each trial by its primary site."""
    from repro.incremental import capture_attribution
    from repro.runtime.sfi import COVERED_OUTCOMES, plan_campaign

    profile = capture_attribution(
        module, function=args.function, args=_int_args(args.args),
        output_objects=args.outputs or (), threads=args.threads,
        quantum=args.quantum,
    )
    plans = plan_campaign(
        args.seed, len(campaign.trials), profile.events, detector,
        args.faults_per_trial, args.recovery_faults_per_trial,
        args.metadata_faults, args.cf_faults_per_trial,
    )
    tallies = {}
    for plan, trial in zip(plans, campaign.trials):
        section = profile.section_of_site(plan.sites[0])
        row = tallies.setdefault(section, {"n": 0, "covered": 0})
        row["n"] += 1
        if trial.outcome in COVERED_OUTCOMES:
            row["covered"] += 1
    return [
        {"section": section, "status": "executed", "estimator": "empirical",
         "n": float(row["n"]), "executed": row["n"], "pruned": 0.0,
         "covered": row["covered"] / row["n"]}
        for section, row in sorted(tallies.items())
    ]


def _cmd_inject_incremental(args, module, detector, policy, metadata,
                            progress) -> int:
    import os

    from repro.incremental import (
        IncrementalError,
        SectionStore,
        run_incremental_campaign,
        validate_incremental_config,
    )

    if args.resume is not None:
        print("--incremental campaigns do not resume from journals; the "
              "section store itself is the persistent state",
              file=sys.stderr)
        return 2
    try:
        validate_incremental_config(
            faults_per_trial=args.faults_per_trial,
            recovery_faults_per_trial=args.recovery_faults_per_trial,
            metadata_faults_per_trial=args.metadata_faults,
            cf_faults_per_trial=args.cf_faults_per_trial,
            metadata_guard=args.guard,
            detector_backend=args.detector,
            threads=args.threads,
            policy=policy,
        )
    except IncrementalError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    journal_path = None
    if args.journal is not None:
        journal_path = (
            default_journal_path(module.name, args.seed)
            if args.journal == "auto" else args.journal
        )
        if os.path.exists(journal_path):
            print(f"refusing to append an incremental campaign to the "
                  f"existing journal {journal_path}; incremental runs "
                  f"restart from the store, not a journal — pick a fresh "
                  f"path", file=sys.stderr)
            return 2
    journal = CampaignJournal(journal_path) if journal_path else None

    def on_start(info) -> None:
        # The incremental header key follows the journal's conditional
        # emission rule: present exactly for incremental campaigns, so
        # validate_resume's union comparison refuses any cross-mode mix.
        if journal is not None:
            journal.write_header({**metadata, "incremental": info})

    try:
        store = SectionStore.open(args.incremental)
        campaign = run_incremental_campaign(
            module, store,
            function=args.function,
            args=_int_args(args.args),
            output_objects=args.outputs or (),
            detector=detector,
            trials=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            progress=progress,
            policy=policy,
            trial_timeout=args.trial_timeout,
            on_result=journal.record if journal else None,
            on_start=on_start,
            engine=args.engine,
            min_section_trials=args.min_section_trials,
            update_store=not args.no_update_store,
        )
    except IncrementalError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except (CampaignInterrupted, KeyboardInterrupt) as exc:
        if args.progress:
            print(file=sys.stderr)
        done = getattr(exc, "done", 0)
        total = getattr(exc, "total", "?")
        print(f"# interrupted: {done}/{total} re-injection trials "
              f"completed; re-run the same command — incremental "
              f"campaigns restart from the store", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    if args.progress:
        print(file=sys.stderr)
    for outcome, fraction in campaign.summary().items():
        print(f"{outcome:<24} {fraction:.1%}")
    print(f"{'TOTAL covered':<24} {campaign.covered_fraction:.1%}")
    estimate, half = campaign.coverage_interval()
    print(f"{'coverage estimate':<24} {estimate:.1%} +/- {half:.1%} "
          f"(95% CI)")
    composed = sum(
        1 for status in campaign.section_status.values()
        if status == "composed"
    )
    print(f"{'sections':<24} {len(campaign.section_records)} "
          f"({composed} composed, {campaign.executed_trials} trials "
          f"executed)")
    if args.by_section:
        _print_section_table(campaign.section_table())
    print(f"# throughput: {campaign.throughput:.1f} trials/sec "
          f"({campaign.executed_trials} executed, {campaign.elapsed:.2f}s, "
          f"jobs={campaign.jobs})")
    print(f"# store: {args.incremental}"
          + (" (not updated)" if args.no_update_store else ""))
    if journal_path:
        print(f"# journal: {journal_path}")
    return 0


def cmd_inject(args) -> int:
    module = _load(args.module)
    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"\r{done}/{total} trials", end="", file=sys.stderr, flush=True)
    detector = DetectionModel(dmax=args.dmax)
    policy = SupervisorPolicy(
        max_attempts=args.max_attempts,
        attempt_step_budget=args.step_budget,
    )
    metadata = campaign_metadata(
        module,
        args.seed,
        detector,
        function=args.function,
        args=_int_args(args.args),
        faults_per_trial=args.faults_per_trial,
        recovery_faults_per_trial=args.recovery_faults_per_trial,
        metadata_faults_per_trial=args.metadata_faults,
        metadata_guard=args.guard,
        detector_backend=args.detector,
        replay_chunk_size=args.replay_chunk,
        cf_faults_per_trial=args.cf_faults_per_trial,
        cfe_detector=args.cfe_detector,
        threads=args.threads,
        quantum=args.quantum,
    )
    if args.incremental is not None:
        return _cmd_inject_incremental(
            args, module, detector, policy, metadata, progress
        )

    completed = None
    journal_path = None
    resuming = False
    if args.resume is not None:
        try:
            journal_meta, completed = load_journal(args.resume)
            validate_resume(journal_meta, metadata)
        except (OSError, JournalError) as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 1
        journal_path = args.resume
        resuming = True
        print(f"# resuming {len(completed)} journaled trials from "
              f"{args.resume}", file=sys.stderr)
    elif args.journal is not None:
        journal_path = (
            default_journal_path(module.name, args.seed)
            if args.journal == "auto" else args.journal
        )

    journal = CampaignJournal(journal_path) if journal_path else None
    on_result = None
    if journal is not None:
        if not resuming:
            journal.write_header(metadata)
        on_result = journal.record
    try:
        campaign = run_campaign(
            module,
            function=args.function,
            args=_int_args(args.args),
            output_objects=args.outputs or (),
            detector=detector,
            trials=args.trials,
            seed=args.seed,
            faults_per_trial=args.faults_per_trial,
            recovery_faults_per_trial=args.recovery_faults_per_trial,
            metadata_faults_per_trial=args.metadata_faults,
            metadata_guard=args.guard,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            progress=progress,
            policy=policy,
            trial_timeout=args.trial_timeout,
            completed=completed,
            on_result=on_result,
            engine=args.engine,
            detector_backend=args.detector,
            replay_chunk_size=args.replay_chunk,
            cf_faults_per_trial=args.cf_faults_per_trial,
            cfe_detector=args.cfe_detector,
            threads=args.threads,
            quantum=args.quantum,
        )
    except ValueError as exc:
        # e.g. replay backend requested for a multithreaded campaign
        print(str(exc), file=sys.stderr)
        return 2
    except CampaignInterrupted as exc:
        # Ctrl-C mid-campaign: the journal already holds every finished
        # trial (streamed via on_result), so report the partial outcome
        # mix and how to pick the campaign back up.
        if args.progress:
            print(file=sys.stderr)
        print(f"# interrupted: {exc.done}/{exc.total} trials completed",
              file=sys.stderr)
        if exc.results:
            partial = CampaignResult(
                [exc.results[i] for i in sorted(exc.results)]
            )
            for outcome, fraction in partial.summary().items():
                if fraction:
                    print(f"{outcome:<24} {fraction:.1%} (partial)")
        if journal_path:
            print(f"# resume with: inject ... --resume {journal_path}",
                  file=sys.stderr)
        else:
            print("# no journal was armed; re-run with --journal to make "
                  "interruptions resumable", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        # Ctrl-C before the campaign proper (golden run, planning).
        print("\n# interrupted before any trial completed", file=sys.stderr)
        if journal_path:
            print(f"# resume with: inject ... --resume {journal_path}",
                  file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    if args.progress:
        print(file=sys.stderr)
    for outcome, fraction in campaign.summary().items():
        print(f"{outcome:<24} {fraction:.1%}")
    print(f"{'TOTAL covered':<24} {campaign.covered_fraction:.1%}")
    if args.by_section:
        try:
            _print_section_table(
                _plain_section_rows(module, campaign, args, detector)
            )
        except Exception as exc:  # attribution needs a replayable golden
            print(f"# --by-section unavailable: {exc}", file=sys.stderr)
    if campaign.mean_wasted_work:
        print(f"mean wasted work per recovery: "
              f"{campaign.mean_wasted_work:.0f} instructions")
    if args.detector == "replay":
        # Measured (not sampled) latencies: journaled per trial, so
        # these lines are deterministic and resume-stable.
        latencies = sorted(
            t.detect_latency for t in campaign.trials
            if t.detect_latency is not None
        )
        if latencies:
            mean = sum(latencies) / len(latencies)
            print(f"replay detection latency: mean {mean:.1f}, "
                  f"max {latencies[-1]}, n={len(latencies)} "
                  f"(chunk {args.replay_chunk or REPLAY_CHUNK_DEFAULT})")
        replayed = sum(t.replay_overhead for t in campaign.trials)
        print(f"replay re-executed instructions: {replayed}")
    # Wall-clock statistics go after the deterministic outcome table
    # (and are easy to filter out when diffing campaign summaries).
    print(f"# throughput: {campaign.throughput:.1f} trials/sec "
          f"({len(campaign.trials)} trials, {campaign.elapsed:.2f}s, "
          f"jobs={campaign.jobs})")
    for worker, count in sorted(campaign.worker_trials.items()):
        print(f"# {worker}: {count} trials")
    if campaign.pool_restarts:
        print(f"# pool restarts after worker crashes: {campaign.pool_restarts}")
    if campaign.resumed_trials:
        print(f"# trials replayed from journal: {campaign.resumed_trials}")
    if journal_path:
        print(f"# journal: {journal_path}")
    return 0


def cmd_fuzz(args) -> int:
    # Deferred import: the fuzz subsystem pulls in the whole pipeline
    # and every other subcommand should not pay for it.
    from repro import fuzz

    try:
        oracle_names = tuple(args.oracles.split(","))
        settings = fuzz.FuzzSettings(
            seed=args.seed,
            profile=args.profile,
            oracles=oracle_names,
            campaign_every=args.campaign_every,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.replay is not None:
        program = fuzz.generate_program(
            args.replay, fuzz.PROFILES[args.profile]
        )
        failures = fuzz.run_oracles(
            program, fuzz.make_oracles(oracle_names)
        )
        print(f"program {program.name} "
              f"({fuzz.count_instructions(program.module)} instructions)")
        for failure in failures:
            print(f"{failure.oracle}:{failure.kind}  "
                  f"fingerprint {failure.fingerprint}")
            if failure.detail:
                print(f"  {failure.detail}")
        if not failures:
            print("all oracles passed")
        return 1 if failures else 0

    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"\r{done}/{total} programs", end="",
                  file=sys.stderr, flush=True)

    completed = None
    journal_path = args.journal
    if args.resume is not None:
        try:
            header, completed = fuzz.load_fuzz_journal(args.resume)
            fuzz.validate_fuzz_resume(header, settings)
        except (OSError, ValueError) as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 1
        journal_path = args.resume
        print(f"# resuming {len(completed)} journaled programs from "
              f"{args.resume}", file=sys.stderr)

    journal = (
        fuzz.FuzzJournal(journal_path, settings) if journal_path else None
    )
    try:
        result = fuzz.run_fuzz_campaign(
            settings,
            budget=args.budget,
            start=args.start,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            journal=journal,
            completed=completed,
            corpus_dir=args.corpus,
            reduce=not args.no_reduce,
            max_reduce_checks=args.max_reduce_checks,
            progress=progress,
        )
    finally:
        if journal is not None:
            journal.close()
    if args.progress:
        print(file=sys.stderr)
    print(result.summary())
    print(f"# throughput: "
          f"{len(result.records) / max(result.elapsed, 1e-9):.1f} "
          f"programs/sec ({result.elapsed:.2f}s, jobs={result.jobs})")
    if result.resumed:
        print(f"# programs replayed from journal: {result.resumed}")
    if journal_path:
        print(f"# journal: {journal_path}")
    return 1 if result.failures else 0


def cmd_serve(args) -> int:
    # Deferred import: only the service verbs pay for asyncio plumbing.
    import asyncio

    from repro.service import CampaignServer, ExponentialBackoff, run_server

    server = CampaignServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        journal_dir=args.journal_dir,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.max_retries,
        backoff=ExponentialBackoff(
            base=args.backoff_base, cap=args.backoff_cap
        ),
        max_active=args.max_active,
        chaos_kill_after=args.chaos_kill_after,
    )

    async def main() -> None:
        await server.start()
        server.install_signal_handlers()
        print(f"# repro serve listening on http://{server.host}:"
              f"{server.port} (workers={server.workers}, "
              f"journals under {server.journal_dir})", flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass  # signal handler already drained; double Ctrl-C lands here
    print("# repro serve: drained and stopped", file=sys.stderr)
    return 0


def _spec_from_submit_args(args) -> dict:
    module = _load(args.module)
    spec = {
        "kind": "sfi",
        "module_text": module_to_text(module) + "\n",
        "function": args.function,
        "args": _int_args(args.args),
        "output_objects": args.outputs or [],
        "trials": args.trials,
        "seed": args.seed,
        "dmax": args.dmax,
        "faults_per_trial": args.faults_per_trial,
        "recovery_faults_per_trial": args.recovery_faults_per_trial,
        "metadata_faults_per_trial": args.metadata_faults,
        "metadata_guard": args.guard,
        "detector_backend": args.detector,
        "replay_chunk_size": args.replay_chunk,
        "cf_faults_per_trial": args.cf_faults_per_trial,
        "cfe_detector": args.cfe_detector,
        "threads": args.threads,
        "quantum": args.quantum,
        "max_attempts": args.max_attempts,
        "step_budget": args.step_budget,
        "trial_timeout": args.trial_timeout,
        "engine": args.engine,
        "batch_size": args.batch_size,
    }
    return spec


def cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        spec = _spec_from_submit_args(args)
        accepted = client.submit(spec)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    campaign_id = accepted["id"]
    print(f"# campaign {campaign_id} accepted "
          f"(server journal: {accepted.get('journal')})")
    if not args.wait:
        print(f"# follow with: python -m repro status {campaign_id} "
              f"--server {client.url}")
        return 0

    last = [0]

    def poll(status: dict) -> None:
        aggregates = status.get("aggregates", {})
        done = aggregates.get("trials_done", 0)
        if args.progress and done != last[0]:
            last[0] = done
            print(f"\r{done}/{aggregates.get('trials_total', '?')} trials",
                  end="", file=sys.stderr, flush=True)

    try:
        status = client.wait(campaign_id, timeout=args.timeout, poll=poll)
    except ServiceError as exc:
        print(f"\nwait failed: {exc}", file=sys.stderr)
        return 1
    if args.progress:
        print(file=sys.stderr)
    if args.journal_out:
        try:
            data = client.fetch_journal(campaign_id, follow=False)
        except ServiceError as exc:
            print(f"journal fetch failed: {exc}", file=sys.stderr)
            return 1
        with open(args.journal_out, "wb") as handle:
            handle.write(data)
        print(f"# journal saved to {args.journal_out} "
              f"({len(data)} bytes)")
    state = status.get("state")
    aggregates = status.get("aggregates", {})
    done = aggregates.get("trials_done", 0)
    outcomes = aggregates.get("outcomes", {})
    # Zero-filled, in canonical order: line-for-line comparable with
    # the summary the one-shot ``inject`` run prints.
    from repro.runtime.sfi import OUTCOMES

    for outcome in OUTCOMES:
        print(f"{outcome:<24} {outcomes.get(outcome, 0) / max(done, 1):.1%}")
    print(f"{'TOTAL covered':<24} "
          f"{aggregates.get('covered_fraction', 0.0):.1%}")
    print(f"# state: {state}; "
          f"{done}/{aggregates.get('trials_total', '?')} trials, "
          f"{aggregates.get('throughput_trials_per_s', 0.0)} trials/sec")
    if status.get("worker_restarts"):
        print(f"# worker restarts: {status['worker_restarts']}")
    if status.get("quarantined_batches"):
        print(f"# quarantined batches: {status['quarantined_batches']} "
              f"({aggregates.get('infra_errors', 0)} trials infra_error)")
    return 0 if state == "completed" else 1


def _cmd_status_store(args) -> int:
    from repro.incremental import IncrementalError, SectionStore
    from repro.runtime.sfi import COVERED_OUTCOMES

    try:
        store = SectionStore.open(args.store)
    except (OSError, ValueError, IncrementalError) as exc:
        print(f"cannot read store: {exc}", file=sys.stderr)
        return 1
    if not store.loaded:
        print(f"no incremental store at {args.store}", file=sys.stderr)
        return 1
    campaign = store.campaign
    detector = campaign.get("detector", {})
    print(f"incremental store: {args.store}")
    print(f"campaign: function={campaign.get('function')} "
          f"seed={campaign.get('seed')} "
          f"dmax={detector.get('dmax')} kind={detector.get('kind')}")
    print(f"basis trials: {store.basis_trials}; "
          f"sections: {len(store.sections)}")
    total_n = sum(record.n for record in store.sections.values())
    covered = sum(
        sum(record.counts.get(outcome, 0.0) for outcome in COVERED_OUTCOMES)
        for record in store.sections.values()
    )
    if total_n:
        print(f"{'TOTAL covered':<24} {covered / total_n:.1%}")
    if args.by_section:
        _print_section_table([
            {"section": name, "status": "stored",
             "estimator": record.estimator, "n": record.n,
             "executed": record.executed,
             "pruned": record.pruned_fraction,
             "covered": record.covered_probability()}
            for name, record in sorted(store.sections.items())
        ])
    return 0


def cmd_status(args) -> int:
    import json as json_module

    from repro.service import ServiceClient, ServiceError

    if args.store is not None:
        return _cmd_status_store(args)
    client = ServiceClient(args.server)
    try:
        if args.id:
            payload = client.status(args.id)
        else:
            payload = {
                "health": client.health(),
                "campaigns": client.campaigns().get("campaigns", []),
            }
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    print(json_module.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_compile(args) -> int:
    from repro.pipeline import PipelineStats

    module = compile_source(open(args.source).read())
    stats = PipelineStats()
    if args.optimize:
        optimize_module(module, stats=stats)
    verify_module(module)
    _print_stats(stats, args)
    output = args.output or args.source.rsplit(".", 1)[0] + ".ir"
    with open(output, "w") as handle:
        handle.write(module_to_text(module))
        handle.write("\n")
    print(f"wrote {output} ({module.instruction_count()} instructions, "
          f"{len(module.functions)} functions)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Encore: low-cost transient fault recovery (MICRO 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile", help="compile MC source to IR")
    compile_p.add_argument("source", help="MC (.mc) source file")
    compile_p.add_argument("-o", "--output", default=None)
    compile_p.add_argument("--optimize", action="store_true",
                           help="run the optimizer pass mix")
    _add_stats_flags(compile_p)
    compile_p.set_defaults(handler=cmd_compile)

    analyze = sub.add_parser("analyze", help="print the region table")
    analyze.add_argument("module", help="textual IR file")
    analyze.add_argument("--args", nargs="*", default=[], help="main() args")
    _add_config_flags(analyze)
    _add_stats_flags(analyze)
    analyze.set_defaults(handler=cmd_analyze)

    protect = sub.add_parser("protect", help="instrument a module")
    protect.add_argument("module")
    protect.add_argument("-o", "--output", default=None)
    protect.add_argument("--args", nargs="*", default=[])
    _add_config_flags(protect)
    _add_stats_flags(protect)
    protect.set_defaults(handler=cmd_protect)

    run = sub.add_parser("run", help="execute a module")
    run.add_argument("module")
    run.add_argument("--function", default="main")
    run.add_argument("--args", nargs="*", default=[])
    run.add_argument("--outputs", nargs="*", default=[])
    run.add_argument("--engine", choices=sorted(ENGINES), default=None,
                     help="interpreter engine (default: $ENCORE_ENGINE "
                          "or 'fast'; both are bit-identical)")
    run.add_argument("--threads", type=int, default=None,
                     help="max concurrently-live threads including main "
                          "(default: unlimited; 1 makes spawn trap)")
    run.add_argument("--quantum", type=int, default=None,
                     help="cooperative scheduler time slice in dynamic "
                          "instructions (default 50)")
    run.set_defaults(handler=cmd_run)

    def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
        """The fault-model knobs shared verbatim between the one-shot
        ``inject`` run and a ``submit`` to the campaign server — the
        byte-identical-journal contract requires the two surfaces to
        accept exactly the same campaign identity."""
        parser.add_argument("--function", default="main")
        parser.add_argument("--args", nargs="*", default=[])
        parser.add_argument("--outputs", nargs="*", default=[])
        parser.add_argument("--trials", type=int, default=100)
        parser.add_argument("--dmax", type=int, default=100)
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--faults-per-trial", type=int, default=1,
                            help="transients per execution (default 1, the "
                                 "paper's single-event-upset model)")
        parser.add_argument("--detector", choices=["model", "replay"],
                            default="model",
                            help="detection source: 'model' samples "
                                 "latencies from the analytical "
                                 "DetectionModel, 'replay' measures them "
                                 "with chunked record + replay "
                                 "(default model)")
        parser.add_argument("--replay-chunk", type=int, default=None,
                            metavar="N",
                            help="replay chunk length in dynamic "
                                 "instructions (default "
                                 f"{REPLAY_CHUNK_DEFAULT}; --detector "
                                 "replay only)")
        parser.add_argument("--recovery-faults-per-trial", type=int,
                            default=0,
                            help="double-fault model: faults armed inside "
                                 "recovery windows (default 0)")
        parser.add_argument("--metadata-faults", type=int, default=0,
                            help="faults per trial striking Encore's own "
                                 "recovery metadata: checkpoint log, "
                                 "register checkpoints, recovery pointer "
                                 "(default 0)")
        parser.add_argument("--guard", choices=["off", "checksum", "dup"],
                            default="off",
                            help="metadata self-protection level: checksum "
                                 "detects corrupted rollback state, dup "
                                 "also repairs it from a shadow copy "
                                 "(default off)")
        parser.add_argument("--cf-faults-per-trial", type=int, default=0,
                            help="control-flow faults per trial: corrupted "
                                 "branch targets and wrong-way branches "
                                 "(default 0; draws append after all "
                                 "others, so plans at 0 are unchanged)")
        parser.add_argument("--cfe-detector", choices=["off", "signature"],
                            default="signature",
                            help="control-flow error detector: 'signature' "
                                 "checks every executed branch edge "
                                 "against the static CFG (default "
                                 "signature; only meaningful with "
                                 "--cf-faults-per-trial > 0)")
        parser.add_argument("--threads", type=int, default=1,
                            help="max concurrently-live threads including "
                                 "main (default 1: spawn traps, campaigns "
                                 "stay strictly single-threaded)")
        parser.add_argument("--quantum", type=int, default=None,
                            help="cooperative scheduler time slice in "
                                 "dynamic instructions (default 50; "
                                 "--threads > 1 only)")
        parser.add_argument("--max-attempts", type=int, default=3,
                            help="consecutive rollbacks into one region "
                                 "before the supervisor declares livelock "
                                 "(default 3)")
        parser.add_argument("--step-budget", type=int, default=None,
                            help="dynamic-instruction watchdog per "
                                 "recovery attempt (default: none)")
        parser.add_argument("--trial-timeout", type=float, default=None,
                            help="per-trial wall-clock limit in seconds; "
                                 "overruns classify as infra_error")
        parser.add_argument("--engine", choices=sorted(ENGINES),
                            default=None,
                            help="interpreter engine; campaigns and "
                                 "journals are bit-identical across "
                                 "engines, so a journal written under one "
                                 "engine resumes under the other")

    inject = sub.add_parser("inject", help="fault-injection campaign")
    inject.add_argument("module")
    _add_campaign_flags(inject)
    inject.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes; results are identical to "
                             "--jobs 1 for any value (default 1)")
    inject.add_argument("--chunk-size", type=int, default=None,
                        help="trials per worker task (default: auto)")
    inject.add_argument("--progress", action="store_true",
                        help="report completed-trial counts on stderr")
    inject.add_argument("--journal", nargs="?", const="auto", default=None,
                        metavar="PATH",
                        help="append per-trial results to a crash-tolerant "
                             "JSONL journal (default path under results/)")
    inject.add_argument("--resume", default=None, metavar="PATH",
                        help="resume a crashed campaign from its journal; "
                             "journaled trials are replayed verbatim")
    inject.add_argument("--incremental", default=None, metavar="STORE",
                        help="incremental campaign against a per-section "
                             "outcome store: the first run executes the "
                             "full campaign and builds STORE; later runs "
                             "re-inject only sections whose code changed "
                             "(with bit-level pruning) and compose the "
                             "rest (see docs/incremental.md)")
    inject.add_argument("--min-section-trials", type=int, default=8,
                        help="re-injection trial floor per changed "
                             "section (default 8)")
    inject.add_argument("--no-update-store", action="store_true",
                        help="compose/re-inject without writing the "
                             "updated distributions back to the store")
    inject.add_argument("--by-section", action="store_true",
                        help="print the per-section outcome breakdown "
                             "after the summary table")
    inject.set_defaults(handler=cmd_inject)

    serve = sub.add_parser(
        "serve",
        help="run the campaign server: accept campaign specs over HTTP, "
             "shard them across a supervised worker pool",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8344,
                       help="listen port (0 picks a free one; default 8344)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes per campaign (default 2)")
    serve.add_argument("--journal-dir", default="results/service",
                       help="where campaign journals are written "
                            "(default results/service)")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       help="seconds of worker silence before the "
                            "watchdog presumes it hung and kills it "
                            "(default 30)")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="re-dispatch attempts per batch before it "
                            "quarantines (default 3)")
    serve.add_argument("--backoff-base", type=float, default=0.25,
                       help="first retry delay in seconds; doubles per "
                            "attempt (default 0.25)")
    serve.add_argument("--backoff-cap", type=float, default=10.0,
                       help="retry delay ceiling in seconds (default 10)")
    serve.add_argument("--max-active", type=int, default=2,
                       help="campaigns running concurrently; the rest "
                            "queue FIFO (default 2)")
    serve.add_argument("--chaos-kill-after", type=int, default=None,
                       metavar="N",
                       help="chaos testing: SIGKILL a worker after N "
                            "streamed trials, once per campaign — the "
                            "retry path must converge to the identical "
                            "journal (CI uses this)")
    serve.set_defaults(handler=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a fault-injection campaign to a running server",
    )
    submit.add_argument("module")
    _add_campaign_flags(submit)
    submit.add_argument("--server", default="http://127.0.0.1:8344",
                        help="campaign server URL "
                             "(default http://127.0.0.1:8344)")
    submit.add_argument("--batch-size", type=int, default=None,
                        help="trials per dispatched batch "
                             "(default: auto, eight per worker)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the campaign finishes and print "
                             "its outcome summary")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait limit in seconds (default 600)")
    submit.add_argument("--progress", action="store_true",
                        help="report completed-trial counts on stderr "
                             "while waiting")
    submit.add_argument("--journal-out", default=None, metavar="PATH",
                        help="after completion, download the campaign "
                             "journal to this local path (bytes identical "
                             "to a one-shot inject --journal run)")
    submit.set_defaults(handler=cmd_submit)

    status = sub.add_parser(
        "status", help="query a running campaign server",
    )
    status.add_argument("id", nargs="?", default=None,
                        help="campaign id (omit for server overview)")
    status.add_argument("--server", default="http://127.0.0.1:8344")
    status.add_argument("--store", default=None, metavar="PATH",
                        help="inspect an incremental section store "
                             "offline instead of querying a server")
    status.add_argument("--by-section", action="store_true",
                        help="with --store: print the per-section "
                             "distribution table")
    status.set_defaults(handler=cmd_status)

    fuzz_p = sub.add_parser(
        "fuzz", help="differential-fuzzing campaign over the toolchain"
    )
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument("--budget", type=int, default=200,
                        help="number of generated programs (default 200)")
    fuzz_p.add_argument("--start", type=int, default=0,
                        help="first program index (default 0)")
    fuzz_p.add_argument("--profile", default="default",
                        choices=["default", "small", "threads"],
                        help="generator size profile (default 'default')")
    fuzz_p.add_argument("--oracles",
                        default=",".join(
                            ("semantic", "conservative", "opt",
                             "rollback", "replay", "campaign", "prune")),
                        help="comma-separated oracle list (default: all)")
    fuzz_p.add_argument("--campaign-every", type=int, default=25,
                        help="run the pool-spawning campaign-equivalence "
                             "oracle on every Nth program (default 25; "
                             "0 disables it)")
    fuzz_p.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes; journals and corpora are "
                             "identical to --jobs 1 for any value")
    fuzz_p.add_argument("--chunk-size", type=int, default=None,
                        help="programs per worker task (default: auto)")
    fuzz_p.add_argument("--journal", default=None, metavar="PATH",
                        help="append per-program results to a JSONL "
                             "journal (its SHA-256 is the campaign "
                             "fingerprint)")
    fuzz_p.add_argument("--resume", default=None, metavar="PATH",
                        help="resume a fuzz campaign from its journal")
    fuzz_p.add_argument("--corpus", default=None, metavar="DIR",
                        help="write reduced repros of unique failures "
                             "into this directory")
    fuzz_p.add_argument("--no-reduce", action="store_true",
                        help="report findings without delta-debugging "
                             "them")
    fuzz_p.add_argument("--max-reduce-checks", type=int, default=2000,
                        help="predicate-evaluation budget per reduction "
                             "(default 2000)")
    fuzz_p.add_argument("--progress", action="store_true",
                        help="report completed-program counts on stderr")
    fuzz_p.add_argument("--replay", type=int, default=None,
                        metavar="PROGRAM_SEED",
                        help="regenerate one program from its per-program "
                             "seed and run the oracles on it (exit 1 on "
                             "failure); ignores budget/journal options")
    fuzz_p.set_defaults(handler=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream reader (``| head``) closed the pipe; exit quietly
        # with the conventional 128+SIGPIPE code instead of a traceback.
        # Point stdout at devnull so the interpreter's shutdown flush of
        # the half-written buffer doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
