"""Stdlib client for the campaign server (``http.client`` only).

Used by the ``repro submit``/``repro status`` CLI verbs, by
``experiments/harness.py`` when ``ENCORE_SFI_SERVER`` routes campaigns
to a running server, and by the tests/benchmarks.  Every method opens a
fresh connection (the server closes after each response), so a client
object is cheap and stateless apart from its address.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Iterator, Optional
from urllib.parse import urlsplit


class ServiceError(RuntimeError):
    """The server rejected a request or is unreachable."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to one campaign server."""

    def __init__(self, url: str = "http://127.0.0.1:8344",
                 timeout: float = 30.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(f"unsupported scheme {split.scheme!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8344
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach campaign server at {self.url}: {exc}"
                ) from exc
            try:
                data = json.loads(raw.decode("utf-8")) if raw else {}
            except json.JSONDecodeError:
                data = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServiceError(
                    data.get("error", f"HTTP {response.status}"),
                    status=response.status,
                )
            return data
        finally:
            connection.close()

    # -- API ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a campaign spec; returns ``{"id": ..., ...}``."""
        return self._request("POST", "/campaigns", body=spec)

    def campaigns(self) -> Dict[str, Any]:
        return self._request("GET", "/campaigns")

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/campaigns/{campaign_id}/cancel")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    def wait(
        self,
        campaign_id: str,
        timeout: float = 600.0,
        poll: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Block until the campaign reaches a terminal state.

        Long-polls the server's ``/wait`` endpoint in slices so a
        ``poll`` callback (progress reporting) can observe intermediate
        status, and so a dead server surfaces as :class:`ServiceError`
        rather than a silent hang.
        """
        from repro.service.dispatch import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            slice_timeout = min(5.0, max(0.1, deadline - time.monotonic()))
            status = self._request(
                "GET",
                f"/campaigns/{campaign_id}/wait?timeout={slice_timeout}",
                timeout=slice_timeout + self.timeout,
            )
            if poll is not None:
                poll(status)
            if status.get("state") in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still "
                    f"{status.get('state')!r} after {timeout:.0f}s"
                )

    def stream_journal(
        self, campaign_id: str, follow: bool = True,
        timeout: float = 600.0,
    ) -> Iterator[bytes]:
        """Yield journal bytes (whole lines) as the server streams them."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            try:
                connection.request(
                    "GET",
                    f"/campaigns/{campaign_id}/journal"
                    f"?follow={'1' if follow else '0'}",
                )
                response = connection.getresponse()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach campaign server at {self.url}: {exc}"
                ) from exc
            if response.status >= 400:
                raise ServiceError(
                    response.read().decode("utf-8", "replace"),
                    status=response.status,
                )
            while True:
                chunk = response.read(65536)
                if not chunk:
                    return
                yield chunk
        finally:
            connection.close()

    def fetch_journal(self, campaign_id: str, follow: bool = True,
                      timeout: float = 600.0) -> bytes:
        """The whole journal as bytes (after following to completion)."""
        return b"".join(
            self.stream_journal(campaign_id, follow=follow, timeout=timeout)
        )

    def wait_until_up(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Poll ``/health`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceError as exc:
                last = exc
                time.sleep(0.05)
        raise ServiceError(
            f"campaign server at {self.url} did not come up "
            f"within {timeout:.0f}s: {last}"
        )
