"""Campaign-as-a-service: the sharded, health-monitored fault-injection
server (``repro serve``) and its client.

See ``docs/service.md`` for the API, the sharding/work-stealing model,
and the health/retry/backoff/quarantine semantics.  The load-bearing
invariant: a campaign submitted over HTTP produces a journal
byte-identical to the same one-shot ``inject`` CLI run — retries,
worker crashes, and work-stealing can reorder execution but never
change results.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.dispatch import (
    CampaignSpec,
    CampaignTask,
    CANCELLED,
    COMPLETED,
    FAILED,
    FuzzSpec,
    FuzzTask,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    SpecError,
    STARTING,
    TERMINAL_STATES,
)
from repro.service.health import (
    BatchState,
    ExponentialBackoff,
    HealthMonitor,
    WorkerHealth,
    default_batch_size,
    shard_batches,
)
from repro.service.server import (
    CampaignServer,
    DEFAULT_HOST,
    DEFAULT_PORT,
    run_server,
)

__all__ = [
    "BatchState",
    "CANCELLED",
    "COMPLETED",
    "CampaignServer",
    "CampaignSpec",
    "CampaignTask",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ExponentialBackoff",
    "FAILED",
    "FuzzSpec",
    "FuzzTask",
    "HealthMonitor",
    "INTERRUPTED",
    "QUEUED",
    "RUNNING",
    "STARTING",
    "ServiceClient",
    "ServiceError",
    "SpecError",
    "TERMINAL_STATES",
    "WorkerHealth",
    "default_batch_size",
    "run_server",
    "shard_batches",
]
