"""Sharded, supervised campaign execution for ``repro serve``.

One :class:`CampaignTask` drives one submitted campaign end to end:

* the module is parsed and its golden run replayed off the event loop
  (``asyncio.to_thread``), the trial range planned with the same
  seed-keyed substreams as every other campaign engine, and sharded
  into batches (:func:`repro.service.health.shard_batches`);
* a pool of supervised worker *processes* — initialised with the exact
  payload :func:`repro.runtime.parallel.worker_payload` builds for the
  CLI's process pool — pulls batches as it drains them
  (**work-stealing**: a straggler delays only its own batch, never an
  idle peer), executing each plan through
  :func:`repro.runtime.parallel.run_worker_plan`;
* every finished trial streams back over the worker's pipe, which
  doubles as its **heartbeat**; results feed the live aggregates and an
  in-order hold-back journal
  (:class:`repro.runtime.journal.InOrderJournal`) whose bytes are
  identical to the journal of a one-shot serial ``inject`` run — the
  invariant ``tests/test_service.py`` and the CI smoke job enforce;
* a watchdog kills workers whose heartbeat lapses, an ``add_reader``
  EOF catches workers that died outright (SIGKILL, OOM, segfault); in
  both cases the in-flight batch re-queues with bounded exponential
  backoff and the slot restarts.  A batch that fails ``max_retries``
  times quarantines — its unfinished trials record ``infra_error`` and
  the campaign *completes*, degraded but honest, instead of hanging.

Determinism: trials are pure functions of ``(seed, trial_index)``, so
retries, stealing, and restarts can reorder work but never change it —
a served campaign that converges is bit-identical to the serial CLI
run by construction, and a SIGKILLed worker costs wall-clock only.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ir import parse_module, verify_module
from repro.runtime.detection import DetectionModel
from repro.runtime.engine import ENGINES
from repro.runtime.guarded_state import GUARD_LEVELS
from repro.runtime.journal import (
    CampaignJournal,
    InOrderJournal,
    campaign_metadata,
)
from repro.runtime.memory import MachineMemory
from repro.runtime.parallel import _pool_context, worker_payload
from repro.runtime.sfi import (
    CFE_DETECTORS,
    DETECTOR_BACKENDS,
    OUTCOMES,
    CampaignResult,
    FaultPlan,
    TrialResult,
    golden_run,
    infra_error_trial,
    plan_campaign,
)
from repro.runtime.supervisor import SupervisorPolicy
from repro.service.health import (
    BATCH_DONE,
    BATCH_PENDING,
    BATCH_QUARANTINED,
    BATCH_RUNNING,
    WORKER_BUSY,
    WORKER_DEAD,
    WORKER_IDLE,
    BatchState,
    ExponentialBackoff,
    HealthMonitor,
    default_batch_size,
    shard_batches,
)

#: Campaign lifecycle states (terminal: completed/failed/cancelled/
#: interrupted).
QUEUED = "queued"
STARTING = "starting"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

TERMINAL_STATES = (COMPLETED, FAILED, CANCELLED, INTERRUPTED)


class SpecError(ValueError):
    """The submitted campaign spec is invalid."""


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A fault-injection campaign as submitted over the API.

    Mirrors the knobs of ``inject`` one for one — the service promises
    that a spec and the equivalent CLI invocation produce byte-identical
    journals, so anything that changes plans or outcomes must round-trip
    through here.  The module travels as textual IR (the printer/parser
    fixpoint keeps its fingerprint stable across the wire).
    """

    module_text: str
    function: str = "main"
    args: Tuple[int, ...] = ()
    output_objects: Tuple[str, ...] = ()
    trials: int = 100
    seed: int = 0
    dmax: int = 100
    detector_kind: str = "uniform"
    detector_coverage: float = 1.0
    faults_per_trial: int = 1
    recovery_faults_per_trial: int = 0
    metadata_faults_per_trial: int = 0
    metadata_guard: str = "off"
    detector_backend: str = "model"
    replay_chunk_size: Optional[int] = None
    cf_faults_per_trial: int = 0
    cfe_detector: str = "signature"
    threads: int = 1
    quantum: Optional[int] = None
    max_attempts: int = 3
    step_budget: Optional[int] = None
    trial_timeout: Optional[float] = None
    engine: Optional[str] = None
    #: Trials per batch (``None``: auto — eight batches per worker).
    batch_size: Optional[int] = None
    #: Journal path on the server (``None``: under the server's
    #: journal directory, named by campaign id).
    journal: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.module_text.strip():
            raise SpecError("module_text is empty")
        if self.trials < 0:
            raise SpecError("trials must be non-negative")
        if self.threads < 1:
            raise SpecError("threads must be >= 1")
        if self.detector_backend not in DETECTOR_BACKENDS:
            raise SpecError(
                f"unknown detector backend {self.detector_backend!r}"
            )
        if self.detector_backend == "replay" and self.threads > 1:
            raise SpecError(
                "the replay detection backend does not support "
                "multithreaded scheduling (threads > 1)"
            )
        if self.metadata_guard not in GUARD_LEVELS:
            raise SpecError(f"unknown metadata guard {self.metadata_guard!r}")
        if self.cfe_detector not in CFE_DETECTORS:
            raise SpecError(f"unknown CFE detector {self.cfe_detector!r}")
        if self.engine is not None and self.engine not in ENGINES:
            raise SpecError(f"unknown engine {self.engine!r}")
        if self.batch_size is not None and self.batch_size <= 0:
            raise SpecError("batch_size must be positive")

    def detector(self) -> DetectionModel:
        return DetectionModel(
            dmax=self.dmax, kind=self.detector_kind,
            coverage=self.detector_coverage,
        )

    def policy(self) -> SupervisorPolicy:
        return SupervisorPolicy(
            max_attempts=self.max_attempts,
            attempt_step_budget=self.step_budget,
        )

    def to_json(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["args"] = list(self.args)
        data["output_objects"] = list(self.output_objects)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise SpecError("campaign spec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(unknown)}")
        if "module_text" not in data:
            raise SpecError("spec is missing module_text")
        coerced = dict(data)
        coerced["args"] = tuple(data.get("args", ()))
        coerced["output_objects"] = tuple(data.get("output_objects", ()))
        try:
            return cls(**coerced)
        except TypeError as exc:
            raise SpecError(str(exc)) from None


# -- worker protocol --------------------------------------------------
#
# Parent -> child: ``(batch_id, [FaultPlan, ...])`` or ``None`` (stop).
# Child -> parent: ``("ready", pid)`` once initialised,
#                  ``("trial", batch_id, index, result_dict)`` per trial
#                  (the heartbeat), ``("batch_done", batch_id)`` per
#                  batch, ``("init_error", pid, detail)`` on setup
#                  failure.


def _service_worker_main(payload: bytes, conn) -> None:
    """Child-process entry: install campaign state, serve batches."""
    from repro.runtime.parallel import _init_worker, run_worker_plan

    # The parent owns SIGINT/SIGTERM policy; a Ctrl-C against the
    # server must not tear workers out from under the dispatcher.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        _init_worker(payload)
    except BaseException as exc:  # noqa: BLE001 — report, then die
        try:
            conn.send(("init_error", os.getpid(), repr(exc)))
        except (OSError, BrokenPipeError):
            pass
        return
    try:
        conn.send(("ready", os.getpid()))
        while True:
            message = conn.recv()
            if message is None:
                return
            batch_id, plans = message
            for plan in plans:
                result = run_worker_plan(plan)
                conn.send(
                    ("trial", batch_id, plan.trial_index,
                     dataclasses.asdict(result))
                )
            conn.send(("batch_done", batch_id))
    except (EOFError, OSError, BrokenPipeError):
        return  # parent went away; nothing to clean up


@dataclasses.dataclass
class _WorkerHandle:
    slot: int
    process: multiprocessing.process.BaseProcess
    conn: Any  # multiprocessing.connection.Connection
    reader_installed: bool = False


class CampaignTask:
    """One submitted campaign: state machine + dispatcher.

    ``run()`` is the whole lifecycle; everything else is observation
    (``status()``) or control (``cancel()``, ``drain()``).
    """

    kind = "sfi"

    def __init__(
        self,
        campaign_id: str,
        spec: CampaignSpec,
        journal_path: str,
        workers: int = 2,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 3,
        backoff: Optional[ExponentialBackoff] = None,
        poll_interval: float = 0.05,
        static_sharding: bool = False,
        max_worker_restarts: Optional[int] = None,
        chaos_kill_after: Optional[int] = None,
        batches: Optional[List[BatchState]] = None,
    ) -> None:
        self.campaign_id = campaign_id
        self.spec = spec
        self.journal_path = journal_path
        self.workers = max(1, workers)
        self.max_retries = max_retries
        self.backoff = backoff or ExponentialBackoff()
        self.poll_interval = poll_interval
        self.static_sharding = static_sharding
        self.max_worker_restarts = (
            max_worker_restarts if max_worker_restarts is not None
            else self.workers * 4
        )
        self.chaos_kill_after = chaos_kill_after
        self._preset_batches = batches

        self.state = QUEUED
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_monotonic: Optional[float] = None
        self.elapsed: float = 0.0
        self.monitor = HealthMonitor(heartbeat_timeout=heartbeat_timeout)
        self.results: Dict[int, TrialResult] = {}
        self.outcome_counts: Dict[str, int] = {o: 0 for o in OUTCOMES}
        self.batches: List[BatchState] = []
        self.quarantined_batches = 0
        self.worker_restarts = 0
        self.done_event = asyncio.Event()
        self.result: Optional[CampaignResult] = None

        self._handles: Dict[int, _WorkerHandle] = {}
        self._events: "asyncio.Queue[Tuple]" = asyncio.Queue()
        self._plans: List[FaultPlan] = []
        self._payload: Optional[bytes] = None
        self._journal: Optional[InOrderJournal] = None
        self._metadata: Optional[Dict[str, Any]] = None
        self._stop_requested: Optional[str] = None
        self._next_slot = 0
        self._chaos_armed = chaos_kill_after is not None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- observation --------------------------------------------------

    @property
    def trials_total(self) -> int:
        return self.spec.trials

    @property
    def trials_done(self) -> int:
        return len(self.results)

    def aggregates(self) -> Dict[str, Any]:
        """Live campaign statistics (the dashboard payload)."""
        done = self.trials_done
        counts = {o: n for o, n in self.outcome_counts.items() if n}
        from repro.runtime.sfi import COVERED_OUTCOMES

        covered = sum(self.outcome_counts[o] for o in COVERED_OUTCOMES)
        elapsed = self._elapsed_now()
        return {
            "trials_done": done,
            "trials_total": self.trials_total,
            "outcomes": counts,
            "covered_fraction": (covered / done) if done else 0.0,
            "infra_errors": self.outcome_counts.get("infra_error", 0),
            "throughput_trials_per_s": (
                round(done / elapsed, 2) if elapsed > 0 else 0.0
            ),
            "elapsed_s": round(elapsed, 3),
        }

    def _elapsed_now(self) -> float:
        if self.started_monotonic is None:
            return 0.0
        if self.state in TERMINAL_STATES:
            return self.elapsed
        return time.monotonic() - self.started_monotonic

    def status(self) -> Dict[str, Any]:
        batch_states: Dict[str, int] = {}
        for batch in self.batches:
            batch_states[batch.status] = batch_states.get(batch.status, 0) + 1
        return {
            "id": self.campaign_id,
            "kind": self.kind,
            "state": self.state,
            "error": self.error,
            "journal": self.journal_path,
            "aggregates": self.aggregates(),
            "batches": batch_states,
            "quarantined_batches": self.quarantined_batches,
            "worker_restarts": self.worker_restarts,
            "workers": self.monitor.snapshot(),
        }

    # -- control ------------------------------------------------------

    def cancel(self) -> None:
        self._request_stop(CANCELLED)

    def drain(self) -> None:
        """Graceful-shutdown path: stop now, keep everything finished."""
        self._request_stop(INTERRUPTED)

    def _request_stop(self, state: str) -> None:
        if self.state in TERMINAL_STATES:
            return
        self._stop_requested = state
        # Wake the dispatcher loop immediately.
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self._events.put_nowait, ("stop",)
                )
            except RuntimeError:
                pass

    # -- the lifecycle ------------------------------------------------

    async def run(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self._run()
        except Exception as exc:  # noqa: BLE001 — campaign, not server
            self.state = FAILED
            self.error = f"{type(exc).__name__}: {exc}"
            self._teardown_workers()
            self._finalize_journal(flush_out_of_order=True)
        finally:
            if self.state not in TERMINAL_STATES:
                self.state = FAILED
                self.error = self.error or "dispatcher exited unexpectedly"
            self.elapsed = self._elapsed_now() if self.started_monotonic else 0.0
            self.done_event.set()

    async def _run(self) -> None:
        spec = self.spec
        self.state = STARTING
        self.started_monotonic = time.monotonic()

        # Parse + golden + planning are CPU work: off the event loop.
        module, golden_events = await asyncio.to_thread(self._prepare)
        detector = spec.detector()
        self._plans = plan_campaign(
            spec.seed, spec.trials, golden_events, detector,
            spec.faults_per_trial, spec.recovery_faults_per_trial,
            spec.metadata_faults_per_trial, spec.cf_faults_per_trial,
        )
        self._metadata = campaign_metadata(
            module, spec.seed, detector,
            function=spec.function, args=list(spec.args),
            faults_per_trial=spec.faults_per_trial,
            recovery_faults_per_trial=spec.recovery_faults_per_trial,
            metadata_faults_per_trial=spec.metadata_faults_per_trial,
            metadata_guard=spec.metadata_guard,
            detector_backend=spec.detector_backend,
            replay_chunk_size=spec.replay_chunk_size,
            cf_faults_per_trial=spec.cf_faults_per_trial,
            cfe_detector=spec.cfe_detector,
            threads=spec.threads,
            quantum=spec.quantum,
        )
        # Every submission is a fresh campaign: truncate any stale
        # journal at this path (CampaignJournal appends by design, and
        # appending onto an older campaign's records would break the
        # byte-identity contract).  Resuming a drained journal is the
        # CLI's job (`inject --resume`).
        if os.path.exists(self.journal_path):
            os.remove(self.journal_path)
        journal = CampaignJournal(self.journal_path)
        journal.write_header(self._metadata)
        self._journal = InOrderJournal(journal)

        if self._preset_batches is not None:
            self.batches = self._preset_batches
        else:
            size = spec.batch_size or default_batch_size(
                spec.trials, self.workers
            )
            self.batches = shard_batches(
                list(range(spec.trials)), size, workers=self.workers,
                static=self.static_sharding,
            )

        self._payload = worker_payload(
            module,
            function=spec.function,
            args=spec.args,
            output_objects=spec.output_objects,
            externals=None,
            policy=spec.policy(),
            trial_timeout=spec.trial_timeout,
            metadata_guard=spec.metadata_guard,
            engine=spec.engine,
            detector_backend=spec.detector_backend,
            replay_chunk_size=spec.replay_chunk_size,
            cfe_detector=spec.cfe_detector,
            threads=spec.threads,
            quantum=spec.quantum,
        )

        pool_size = min(self.workers, max(1, len(self.batches)))
        for _ in range(pool_size):
            self._spawn_worker()

        self.state = RUNNING
        await self._dispatch_loop()

        requested = self._stop_requested
        self._teardown_workers()
        if requested is not None:
            self.state = requested
            self._finalize_journal(flush_out_of_order=True)
            return
        self._finalize_journal(flush_out_of_order=False)
        self.elapsed = time.monotonic() - self.started_monotonic
        worker_trials = {
            f"worker-{slot}": health.trials_done
            for slot, health in sorted(self.monitor.workers.items())
        }
        self.result = CampaignResult(
            [self.results[i] for i in range(self.spec.trials)],
            elapsed=self.elapsed,
            jobs=self.workers,
            worker_trials=worker_trials,
            pool_restarts=self.worker_restarts,
        )
        self.state = COMPLETED

    def _prepare(self) -> Tuple[Any, int]:
        module = parse_module(self.spec.module_text)
        verify_module(module)
        memory_image = MachineMemory.pristine(module)
        golden = golden_run(
            module, self.spec.function, self.spec.args,
            self.spec.output_objects, externals=None,
            engine=self.spec.engine, memory_image=memory_image,
            threads=self.spec.threads, quantum=self.spec.quantum,
        )
        return module, golden.events

    # -- workers ------------------------------------------------------

    def _spawn_worker(self) -> int:
        slot = self._next_slot
        self._next_slot += 1
        return self._start_process(slot)

    def _start_process(self, slot: int) -> int:
        context = _pool_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_service_worker_main,
            args=(self._payload, child_conn),
            daemon=True,
            name=f"repro-serve-{self.campaign_id}-w{slot}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(slot=slot, process=process, conn=parent_conn)
        self._handles[slot] = handle
        self.monitor.track(slot, process.pid)
        loop = asyncio.get_running_loop()
        loop.add_reader(parent_conn.fileno(), self._on_readable, slot)
        handle.reader_installed = True
        return slot

    def _remove_reader(self, handle: _WorkerHandle) -> None:
        if handle.reader_installed and self._loop is not None:
            try:
                self._loop.remove_reader(handle.conn.fileno())
            except (OSError, ValueError):
                pass
            handle.reader_installed = False

    def _on_readable(self, slot: int) -> None:
        """add_reader callback: drain every pending worker message."""
        handle = self._handles.get(slot)
        if handle is None:
            return
        try:
            while handle.conn.poll():
                message = handle.conn.recv()
                self._events.put_nowait(("msg", slot, message))
        except (EOFError, OSError):
            self._remove_reader(handle)
            self._events.put_nowait(("dead", slot))

    def _kill_worker(self, slot: int) -> None:
        # The reader stays installed: the SIGKILL closes the worker's
        # end of the pipe, the resulting EOF fires ``_on_readable``, and
        # the normal death path re-queues the batch.
        handle = self._handles.get(slot)
        if handle is None:
            return
        try:
            handle.process.kill()
        except (OSError, AttributeError):
            pass

    def _teardown_workers(self) -> None:
        for slot, handle in list(self._handles.items()):
            self._remove_reader(handle)
            try:
                handle.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
            try:
                handle.conn.close()
            except OSError:
                pass
        deadline = time.monotonic() + 2.0
        for handle in self._handles.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                try:
                    handle.process.kill()
                except OSError:
                    pass
                handle.process.join(1.0)
        self._handles.clear()
        for health in self.monitor.workers.values():
            if health.state != WORKER_DEAD:
                health.state = WORKER_DEAD

    # -- the dispatch loop -------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if self._stop_requested is not None:
                return
            if all(
                b.status in (BATCH_DONE, BATCH_QUARANTINED)
                for b in self.batches
            ):
                return
            self._assign_batches()
            try:
                event = await asyncio.wait_for(
                    self._events.get(), timeout=self.poll_interval
                )
            except asyncio.TimeoutError:
                self._check_watchdog()
                continue
            self._handle_event(event)
            # Drain whatever queued behind it without extra sleeps.
            while not self._events.empty():
                self._handle_event(self._events.get_nowait())
            self._check_watchdog()

    def _handle_event(self, event: Tuple) -> None:
        kind = event[0]
        if kind == "stop":
            return
        if kind == "dead":
            self._handle_worker_death(event[1])
            return
        slot, message = event[1], event[2]
        tag = message[0]
        health = self.monitor.workers.get(slot)
        if tag == "ready":
            self.monitor.beat(slot)
            if health is not None:
                health.state = WORKER_IDLE
        elif tag == "init_error":
            self.monitor.beat(slot)
            self._handle_worker_death(slot, detail=message[2])
        elif tag == "trial":
            _, batch_id, index, result_data = message
            self.monitor.beat(slot)
            if health is not None:
                health.trials_done += 1
            self._record(index, TrialResult(**result_data))
            self._maybe_chaos_kill(slot)
        elif tag == "batch_done":
            batch_id = message[1]
            self.monitor.beat(slot)
            batch = self.batches[batch_id]
            if batch.status == BATCH_RUNNING and batch.worker == slot:
                batch.status = BATCH_DONE
                batch.worker = None
            if health is not None:
                health.state = WORKER_IDLE
                health.batches_done += 1
                health.current_batch = None

    def _record(self, index: int, trial: TrialResult) -> None:
        if index in self.results:
            return  # duplicate from a retried batch: first wins
        self.results[index] = trial
        self.outcome_counts[trial.outcome] = (
            self.outcome_counts.get(trial.outcome, 0) + 1
        )
        if self._journal is not None:
            self._journal.record(index, trial)

    def _maybe_chaos_kill(self, slot: int) -> None:
        """Self-inflicted fault injection for the service itself: after
        ``chaos_kill_after`` streamed trials, SIGKILL the active worker
        once.  The campaign must converge to the same journal anyway —
        the CI smoke job runs exactly this experiment."""
        if not self._chaos_armed or self.chaos_kill_after is None:
            return
        if self.trials_done >= self.chaos_kill_after:
            self._chaos_armed = False
            self._kill_worker(slot)

    def _handle_worker_death(self, slot: int,
                             detail: Optional[str] = None) -> None:
        handle = self._handles.pop(slot, None)
        if handle is None:
            return
        self._remove_reader(handle)
        try:
            handle.conn.close()
        except OSError:
            pass
        try:
            handle.process.join(0.1)
        except (OSError, AssertionError):
            pass
        health = self.monitor.workers.get(slot)
        batch_id = health.current_batch if health is not None else None
        if health is not None:
            health.state = WORKER_DEAD
            health.current_batch = None
        if batch_id is not None:
            self._requeue_batch(self.batches[batch_id])
        if self._stop_requested is not None:
            return
        outstanding = any(
            b.status in (BATCH_PENDING, BATCH_RUNNING) for b in self.batches
        )
        if not outstanding:
            return
        if self.worker_restarts < self.max_worker_restarts:
            self.worker_restarts += 1
            replacement = self.monitor.workers.get(slot)
            if replacement is not None:
                replacement.restarts += 1
            self._start_process(slot)
        elif not self._handles:
            # Graceful degradation, last resort: no workers left and no
            # restart budget — quarantine everything still open so the
            # campaign completes with an honest infra_error tail
            # instead of hanging.
            for batch in self.batches:
                if batch.status in (BATCH_PENDING, BATCH_RUNNING):
                    self._quarantine(batch)

    def _requeue_batch(self, batch: BatchState) -> None:
        if batch.status != BATCH_RUNNING:
            return
        batch.worker = None
        batch.attempts += 1
        if batch.attempts > self.max_retries:
            self._quarantine(batch)
            return
        batch.status = BATCH_PENDING
        batch.not_before = (
            time.monotonic() + self.backoff.delay(batch.attempts)
        )

    def _quarantine(self, batch: BatchState) -> None:
        batch.status = BATCH_QUARANTINED
        batch.worker = None
        self.quarantined_batches += 1
        for index in batch.indices:
            if index not in self.results:
                self._record(index, infra_error_trial())

    def _assign_batches(self) -> None:
        now = time.monotonic()
        idle = [
            slot for slot, health in sorted(self.monitor.workers.items())
            if health.state == WORKER_IDLE and slot in self._handles
        ]
        if not idle:
            return
        for batch in self.batches:
            if not idle:
                break
            if batch.status != BATCH_PENDING or batch.not_before > now:
                continue
            if batch.assigned_slot is not None:
                # Static sharding: only the pinned slot may take it
                # (unless that slot is gone for good — then anyone).
                slot = batch.assigned_slot
                if slot in idle:
                    idle.remove(slot)
                elif (
                    slot in self._handles
                    or self.worker_restarts < self.max_worker_restarts
                ):
                    continue
                else:
                    slot = idle.pop(0)
            else:
                slot = idle.pop(0)
            self._send_batch(slot, batch)

    def _send_batch(self, slot: int, batch: BatchState) -> None:
        handle = self._handles.get(slot)
        if handle is None:
            return
        plans = [self._plans[index] for index in batch.indices]
        try:
            handle.conn.send((batch.batch_id, plans))
        except (OSError, BrokenPipeError):
            self._events.put_nowait(("dead", slot))
            return
        batch.status = BATCH_RUNNING
        batch.worker = slot
        health = self.monitor.workers.get(slot)
        if health is not None:
            health.state = WORKER_BUSY
            health.current_batch = batch.batch_id
            self.monitor.beat(slot)

    def _check_watchdog(self) -> None:
        for slot in self.monitor.overdue():
            # Hung (or wedged-at-startup) worker: put it down; the EOF
            # on its pipe funnels into the normal death path, which
            # re-queues its batch and restarts the slot.
            self._kill_worker(slot)

    def _finalize_journal(self, flush_out_of_order: bool) -> None:
        if self._journal is None:
            return
        if flush_out_of_order:
            self._journal.flush_out_of_order()
        self._journal.close()
        self._journal = None


class FuzzSpecError(SpecError):
    pass


@dataclasses.dataclass(frozen=True)
class FuzzSpec:
    """A differential-fuzzing campaign as submitted over the API."""

    seed: int = 0
    budget: int = 100
    start: int = 0
    profile: str = "default"
    oracles: Optional[Tuple[str, ...]] = None
    campaign_every: int = 25
    jobs: int = 1
    journal: Optional[str] = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise FuzzSpecError("budget must be non-negative")
        if self.jobs < 1:
            raise FuzzSpecError("jobs must be >= 1")

    def to_json(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.oracles is not None:
            data["oracles"] = list(self.oracles)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FuzzSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known - {"kind"})
        if unknown:
            raise FuzzSpecError(
                f"unknown fuzz spec field(s): {', '.join(unknown)}"
            )
        coerced = {k: v for k, v in data.items() if k in known}
        if coerced.get("oracles") is not None:
            coerced["oracles"] = tuple(coerced["oracles"])
        try:
            return cls(**coerced)
        except TypeError as exc:
            raise FuzzSpecError(str(exc)) from None


class FuzzTask:
    """A served fuzz campaign.

    Fuzzing already has its own journaled, resumable pool engine
    (:mod:`repro.fuzz.campaign`); the service runs it off the event
    loop as one supervised unit rather than re-sharding programs
    through the batch dispatcher, and surfaces the same status shape
    as SFI campaigns (state, progress, journal path).
    """

    kind = "fuzz"

    def __init__(self, campaign_id: str, spec: FuzzSpec,
                 journal_path: str) -> None:
        self.campaign_id = campaign_id
        self.spec = spec
        self.journal_path = journal_path
        self.state = QUEUED
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_monotonic: Optional[float] = None
        self.elapsed = 0.0
        self.done_event = asyncio.Event()
        self.programs_done = 0
        self.failures = 0
        self.unique_failures = 0
        self.fingerprint: Optional[str] = None

    def cancel(self) -> None:
        # The fuzz pool engine has no mid-flight cancellation hook; a
        # cancel request before start is honoured, afterwards the
        # campaign runs to completion (it is budget-bounded).
        if self.state == QUEUED:
            self.state = CANCELLED
            self.done_event.set()

    def drain(self) -> None:
        self.cancel()

    @property
    def trials_done(self) -> int:
        return self.programs_done

    @property
    def trials_total(self) -> int:
        return self.spec.budget

    def status(self) -> Dict[str, Any]:
        elapsed = self.elapsed
        if self.started_monotonic is not None and self.state == RUNNING:
            elapsed = time.monotonic() - self.started_monotonic
        return {
            "id": self.campaign_id,
            "kind": self.kind,
            "state": self.state,
            "error": self.error,
            "journal": self.journal_path,
            "aggregates": {
                "programs_done": self.programs_done,
                "programs_total": self.spec.budget,
                "failures": self.failures,
                "unique_failures": self.unique_failures,
                "fingerprint": self.fingerprint,
                "elapsed_s": round(elapsed, 3),
            },
        }

    async def run(self) -> None:
        if self.state == CANCELLED:
            return
        from repro import fuzz

        self.state = RUNNING
        self.started_monotonic = time.monotonic()
        try:
            settings = fuzz.FuzzSettings(
                seed=self.spec.seed,
                profile=self.spec.profile,
                oracles=self.spec.oracles or fuzz.DEFAULT_ORACLES,
                campaign_every=self.spec.campaign_every,
            )

            def progress(done: int, _total: int) -> None:
                self.programs_done = done

            def execute():
                journal = fuzz.FuzzJournal(self.journal_path, settings)
                try:
                    return fuzz.run_fuzz_campaign(
                        settings,
                        budget=self.spec.budget,
                        start=self.spec.start,
                        jobs=self.spec.jobs,
                        journal=journal,
                        reduce=False,
                        progress=progress,
                    )
                finally:
                    journal.close()

            result = await asyncio.to_thread(execute)
            self.programs_done = len(result.records)
            self.failures = len(result.failures)
            self.unique_failures = len(result.unique_failures)
            self.fingerprint = result.fingerprint()
            self.state = COMPLETED
        except Exception as exc:  # noqa: BLE001 — campaign, not server
            self.state = FAILED
            self.error = f"{type(exc).__name__}: {exc}"
        finally:
            self.elapsed = time.monotonic() - self.started_monotonic
            self.done_event.set()
