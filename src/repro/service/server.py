"""``repro serve``: the always-on campaign server.

A deliberately small HTTP/1.1 + JSON API over ``asyncio.start_server``
(stdlib only — no web framework), in front of the sharded dispatcher
in :mod:`repro.service.dispatch`:

====================================  =================================
``GET  /health``                      server + per-worker health
``GET  /campaigns``                   campaign list (id, state, progress)
``POST /campaigns``                   submit a spec; returns its id
``GET  /campaigns/<id>``              full status: aggregates, batches,
                                      worker health, quarantine counts
``GET  /campaigns/<id>/journal``      the campaign journal, streamed as
                                      chunked NDJSON; ``?follow=1``
                                      keeps streaming records live
                                      until the campaign ends
``GET  /campaigns/<id>/wait``         long-poll until terminal state
``POST /campaigns/<id>/cancel``       stop a campaign
``POST /shutdown``                    graceful drain + exit
====================================  =================================

Submission admits at most ``max_active`` campaigns at once (each owns
its own supervised worker pool); the rest queue FIFO.  ``SIGTERM`` and
``SIGINT`` trigger the same graceful drain as ``POST /shutdown``:
in-flight campaigns stop, their journals flush (including out-of-order
holdbacks, so finished work survives), and every campaign on disk
remains resumable with ``inject --resume``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.service.dispatch import (
    CampaignSpec,
    CampaignTask,
    FuzzSpec,
    FuzzTask,
    QUEUED,
    SpecError,
    TERMINAL_STATES,
    ExponentialBackoff,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8344
DEFAULT_JOURNAL_DIR = os.path.join("results", "service")

#: Cap on request bodies (module text dominates; 8 MiB is generous).
MAX_BODY_BYTES = 8 * 1024 * 1024


class CampaignServer:
    """The service: admission queue, campaign registry, HTTP front."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: int = 2,
        journal_dir: str = DEFAULT_JOURNAL_DIR,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 3,
        backoff: Optional[ExponentialBackoff] = None,
        max_active: int = 2,
        chaos_kill_after: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.journal_dir = journal_dir
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.backoff = backoff or ExponentialBackoff()
        self.max_active = max(1, max_active)
        self.chaos_kill_after = chaos_kill_after

        self.campaigns: Dict[str, Union[CampaignTask, FuzzTask]] = {}
        self._counter = 0
        self._active: Dict[str, asyncio.Task] = {}
        self._admit = asyncio.Event()
        self._draining = False
        self._started_at = time.time()
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._shutdown_event = asyncio.Event()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        os.makedirs(self.journal_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler = asyncio.create_task(self._schedule_loop())

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda s=signum: asyncio.ensure_future(
                        self.shutdown(reason=signal.Signals(s).name)
                    )
                )
            except (NotImplementedError, RuntimeError):
                pass

    async def serve_until_shutdown(self) -> None:
        await self._shutdown_event.wait()

    async def shutdown(self, reason: str = "requested") -> None:
        """Graceful drain: stop dispatch, flush journals, exit."""
        if self._draining:
            return
        self._draining = True
        for campaign in self.campaigns.values():
            if campaign.state not in TERMINAL_STATES:
                campaign.drain()
        if self._scheduler is not None:
            self._admit.set()
        # Wait (bounded) for active campaigns to acknowledge the drain:
        # their dispatchers tear workers down and flush journals.
        if self._active:
            await asyncio.wait(
                list(self._active.values()), timeout=10.0
            )
        if self._scheduler is not None:
            self._scheduler.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._shutdown_event.set()

    async def _schedule_loop(self) -> None:
        """FIFO admission: start queued campaigns while slots allow."""
        while True:
            self._active = {
                cid: task for cid, task in self._active.items()
                if not task.done()
            }
            if not self._draining:
                for cid, campaign in self.campaigns.items():
                    if len(self._active) >= self.max_active:
                        break
                    if campaign.state == QUEUED and cid not in self._active:
                        self._active[cid] = asyncio.create_task(
                            campaign.run(), name=f"campaign-{cid}"
                        )
            self._admit.clear()
            try:
                await asyncio.wait_for(self._admit.wait(), timeout=0.2)
            except asyncio.TimeoutError:
                pass

    # -- submission ---------------------------------------------------

    def submit(self, body: Dict[str, Any]) -> Union[CampaignTask, FuzzTask]:
        if self._draining:
            raise SpecError("server is draining; not accepting campaigns")
        kind = body.get("kind", "sfi")
        # Skip ids whose default journal file already exists (left by a
        # previous server run in the same journal_dir) — appending a
        # fresh campaign onto an old journal would break byte-identity.
        while True:
            self._counter += 1
            campaign_id = f"c{self._counter:04d}"
            taken = (
                os.path.exists(
                    os.path.join(self.journal_dir, f"{campaign_id}.jsonl"))
                or os.path.exists(
                    os.path.join(self.journal_dir,
                                 f"{campaign_id}_fuzz.jsonl"))
            )
            if not taken:
                break
        if kind == "fuzz":
            spec = FuzzSpec.from_json(body)
            journal_path = spec.journal or os.path.join(
                self.journal_dir, f"{campaign_id}_fuzz.jsonl"
            )
            campaign: Union[CampaignTask, FuzzTask] = FuzzTask(
                campaign_id, spec, journal_path
            )
        elif kind == "sfi":
            spec_data = {k: v for k, v in body.items() if k != "kind"}
            spec = CampaignSpec.from_json(spec_data)
            journal_path = spec.journal or os.path.join(
                self.journal_dir, f"{campaign_id}.jsonl"
            )
            campaign = CampaignTask(
                campaign_id,
                spec,
                journal_path,
                workers=self.workers,
                heartbeat_timeout=self.heartbeat_timeout,
                max_retries=self.max_retries,
                backoff=self.backoff,
                chaos_kill_after=self.chaos_kill_after,
            )
        else:
            raise SpecError(f"unknown campaign kind {kind!r}")
        self.campaigns[campaign_id] = campaign
        self._admit.set()
        return campaign

    def health(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for campaign in self.campaigns.values():
            states[campaign.state] = states.get(campaign.state, 0) + 1
        active_workers = []
        for cid, campaign in self.campaigns.items():
            if isinstance(campaign, CampaignTask) and (
                campaign.state not in TERMINAL_STATES
            ):
                for worker in campaign.monitor.snapshot():
                    worker = dict(worker)
                    worker["campaign"] = cid
                    active_workers.append(worker)
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.time() - self._started_at, 1),
            "campaigns": states,
            "active": sorted(self._active),
            "workers": active_workers,
        }

    # -- HTTP ---------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(writer, method, path, query, body)
        except ConnectionError:
            pass
        except Exception as exc:  # noqa: BLE001 — one bad request
            try:
                await self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], Optional[Dict]]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body too large ({length} bytes)")
        body: Optional[Dict] = None
        if length:
            raw = await reader.readexactly(length)
            body = json.loads(raw.decode("utf-8"))
        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        return method.upper(), split.path, query, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[Dict],
    ) -> None:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["health"]:
            await self._respond(writer, 200, self.health())
            return
        if parts and parts[0] == "campaigns":
            if method == "POST" and len(parts) == 1:
                try:
                    campaign = self.submit(body or {})
                except SpecError as exc:
                    await self._respond(writer, 400, {"error": str(exc)})
                    return
                await self._respond(writer, 202, {
                    "id": campaign.campaign_id,
                    "kind": campaign.kind,
                    "state": campaign.state,
                    "journal": campaign.journal_path,
                })
                return
            if method == "GET" and len(parts) == 1:
                await self._respond(writer, 200, {
                    "campaigns": [
                        {
                            "id": c.campaign_id,
                            "kind": c.kind,
                            "state": c.state,
                            "trials_done": c.trials_done,
                            "trials_total": c.trials_total,
                        }
                        for c in self.campaigns.values()
                    ]
                })
                return
            if len(parts) >= 2:
                campaign = self.campaigns.get(parts[1])
                if campaign is None:
                    await self._respond(
                        writer, 404, {"error": f"no campaign {parts[1]!r}"}
                    )
                    return
                if method == "GET" and len(parts) == 2:
                    await self._respond(writer, 200, campaign.status())
                    return
                if method == "GET" and parts[2:] == ["wait"]:
                    timeout = float(query.get("timeout", "600"))
                    try:
                        await asyncio.wait_for(
                            campaign.done_event.wait(), timeout
                        )
                    except asyncio.TimeoutError:
                        pass
                    await self._respond(writer, 200, campaign.status())
                    return
                if method == "GET" and parts[2:] == ["journal"]:
                    await self._stream_journal(writer, campaign, query)
                    return
                if method == "POST" and parts[2:] == ["cancel"]:
                    campaign.cancel()
                    await self._respond(writer, 200, campaign.status())
                    return
        if method == "POST" and parts == ["shutdown"]:
            await self._respond(writer, 200, {"status": "draining"})
            asyncio.ensure_future(self.shutdown(reason="http"))
            return
        await self._respond(
            writer, 404, {"error": f"no route {method} {path}"}
        )

    async def _stream_journal(
        self,
        writer: asyncio.StreamWriter,
        campaign: Union[CampaignTask, FuzzTask],
        query: Dict[str, str],
    ) -> None:
        """Chunked NDJSON: journal bytes as written, optionally live.

        ``follow=1`` (default) keeps tailing the file until the
        campaign reaches a terminal state, so a client that connects at
        submission time sees every record the moment the hold-back
        journal releases it; ``follow=0`` dumps the current contents
        and closes.  The bytes are forwarded verbatim — what the client
        saves is exactly what ``inject --journal`` would have written.
        """
        follow = query.get("follow", "1") not in ("0", "false", "no")
        path = campaign.journal_path
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def send(data: bytes) -> None:
            if data:
                writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
                await writer.drain()

        offset = 0
        while True:
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
                if data:
                    # Hold back a torn tail: only forward whole lines so
                    # the client never sees a partially-flushed record.
                    cut = data.rfind(b"\n") + 1
                    if cut:
                        await send(data[:cut])
                        offset += cut
            if not follow or campaign.state in TERMINAL_STATES:
                # One final drain after the terminal state: the journal
                # is closed before the state flips, so this pass sees
                # the complete file.
                if os.path.exists(path):
                    with open(path, "rb") as handle:
                        handle.seek(offset)
                        data = handle.read()
                    cut = data.rfind(b"\n") + 1
                    if cut:
                        await send(data[:cut])
                        offset += cut
                break
            try:
                await asyncio.wait_for(campaign.done_event.wait(), 0.1)
            except asyncio.TimeoutError:
                pass
        writer.write(b"0\r\n\r\n")
        await writer.drain()


async def run_server(server: CampaignServer) -> None:
    """Start ``server``, wire signals, and block until it drains."""
    await server.start()
    server.install_signal_handlers()
    await server.serve_until_shutdown()
