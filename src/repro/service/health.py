"""Health accounting for the campaign service: worker heartbeats,
batch lifecycle, and the retry/backoff policy.

The dispatcher (:mod:`repro.service.dispatch`) is event-driven; this
module is the bookkeeping it consults.  Everything here is plain state
— no I/O, no processes — so the watchdog semantics (when is a worker
*hung*? when does a batch *quarantine*?) are unit-testable with a fake
clock, independent of the asyncio machinery that acts on them.

Lifecycle invariants:

* a **worker** is ``starting`` until its golden-run replay completes,
  then alternates ``idle``/``busy``; death (crash, SIGKILL, or a
  watchdog kill after a heartbeat lapse) makes it ``dead`` until the
  dispatcher restarts the slot, which increments ``restarts``;
* every trial result a worker streams back is a **heartbeat**; a busy
  worker silent for longer than ``heartbeat_timeout`` is presumed hung
  and killed — its batch is re-queued, not lost;
* a **batch** retries with exponential backoff up to ``max_retries``
  times, then quarantines: its unfinished trials are recorded as
  ``infra_error`` so the campaign completes with an honest coverage
  denominator instead of hanging forever on poisoned work.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

# -- worker states ----------------------------------------------------

WORKER_STARTING = "starting"
WORKER_IDLE = "idle"
WORKER_BUSY = "busy"
WORKER_DEAD = "dead"

# -- batch states -----------------------------------------------------

BATCH_PENDING = "pending"
BATCH_RUNNING = "running"
BATCH_DONE = "done"
BATCH_QUARANTINED = "quarantined"


@dataclasses.dataclass(frozen=True)
class ExponentialBackoff:
    """Deterministic bounded exponential backoff for batch retries.

    ``delay(attempt)`` for attempts 1, 2, 3, ... is ``base``,
    ``base*factor``, ``base*factor**2``, ... capped at ``cap`` seconds.
    Deterministic (no jitter) on purpose: a single supervisor re-queues
    batches, so there is no thundering herd to spread, and tests can
    assert exact schedules.
    """

    base: float = 0.25
    factor: float = 2.0
    cap: float = 10.0

    def delay(self, attempt: int) -> float:
        if attempt <= 0:
            return 0.0
        return min(self.cap, self.base * self.factor ** (attempt - 1))


@dataclasses.dataclass
class BatchState:
    """One shard of a campaign's trial range, through its lifecycle."""

    batch_id: int
    indices: Tuple[int, ...]
    status: str = BATCH_PENDING
    attempts: int = 0
    #: Worker slot currently running this batch (``status == running``).
    worker: Optional[int] = None
    #: Monotonic time before which a backed-off batch must not rerun.
    not_before: float = 0.0
    #: Slot the batch is pinned to under static sharding (``None`` =
    #: work-stealing: any idle worker may claim it).
    assigned_slot: Optional[int] = None

    def snapshot(self) -> Dict:
        return {
            "batch": self.batch_id,
            "trials": len(self.indices),
            "status": self.status,
            "attempts": self.attempts,
            "worker": self.worker,
        }


@dataclasses.dataclass
class WorkerHealth:
    """Observable state of one worker slot."""

    slot: int
    pid: Optional[int] = None
    state: str = WORKER_STARTING
    last_heartbeat: float = 0.0
    trials_done: int = 0
    batches_done: int = 0
    #: Processes that have died in this slot (each one restarted,
    #: until the dispatcher's restart budget runs out).
    restarts: int = 0
    current_batch: Optional[int] = None

    def snapshot(self, now: Optional[float] = None) -> Dict:
        now = time.monotonic() if now is None else now
        return {
            "slot": self.slot,
            "pid": self.pid,
            "state": self.state,
            "trials_done": self.trials_done,
            "batches_done": self.batches_done,
            "restarts": self.restarts,
            "current_batch": self.current_batch,
            "heartbeat_age_s": (
                round(now - self.last_heartbeat, 3)
                if self.last_heartbeat else None
            ),
        }


class HealthMonitor:
    """Heartbeat ledger + hang watchdog for a campaign's worker slots.

    ``beat`` timestamps any sign of life (readiness, a streamed trial,
    a batch completion); ``overdue`` names the busy slots whose last
    heartbeat is older than ``heartbeat_timeout`` — the dispatcher
    kills those, re-queues their batches, and restarts the slot.
    Starting workers get a separate (longer) allowance because the
    golden-run replay is legitimate silent work.
    """

    def __init__(
        self,
        heartbeat_timeout: float = 30.0,
        startup_timeout: Optional[float] = None,
    ) -> None:
        self.heartbeat_timeout = heartbeat_timeout
        self.startup_timeout = (
            startup_timeout if startup_timeout is not None
            else max(heartbeat_timeout * 4, 60.0)
        )
        self.workers: Dict[int, WorkerHealth] = {}

    def track(self, slot: int, pid: Optional[int],
              now: Optional[float] = None) -> WorkerHealth:
        now = time.monotonic() if now is None else now
        health = WorkerHealth(
            slot=slot, pid=pid, state=WORKER_STARTING, last_heartbeat=now,
            restarts=(
                self.workers[slot].restarts if slot in self.workers else 0
            ),
            trials_done=(
                self.workers[slot].trials_done if slot in self.workers else 0
            ),
            batches_done=(
                self.workers[slot].batches_done if slot in self.workers else 0
            ),
        )
        self.workers[slot] = health
        return health

    def beat(self, slot: int, now: Optional[float] = None) -> None:
        if slot in self.workers:
            self.workers[slot].last_heartbeat = (
                time.monotonic() if now is None else now
            )

    def overdue(self, now: Optional[float] = None) -> List[int]:
        """Slots presumed hung: silent beyond their allowance."""
        now = time.monotonic() if now is None else now
        hung = []
        for slot, health in self.workers.items():
            if health.state == WORKER_BUSY:
                allowance = self.heartbeat_timeout
            elif health.state == WORKER_STARTING:
                allowance = self.startup_timeout
            else:
                continue
            if now - health.last_heartbeat > allowance:
                hung.append(slot)
        return hung

    def snapshot(self, now: Optional[float] = None) -> List[Dict]:
        return [
            self.workers[slot].snapshot(now) for slot in sorted(self.workers)
        ]


def shard_batches(
    indices: List[int],
    batch_size: int,
    workers: int = 1,
    static: bool = False,
) -> List[BatchState]:
    """Shard a trial-index list into dispatchable batches.

    With ``static=True`` batches are pinned round-robin to worker slots
    (the scheduling baseline the benchmark compares against); the
    default leaves them unpinned so idle workers steal whatever is next
    — a straggler slows only its own batch, never the pool.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batches = [
        BatchState(
            batch_id=number,
            indices=tuple(indices[i:i + batch_size]),
            assigned_slot=(number % max(workers, 1)) if static else None,
        )
        for number, i in enumerate(range(0, len(indices), batch_size))
    ]
    return batches


def default_batch_size(trials: int, workers: int) -> int:
    """Eight batches per worker: finer than the pool engine's four so
    work-stealing has slack to rebalance around stragglers, while each
    batch still amortises its dispatch round-trip."""
    import math

    return max(1, math.ceil(trials / (max(workers, 1) * 8)))
