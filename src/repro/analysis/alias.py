"""Alias analysis: address abstraction, points-to, and may/must queries.

The Encore idempotence equations operate on *address sets* (RS/GA/EA)
whose membership tests are alias queries (paper Section 3.1: "the set
subtraction operation ... is supplied with standard, conservative, static
memory alias analysis techniques").  Two analysis modes mirror paper
Figure 7a:

``static``
    Conservative: a reference through a pointer may alias anything its
    points-to set allows (TOP aliases everything); a non-constant index
    may alias any word of the same object.  Guarding (must-alias)
    requires a statically-identical concrete address.

``optimistic``
    An approximate lower bound for a perfect (dynamic) disambiguator:
    syntactically distinct references are assumed not to alias, while
    identical references must alias.  This is intentionally unsound — the
    paper uses it only to bound achievable overhead reduction.

``profiled``
    The paper's footnote-2 future work, implemented: a dynamic memory
    profile (:mod:`repro.profiling.memprofile`) refines the static
    answers statistically — untracked pointers shrink to the objects
    they actually touched, and two references whose observed address
    sets are disjoint are assumed not to alias.  Best-effort, like Pmin
    pruning.

Pointer provenance is recovered by a flow-insensitive, module-level
points-to analysis using allocation-site abstraction for heap objects.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Constant, MemoryObject, MemRef, VirtualRegister


class _UnknownIndex:
    """Sentinel: a word index that cannot be resolved statically."""

    _instance: Optional["_UnknownIndex"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unknown-index>"


UNKNOWN_INDEX = _UnknownIndex()

SymIndex = Tuple[str, str]  # ("sym", register name) — optimistic mode only
IndexAbstraction = Union[int, SymIndex, _UnknownIndex]


@dataclasses.dataclass(frozen=True)
class AddrKey:
    """Abstract address: a set of possible base objects plus a word index.

    ``objs`` is a frozenset of object names, or ``None`` meaning TOP (any
    object).  ``index`` is a concrete word offset, a symbolic token
    (optimistic mode), or :data:`UNKNOWN_INDEX`.  In profiled mode,
    imprecise keys additionally carry the ``observed`` set of concrete
    (object, index) addresses the originating site touched in training.
    """

    objs: Optional[FrozenSet[str]]
    index: IndexAbstraction
    observed: Optional[FrozenSet[Tuple[str, int]]] = None

    def concrete_address(self) -> Optional[Tuple[str, int]]:
        """The single (object, index) this key names, if exact."""
        if (
            self.objs is not None
            and len(self.objs) == 1
            and isinstance(self.index, int)
        ):
            return (next(iter(self.objs)), self.index)
        return None

    def __str__(self) -> str:
        objs = "?" if self.objs is None else "|".join(sorted(self.objs))
        return f"{objs}[{self.index}]"


class PointsToAnalysis:
    """Flow-insensitive, module-level points-to sets for pointer registers.

    Each pointer register in each function maps to a set of object names
    (globals, stack objects, or ``heap:<fn>:<block>:<idx>`` allocation
    sites) or ``None`` for TOP.  Interprocedural flow is handled by
    propagating argument sets into parameters and TOP out of returns of
    external calls.
    """

    TOP = None

    def __init__(self, module: Module) -> None:
        self.module = module
        # (func name, register) -> frozenset of object names or None (TOP)
        self._sets: Dict[Tuple[str, VirtualRegister], Optional[Set[str]]] = {}
        self._solve()

    def lookup(self, func_name: str, reg: VirtualRegister) -> Optional[FrozenSet[str]]:
        value = self._sets.get((func_name, reg))
        if value is None:
            return None
        return frozenset(value)

    # -- solver ---------------------------------------------------------

    def _get(self, key) -> Optional[Set[str]]:
        return self._sets.get(key, set())

    def _join_into(self, key, addition: Optional[Set[str]]) -> bool:
        """Union ``addition`` into the set at ``key``; return True on change."""
        current = self._sets.get(key, set())
        if current is None:
            return False  # already TOP
        if addition is None:
            self._sets[key] = None
            return True
        new = current | addition
        if new != current:
            self._sets[key] = new
            return True
        return False

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for func in self.module:
                changed |= self._process_function(func)

    def _process_function(self, func: Function) -> bool:
        changed = False
        fname = func.name
        for block in func:
            for i, inst in enumerate(block):
                op = inst.opcode
                if op == "addrof":
                    base = inst.ref.base
                    if isinstance(base, MemoryObject):
                        changed |= self._join_into((fname, inst.dest), {base.name})
                    else:
                        changed |= self._join_into(
                            (fname, inst.dest), self._get((fname, base))
                        )
                elif op == "alloc":
                    site = f"heap:{fname}:{block.label}:{i}"
                    changed |= self._join_into((fname, inst.dest), {site})
                elif op == "mov":
                    src = inst.src
                    if isinstance(src, VirtualRegister) and _is_ptr(src):
                        changed |= self._join_into(
                            (fname, inst.dest), self._get((fname, src))
                        )
                elif op == "select":
                    for src in (inst.if_true, inst.if_false):
                        if isinstance(src, VirtualRegister) and _is_ptr(src):
                            changed |= self._join_into(
                                (fname, inst.dest), self._get((fname, src))
                            )
                elif op == "load":
                    if _is_ptr(inst.dest):
                        # Pointers materialized from memory are untracked.
                        changed |= self._join_into((fname, inst.dest), None)
                elif op == "call":
                    callee = self.module.get_function(inst.callee)
                    if callee is not None:
                        for param, arg in zip(callee.params, inst.args):
                            if isinstance(arg, VirtualRegister) and _is_ptr(arg):
                                changed |= self._join_into(
                                    (callee.name, param), self._get((fname, arg))
                                )
                        if inst.dest is not None and _is_ptr(inst.dest):
                            changed |= self._join_into((fname, inst.dest), None)
                    else:
                        if inst.dest is not None and _is_ptr(inst.dest):
                            changed |= self._join_into((fname, inst.dest), None)
        return changed


def _is_ptr(reg: VirtualRegister) -> bool:
    from repro.ir.types import Type

    return reg.type is Type.PTR


class AliasAnalysis:
    """May/must alias queries over :class:`AddrKey` abstractions."""

    def __init__(
        self,
        module: Module,
        mode: str = "static",
        memory_profile=None,
    ) -> None:
        if mode not in ("static", "optimistic", "profiled"):
            raise ValueError(f"unknown alias mode {mode!r}")
        if mode == "profiled" and memory_profile is None:
            raise ValueError("profiled mode requires a memory_profile")
        self.module = module
        self.mode = mode
        self.memory_profile = memory_profile
        self.points_to = PointsToAnalysis(module)

    # -- key construction -------------------------------------------------

    def key(self, func_name: str, ref: MemRef, site=None) -> AddrKey:
        """Abstract ``ref`` (as written in function ``func_name``).

        ``site`` is the instruction's ``(function, block, index)``
        location, used by profiled mode to look up training-run
        observations.
        """
        direct = isinstance(ref.base, MemoryObject)
        if direct:
            objs: Optional[FrozenSet[str]] = frozenset([ref.base.name])
        else:
            objs = self.points_to.lookup(func_name, ref.base)
        # The word index is only absolute for direct references; through
        # a pointer the base offset is unknown, so even a constant index
        # cannot be placed within the object.
        if direct and isinstance(ref.index, Constant):
            index: IndexAbstraction = int(ref.index.value)
        elif self.mode == "optimistic":
            if isinstance(ref.index, Constant):
                index = ("sym", f"{ref.base.name}+{int(ref.index.value)}")
            else:
                index = ("sym", ref.index.name)
        else:
            index = UNKNOWN_INDEX
        observed = None
        if (
            self.mode == "profiled"
            and site is not None
            and (objs is None or not isinstance(index, int))
        ):
            observed = self.memory_profile.observed_addresses(site)
            if objs is None:
                refined = self.memory_profile.observed_objects(site)
                if refined is not None:
                    objs = refined
        return AddrKey(objs, index, observed)

    # -- queries -----------------------------------------------------------

    def may_alias(self, a: AddrKey, b: AddrKey) -> bool:
        if self.mode == "optimistic":
            return self.must_alias(a, b)
        if self.mode == "profiled":
            verdict = self._observed_overlap(a, b)
            if verdict is not None:
                return verdict
        if a.objs is None or b.objs is None:
            return True
        if not (a.objs & b.objs):
            return False
        return self._index_may_equal(a.index, b.index)

    def must_alias(self, a: AddrKey, b: AddrKey) -> bool:
        if self.mode == "optimistic":
            # Perfect-disambiguator approximation: identical references
            # (same object set, same index expression) must alias.
            return a == b and a.objs is not None
        if self.mode == "profiled":
            for x, y in ((a, b), (b, a)):
                if x.observed is not None and len(x.observed) == 1:
                    only = next(iter(x.observed))
                    if y.observed is not None and y.observed == x.observed:
                        return True
                    if y.concrete_address() == only:
                        return True
        if a.objs is None or b.objs is None:
            return False
        if len(a.objs) != 1 or a.objs != b.objs:
            return False
        return (
            isinstance(a.index, int)
            and isinstance(b.index, int)
            and a.index == b.index
        )

    @staticmethod
    def _observed_overlap(a: AddrKey, b: AddrKey) -> Optional[bool]:
        """Decide aliasing from training observations when both sides
        are pinned down; None defers to the static rules."""
        a_set = a.observed
        if a_set is None:
            concrete = a.concrete_address()
            a_set = frozenset([concrete]) if concrete else None
        b_set = b.observed
        if b_set is None:
            concrete = b.concrete_address()
            b_set = frozenset([concrete]) if concrete else None
        if a_set is None or b_set is None:
            return None
        if a.observed is None and b.observed is None:
            return None  # both fully static: use the exact rules
        return bool(a_set & b_set)

    @staticmethod
    def _index_may_equal(a: IndexAbstraction, b: IndexAbstraction) -> bool:
        if isinstance(a, int) and isinstance(b, int):
            return a == b
        return True  # any unknown/symbolic index may equal anything

    # -- set-level helpers used by the idempotence equations ---------------

    def key_in_must(self, key: AddrKey, keys: Set[AddrKey]) -> bool:
        """True when some member of ``keys`` must-aliases ``key``."""
        return any(self.must_alias(key, other) for other in keys)

    def key_in_may(self, key: AddrKey, keys: Set[AddrKey]) -> bool:
        """True when some member of ``keys`` may-alias ``key``."""
        return any(self.may_alias(key, other) for other in keys)
