"""Compiler analyses used by the Encore passes."""

from repro.analysis.alias import AddrKey, AliasAnalysis, PointsToAnalysis, UNKNOWN_INDEX
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import CFGView, post_order, reverse_graph, topological_order
from repro.analysis.dominators import DominatorTree
from repro.analysis.intervals import Interval, IntervalHierarchy, partition_into_intervals
from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.loops import Loop, LoopForest

__all__ = [
    "AddrKey",
    "AliasAnalysis",
    "CFGView",
    "CallGraph",
    "DominatorTree",
    "Interval",
    "IntervalHierarchy",
    "LivenessAnalysis",
    "Loop",
    "LoopForest",
    "PointsToAnalysis",
    "UNKNOWN_INDEX",
    "build_call_graph",
    "partition_into_intervals",
    "post_order",
    "reverse_graph",
    "topological_order",
]
