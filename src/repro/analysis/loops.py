"""Natural-loop discovery and the loop-nesting forest.

Encore treats loops hierarchically (paper Section 3.1.2): each loop is
summarized and then handled as a pseudo basic block by enclosing
analyses.  A loop is *canonical* when it is a natural loop — single
header that dominates the whole body, entered only through the header.
Irreducible cycles cannot be put in this form; per the paper (footnote
3) Encore refuses to instrument regions containing them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.dominators import DominatorTree


@dataclasses.dataclass
class Loop:
    """A natural loop: ``header`` plus the set of body ``blocks``.

    ``latches`` are in-loop predecessors of the header (back-edge
    sources); ``exiting`` are in-loop blocks with a successor outside the
    loop; ``exits`` are the out-of-loop successor blocks.  ``parent`` and
    ``children`` express the nesting forest; ``depth`` is 1 for outermost
    loops.
    """

    header: str
    blocks: Set[str]
    latches: Set[str]
    parent: Optional["Loop"] = None
    children: List["Loop"] = dataclasses.field(default_factory=list)
    depth: int = 1

    def exiting_blocks(self, cfg: CFGView) -> List[str]:
        return [
            label
            for label in sorted(self.blocks)
            if any(s not in self.blocks for s in cfg.succs[label])
        ]

    def exit_blocks(self, cfg: CFGView) -> List[str]:
        exits = []
        for label in sorted(self.blocks):
            for succ in cfg.succs[label]:
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def contains_loop(self, other: "Loop") -> bool:
        return other is not self and other.blocks <= self.blocks

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={len(self.blocks)} depth={self.depth}>"


class LoopForest:
    """All natural loops of a function, organized by nesting."""

    def __init__(self, cfg: CFGView, domtree: Optional[DominatorTree] = None) -> None:
        self.cfg = cfg
        self.domtree = domtree or DominatorTree(cfg)
        self.loops: List[Loop] = _find_natural_loops(cfg, self.domtree)
        self.irreducible: bool = _has_irreducible_cycles(cfg, self.domtree)
        _build_nesting(self.loops)
        self._header_index: Dict[str, Loop] = {l.header: l for l in self.loops}

    def loop_with_header(self, header: str) -> Optional[Loop]:
        return self._header_index.get(header)

    def innermost_loop_of(self, label: str) -> Optional[Loop]:
        """The innermost loop containing ``label`` (or None)."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if label in loop.blocks:
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def top_level_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def inner_to_outer(self) -> List[Loop]:
        """Loops ordered innermost-first (analysis order, paper §3.1.2)."""
        return sorted(self.loops, key=lambda l: -l.depth)

    def __len__(self) -> int:
        return len(self.loops)


def _find_natural_loops(cfg: CFGView, domtree: DominatorTree) -> List[Loop]:
    # Back edge: tail -> head where head dominates tail.
    bodies: Dict[str, Set[str]] = {}
    latches: Dict[str, Set[str]] = {}
    for tail in cfg.labels:
        for head in cfg.succs[tail]:
            if domtree.dominates(head, tail):
                body = bodies.setdefault(head, {head})
                latches.setdefault(head, set()).add(tail)
                # Walk predecessors backward from the latch up to the header.
                worklist = [tail]
                while worklist:
                    node = worklist.pop()
                    if node in body:
                        continue
                    body.add(node)
                    worklist.extend(cfg.preds[node])
    return [
        Loop(header=h, blocks=bodies[h], latches=latches[h])
        for h in sorted(bodies)
    ]


def _build_nesting(loops: List[Loop]) -> None:
    # Smaller loops nest inside larger ones; ties cannot occur because two
    # distinct natural loops with the same block set share a header and
    # would have been merged.
    by_size = sorted(loops, key=lambda l: len(l.blocks))
    for i, inner in enumerate(by_size):
        for outer in by_size[i + 1:]:
            if inner.blocks <= outer.blocks and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break
    for loop in by_size:
        depth = 1
        node = loop.parent
        while node is not None:
            depth += 1
            node = node.parent
        loop.depth = depth


def _has_irreducible_cycles(cfg: CFGView, domtree: DominatorTree) -> bool:
    """Detect retreating edges that are not back edges (irreducibility)."""
    color: Dict[str, int] = {}
    WHITE, GREY, BLACK = 0, 1, 2
    for label in cfg.labels:
        color[label] = WHITE
    stack: List[Tuple[str, int]] = [(cfg.entry, 0)]
    color[cfg.entry] = GREY
    frames: List[List] = [[cfg.entry, 0]]
    while frames:
        node, idx = frames[-1]
        children = cfg.succs[node]
        if idx < len(children):
            frames[-1][1] += 1
            child = children[idx]
            if color[child] == WHITE:
                color[child] = GREY
                frames.append([child, 0])
            elif color[child] == GREY:
                # Retreating edge: reducible iff the target dominates source.
                if not domtree.dominates(child, node):
                    return True
        else:
            color[node] = BLACK
            frames.pop()
    return False
