"""Interval partitioning (Allen–Cocke) and the recursive interval hierarchy.

Encore forms candidate recovery regions from intervals (paper Section
3.3): an interval is a loop plus the acyclic tails dangling from it, or
simply a SEME subgraph with a single dominating header.  Two properties
the paper relies on are preserved here:

1. every interval is single-entry (all edges from outside target the
   header), hence SEME; and
2. partitioning applies recursively — the interval graph of one level is
   itself partitioned, yielding progressively coarser candidate regions
   until the graph no longer shrinks (the *limit graph*).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set

from repro.analysis.cfg import CFGView


@dataclasses.dataclass
class Interval:
    """One interval at some level of the hierarchy.

    ``header`` and ``members`` are node ids of the level below (labels at
    level 1, interval ids at higher levels).  ``block_set`` flattens the
    interval to the basic-block labels it covers, and ``header_block`` is
    the basic-block header after flattening.
    """

    id: int
    level: int
    header: str
    members: List[str]
    block_set: Set[str]
    header_block: str

    def __repr__(self) -> str:
        return (
            f"<Interval L{self.level}#{self.id} header={self.header_block} "
            f"blocks={len(self.block_set)}>"
        )


def partition_into_intervals(
    succs: Dict[str, Sequence[str]],
    preds: Dict[str, Sequence[str]],
    entry: str,
) -> List[List[str]]:
    """Partition a rooted graph into intervals; each is ``[header, *rest]``.

    Nodes unreachable from ``entry`` are ignored.
    """
    assigned: Set[str] = set()
    header_worklist: List[str] = [entry]
    queued: Set[str] = {entry}
    intervals: List[List[str]] = []

    while header_worklist:
        header = header_worklist.pop(0)
        if header in assigned:
            continue
        interval = [header]
        in_interval = {header}
        assigned.add(header)
        changed = True
        while changed:
            changed = False
            for node, node_preds in preds.items():
                if node in assigned or node == entry:
                    continue
                if not node_preds:
                    continue
                if all(p in in_interval for p in node_preds):
                    interval.append(node)
                    in_interval.add(node)
                    assigned.add(node)
                    changed = True
        # New headers: unassigned nodes with at least one pred inside.
        for node in interval:
            for succ in succs.get(node, ()):
                if succ not in assigned and succ not in queued:
                    header_worklist.append(succ)
                    queued.add(succ)
        intervals.append(interval)
    return intervals


class IntervalHierarchy:
    """The recursive interval decomposition of a function's CFG.

    ``levels[k]`` holds the intervals produced by the (k+1)-th application
    of interval partitioning; level 0 intervals group basic blocks, level
    1 intervals group level-0 intervals, and so on until the interval
    graph stops shrinking.
    """

    def __init__(self, cfg: CFGView) -> None:
        self.cfg = cfg
        self.levels: List[List[Interval]] = []
        self._build()

    def _build(self) -> None:
        # Level-0 graph: the CFG itself.
        succs: Dict[str, Sequence[str]] = {l: list(s) for l, s in self.cfg.succs.items()}
        preds: Dict[str, Sequence[str]] = {l: list(p) for l, p in self.cfg.preds.items()}
        entry = self.cfg.entry
        # node id -> (block_set, header_block) for the current graph level
        node_info: Dict[str, tuple] = {
            label: ({label}, label) for label in self.cfg.labels
        }
        next_id = 0
        level = 1
        while True:
            raw = partition_into_intervals(succs, preds, entry)
            intervals: List[Interval] = []
            node_to_interval: Dict[str, int] = {}
            for members in raw:
                block_set: Set[str] = set()
                for member in members:
                    block_set |= node_info[member][0]
                header_block = node_info[members[0]][1]
                iv = Interval(
                    id=next_id,
                    level=level,
                    header=members[0],
                    members=list(members),
                    block_set=block_set,
                    header_block=header_block,
                )
                intervals.append(iv)
                for member in members:
                    node_to_interval[member] = iv.id
                next_id += 1
            self.levels.append(intervals)
            if len(intervals) == len(succs):
                break  # limit graph reached, no shrinkage
            # Build the derived (interval) graph for the next round.
            new_succs: Dict[str, List[str]] = {str(iv.id): [] for iv in intervals}
            for node, children in succs.items():
                src = str(node_to_interval[node])
                for child in children:
                    dst = str(node_to_interval[child])
                    if dst != src and dst not in new_succs[src]:
                        new_succs[src].append(dst)
            new_preds: Dict[str, List[str]] = {n: [] for n in new_succs}
            for node, children in new_succs.items():
                for child in children:
                    new_preds[child].append(node)
            entry_interval = node_to_interval[entry]
            succs = new_succs
            preds = new_preds
            entry = str(entry_interval)
            node_info = {
                str(iv.id): (iv.block_set, iv.header_block) for iv in intervals
            }
            level += 1
            if len(intervals) == 1:
                break

    @property
    def depth(self) -> int:
        return len(self.levels)

    def all_intervals(self) -> List[Interval]:
        return [iv for level in self.levels for iv in level]

    def intervals_at(self, level: int) -> List[Interval]:
        """Intervals at 1-based ``level`` (clamped to the deepest level)."""
        index = min(level, self.depth) - 1
        return self.levels[index]
