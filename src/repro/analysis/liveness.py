"""Register liveness analysis.

Encore checkpoints, at region entry, every register that is live-in to
the region *and* overwritten somewhere inside it (paper Section 3.2) —
the register analogue of a WAR violation.  This module provides the
underlying per-block live-in sets and the region-level query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.analysis.cfg import CFGView
from repro.analysis.dataflow import solve_backward_union
from repro.ir.function import Function
from repro.ir.values import VirtualRegister


class LivenessAnalysis:
    """Per-block ``use``/``def``/``live_in`` register sets for a function."""

    def __init__(self, func: Function, cfg: CFGView = None) -> None:
        self.func = func
        self.cfg = cfg or CFGView(func)
        self.use: Dict[str, Set[VirtualRegister]] = {}
        self.defs: Dict[str, Set[VirtualRegister]] = {}
        for label in self.cfg.labels:
            block = func.blocks[label]
            used: Set[VirtualRegister] = set()
            defined: Set[VirtualRegister] = set()
            for inst in block:
                for reg in inst.uses():
                    if reg not in defined:
                        used.add(reg)
                defined.update(inst.defs())
            self.use[label] = used
            self.defs[label] = defined
        self.live_in: Dict[str, Set[VirtualRegister]] = solve_backward_union(
            self.cfg.labels, self.cfg.succs, self.use, self.defs
        )

    def live_out(self, label: str) -> Set[VirtualRegister]:
        out: Set[VirtualRegister] = set()
        for succ in self.cfg.succs[label]:
            out |= self.live_in[succ]
        return out

    def region_live_in_overwritten(
        self, region_blocks: Iterable[str], header: str
    ) -> List[VirtualRegister]:
        """Registers live-in at ``header`` that some region block overwrites.

        These are exactly the registers Encore must checkpoint on region
        entry to make re-execution safe with respect to register state.
        """
        region = set(region_blocks)
        overwritten: Set[VirtualRegister] = set()
        for label in region:
            overwritten |= self.defs.get(label, set())
        live = self.live_in.get(header, set())
        return sorted(live & overwritten, key=lambda r: r.name)
