"""Call-graph construction with SCC detection (Tarjan).

Used by the inliner for bottom-up processing order and available to any
interprocedural analysis that needs recursion detection beyond the
summary builder's on-the-fly cycle check.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.ir.module import Module


@dataclasses.dataclass
class CallGraph:
    """Edges between module functions, plus externals per caller."""

    callees: Dict[str, Set[str]]          # function -> module functions called
    external_callees: Dict[str, Set[str]]  # function -> opaque callees
    sccs: List[List[str]]                  # bottom-up (callees before callers)

    def callers_of(self, name: str) -> List[str]:
        return sorted(
            caller for caller, cals in self.callees.items() if name in cals
        )

    def is_recursive(self, name: str) -> bool:
        """Part of a cycle (including direct self-recursion)."""
        for scc in self.sccs:
            if name in scc:
                return len(scc) > 1 or name in self.callees.get(name, ())
        return False

    def calls_external(self, name: str) -> bool:
        return bool(self.external_callees.get(name))

    def bottom_up(self) -> List[str]:
        """Functions ordered callees-first (SCC members grouped)."""
        return [name for scc in self.sccs for name in scc]


def build_call_graph(module: Module) -> CallGraph:
    callees: Dict[str, Set[str]] = {}
    externals: Dict[str, Set[str]] = {}
    for func in module:
        inside: Set[str] = set()
        outside: Set[str] = set()
        for block in func:
            for inst in block:
                if inst.opcode != "call":
                    continue
                if module.get_function(inst.callee) is not None:
                    inside.add(inst.callee)
                else:
                    outside.add(inst.callee)
        callees[func.name] = inside
        externals[func.name] = outside
    sccs = _tarjan_sccs(callees)
    return CallGraph(callees, externals, sccs)


def _tarjan_sccs(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's algorithm, iterative; emits SCCs callees-first."""
    index_counter = [0]
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []

    for root in adjacency:
        if root in indices:
            continue
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        indices[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in adjacency:
                    continue
                if child not in indices:
                    indices[child] = lowlink[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                result.append(sorted(scc))
    return result
