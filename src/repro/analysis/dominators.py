"""Dominator-tree construction (Cooper–Harvey–Kennedy iterative algorithm).

Encore needs dominance for two things: verifying that candidate regions
are SEME (the header must dominate every member block) and canonicalizing
natural loops (back edges are edges whose target dominates their source).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFGView


class DominatorTree:
    """Immediate-dominator map plus dominance queries for one function."""

    def __init__(self, cfg: CFGView) -> None:
        self.cfg = cfg
        self.idom: Dict[str, Optional[str]] = _compute_idoms(cfg)
        self._dom_depth: Dict[str, int] = {}
        for label in cfg.labels:
            self._dom_depth[label] = self._depth(label)

    def _depth(self, label: str) -> int:
        depth = 0
        node: Optional[str] = label
        while node is not None and node != self.cfg.entry:
            node = self.idom[node]
            depth += 1
        return depth

    def dominates(self, a: str, b: str) -> bool:
        """True when ``a`` dominates ``b`` (every node dominates itself)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            if node == self.cfg.entry:
                return False
            node = self.idom[node]
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, label: str) -> List[str]:
        """Dominator-tree children of ``label``."""
        return [
            l
            for l in self.cfg.labels
            if l != self.cfg.entry and self.idom[l] == label
        ]

    def dominated_set(self, label: str) -> Set[str]:
        """All blocks dominated by ``label`` (including itself)."""
        result = {label}
        worklist = [label]
        while worklist:
            node = worklist.pop()
            for child in self.children(node):
                if child not in result:
                    result.add(child)
                    worklist.append(child)
        return result


def _compute_idoms(cfg: CFGView) -> Dict[str, Optional[str]]:
    order = cfg.reverse_post_order()
    index = {label: i for i, label in enumerate(order)}
    idom: Dict[str, Optional[str]] = {label: None for label in cfg.labels}
    idom[cfg.entry] = cfg.entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == cfg.entry:
                continue
            processed = [p for p in cfg.preds[label] if idom[p] is not None]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = intersect(new_idom, pred)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    idom[cfg.entry] = None
    return idom
