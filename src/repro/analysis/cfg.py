"""Control-flow-graph utilities shared by all analyses.

:class:`CFGView` snapshots a function's control flow as plain label
graphs (successor/predecessor maps restricted to reachable blocks) so
analyses do not have to re-derive edges, and provides the standard
traversal orders (post-order, reverse post-order, topological order on
acyclic subgraphs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir.function import Function


class CFGView:
    """An immutable snapshot of a function's reachable CFG."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.entry = func.entry_label
        reachable = func.reachable_labels()
        # Preserve function block order for determinism.
        self.labels: List[str] = [l for l in func.blocks if l in reachable]
        self.succs: Dict[str, Tuple[str, ...]] = {
            label: tuple(s for s in func.successors(label) if s in reachable)
            for label in self.labels
        }
        self.preds: Dict[str, List[str]] = {label: [] for label in self.labels}
        for label in self.labels:
            for succ in self.succs[label]:
                self.preds[succ].append(label)

    def __contains__(self, label: str) -> bool:
        return label in self.succs

    def __len__(self) -> int:
        return len(self.labels)

    # -- traversals -----------------------------------------------------

    def post_order(self, root: Optional[str] = None) -> List[str]:
        """Iterative DFS post-order from ``root`` (default: entry)."""
        return post_order(self.succs, root or self.entry)

    def reverse_post_order(self, root: Optional[str] = None) -> List[str]:
        order = self.post_order(root)
        order.reverse()
        return order

    def exit_labels(self) -> List[str]:
        return [l for l in self.labels if not self.succs[l]]


def post_order(succs: Dict[str, Sequence[str]], root: str) -> List[str]:
    """Iterative DFS post-order over an adjacency map."""
    order: List[str] = []
    visited: Set[str] = set()
    # Stack of (node, iterator-index) pairs emulating recursion.
    stack: List[list] = [[root, 0]]
    visited.add(root)
    while stack:
        node, idx = stack[-1]
        children = succs.get(node, ())
        if idx < len(children):
            stack[-1][1] += 1
            child = children[idx]
            if child not in visited and child in succs:
                visited.add(child)
                stack.append([child, 0])
        else:
            order.append(node)
            stack.pop()
    return order


def reachable_from(succs: Dict[str, Sequence[str]], root: str) -> Set[str]:
    """All nodes reachable from ``root`` in the adjacency map."""
    seen: Set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in seen or node not in succs:
            continue
        seen.add(node)
        stack.extend(succs[node])
    return seen


def reverse_graph(succs: Dict[str, Sequence[str]]) -> Dict[str, List[str]]:
    """Reverse an adjacency map."""
    rev: Dict[str, List[str]] = {node: [] for node in succs}
    for node, children in succs.items():
        for child in children:
            if child in rev:
                rev[child].append(node)
    return rev


def topological_order(
    succs: Dict[str, Sequence[str]], roots: Iterable[str]
) -> List[str]:
    """Topological order of an acyclic adjacency map (Kahn's algorithm).

    Raises ``ValueError`` if the graph has a cycle — callers collapse
    loops before requesting a topological order.
    """
    indegree: Dict[str, int] = {node: 0 for node in succs}
    for node, children in succs.items():
        for child in children:
            if child in indegree:
                indegree[child] += 1
    worklist = [r for r in roots if indegree.get(r, 1) == 0]
    order: List[str] = []
    while worklist:
        node = worklist.pop()
        order.append(node)
        for child in succs.get(node, ()):
            indegree[child] -= 1
            if indegree[child] == 0:
                worklist.append(child)
    if len(order) != len(succs):
        raise ValueError("graph has a cycle; collapse loops first")
    return order
