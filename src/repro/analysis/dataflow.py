"""A small generic worklist solver for iterative dataflow problems."""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, Iterable, Mapping, Sequence, Set, TypeVar

T = TypeVar("T", bound=Hashable)


def solve_backward_union(
    nodes: Sequence[str],
    succs: Mapping[str, Sequence[str]],
    gen: Mapping[str, Set[T]],
    kill: Mapping[str, Set[T]],
) -> Dict[str, Set[T]]:
    """Solve ``in[n] = gen[n] ∪ (∪_{s∈succ(n)} in[s] − kill[n])``.

    The classic backward may-analysis shape (liveness and friends).
    Returns the ``in`` sets at fixpoint.
    """
    in_sets: Dict[str, Set[T]] = {n: set(gen.get(n, set())) for n in nodes}
    worklist = list(nodes)
    in_work = set(nodes)
    preds: Dict[str, list] = {n: [] for n in nodes}
    for n in nodes:
        for s in succs.get(n, ()):
            if s in preds:
                preds[s].append(n)
    while worklist:
        node = worklist.pop()
        in_work.discard(node)
        out: Set[T] = set()
        for s in succs.get(node, ()):
            if s in in_sets:
                out |= in_sets[s]
        new_in = set(gen.get(node, set())) | (out - kill.get(node, set()))
        if new_in != in_sets[node]:
            in_sets[node] = new_in
            for p in preds[node]:
                if p not in in_work:
                    worklist.append(p)
                    in_work.add(p)
    return in_sets


def solve_forward_union(
    nodes: Sequence[str],
    preds: Mapping[str, Sequence[str]],
    gen: Mapping[str, Set[T]],
    kill: Mapping[str, Set[T]],
    boundary: Iterable[str] = (),
) -> Dict[str, Set[T]]:
    """Solve ``out[n] = gen[n] ∪ (∪_{p∈pred(n)} out[p] − kill[n])``.

    ``boundary`` nodes start (and stay seeded) with empty incoming state.
    Returns the ``out`` sets at fixpoint.
    """
    out_sets: Dict[str, Set[T]] = {n: set(gen.get(n, set())) for n in nodes}
    succs: Dict[str, list] = {n: [] for n in nodes}
    for n in nodes:
        for p in preds.get(n, ()):
            if p in succs:
                succs[p].append(n)
    worklist = list(nodes)
    in_work = set(nodes)
    while worklist:
        node = worklist.pop()
        in_work.discard(node)
        incoming: Set[T] = set()
        for p in preds.get(node, ()):
            if p in out_sets:
                incoming |= out_sets[p]
        new_out = set(gen.get(node, set())) | (incoming - kill.get(node, set()))
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for s in succs[node]:
                if s not in in_work:
                    worklist.append(s)
                    in_work.add(s)
    return out_sets
