"""``python -m repro`` — the Encore command-line tool."""

from repro.cli import main

raise SystemExit(main())
