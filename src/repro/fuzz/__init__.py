"""Deterministic differential fuzzing for the Encore reproduction.

Four parts, one pipeline: :mod:`~repro.fuzz.generator` synthesizes
verified, trap-free, terminating programs from ``(seed, config)``
alone; :mod:`~repro.fuzz.oracles` checks each program against the
stack's core correctness properties differentially; :mod:`~repro.fuzz.
reduce` delta-debugs any failure into a minimal repro that preserves
the failure fingerprint; and :mod:`~repro.fuzz.campaign` runs budgeted,
journaled, resumable, process-parallel campaigns with crash dedup and
a corpus of reduced repros.  ``repro fuzz`` is the CLI entry point;
see ``docs/fuzzing.md``.
"""

from repro.fuzz.generator import (
    EXTERNALS,
    PROFILES,
    SMALL,
    THREADS,
    FuzzProgram,
    GeneratorConfig,
    derive_program_seed,
    generate_program,
    program_strategy,
)
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    DEFECT_ENV,
    ORACLE_REGISTRY,
    Oracle,
    OracleFailure,
    make_oracles,
    planted_defect,
    run_oracles,
)
from repro.fuzz.reduce import (
    ReductionResult,
    count_instructions,
    reduce_program,
)
from repro.fuzz.campaign import (
    DEFAULT_CAMPAIGN_EVERY,
    FuzzJournal,
    FuzzRecord,
    FuzzResult,
    FuzzSettings,
    load_fuzz_journal,
    reduce_findings,
    run_fuzz_campaign,
    run_program,
    validate_fuzz_resume,
)

__all__ = [
    "DEFAULT_CAMPAIGN_EVERY",
    "DEFAULT_ORACLES",
    "DEFECT_ENV",
    "EXTERNALS",
    "FuzzJournal",
    "FuzzProgram",
    "FuzzRecord",
    "FuzzResult",
    "FuzzSettings",
    "GeneratorConfig",
    "ORACLE_REGISTRY",
    "Oracle",
    "OracleFailure",
    "PROFILES",
    "ReductionResult",
    "SMALL",
    "THREADS",
    "count_instructions",
    "derive_program_seed",
    "generate_program",
    "load_fuzz_journal",
    "make_oracles",
    "planted_defect",
    "program_strategy",
    "reduce_findings",
    "reduce_program",
    "run_fuzz_campaign",
    "run_oracles",
    "run_program",
    "validate_fuzz_resume",
]
