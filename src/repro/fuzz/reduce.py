"""Delta-debugging test-case reduction for fuzzer findings.

Given a program that fails an oracle, shrink it while preserving the
failure's *fingerprint* (the coarse ``oracle:kind`` digest — see
:mod:`repro.fuzz.oracles`), so the minimized repro still demonstrates
the same class of defect even though its concrete values differ.

The reducer is greedy and fully deterministic: each round applies a
fixed sequence of shrinking passes in a fixed order, keeping any edit
that still reproduces the fingerprint, and repeats until a whole round
makes no progress (or the check budget runs out):

1. **branch collapsing** — rewrite ``br`` to ``jmp`` toward either arm,
   then drop the blocks that became unreachable (this is how whole
   loops and conditional arms disappear);
2. **instruction deletion** — chunked delta debugging over every
   block's body, largest chunks first;
3. **def stubbing** — replace an instruction with ``dest = 0`` so
   downstream uses stay verifiable while the computation vanishes;
4. **constant shrinking** — pull immediate operands toward 0/1, which
   shrinks loop trip counts and simplifies arithmetic;
5. **dead-function / dead-global sweeping**.

Candidate edits are validated in three stages, cheapest first: the
module must still pass :func:`verify_module`; a bare (uninstrumented)
run must finish trap-free within a step budget derived from the
original program (so an edit that creates an infinite loop is rejected
in milliseconds, not after the interpreter's global limit); and only
then does the failing oracle re-run to confirm the fingerprint.

Semantics need *not* be preserved — only the fingerprint.  That is the
usual delta-debugging contract: the shrunk program is a different
program that fails the same way.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.fuzz.generator import EXTERNALS, FuzzProgram
from repro.fuzz.oracles import Oracle, run_oracles
from repro.ir import (
    Branch,
    Constant,
    Jump,
    Module,
    Move,
    Type,
    VerificationError,
    module_to_text,
    verify_module,
)
from repro.runtime import Interpreter


def count_instructions(module: Module) -> int:
    return sum(
        len(block.instructions) for func in module for block in func
    )


@dataclasses.dataclass
class ReductionResult:
    """A minimized repro plus the bookkeeping of how it was reached."""

    program: FuzzProgram
    oracle: str
    fingerprint: str
    initial_instructions: int
    final_instructions: int
    rounds: int
    checks: int
    profile: str = "default"

    def replay_command(self) -> str:
        """Regenerate the *original* program and re-run its oracle."""
        return (
            f"PYTHONPATH=src python -m repro fuzz "
            f"--replay {self.program.seed} --profile {self.profile} "
            f"--oracles {self.oracle}"
        )

    def render(self) -> str:
        """The corpus artifact: provenance header plus the shrunk IR."""
        lines = [
            f"# fuzz repro: oracle={self.oracle} "
            f"fingerprint={self.fingerprint}",
            f"# seed={self.program.seed} program={self.program.name}",
            f"# shrunk {self.initial_instructions} -> "
            f"{self.final_instructions} instructions "
            f"({self.rounds} rounds, {self.checks} checks)",
            f"# replay: {self.replay_command()}",
            "",
            module_to_text(self.program.module),
        ]
        return "\n".join(lines)


class _Reducer:
    def __init__(
        self,
        program: FuzzProgram,
        oracle: Oracle,
        fingerprint: str,
        max_checks: int,
    ) -> None:
        self.program = program
        self.oracle = oracle
        self.fingerprint = fingerprint
        self.max_checks = max_checks
        self.checks = 0
        baseline = Interpreter(
            copy.deepcopy(program.module), externals=EXTERNALS
        ).run(program.entry, program.args,
              output_objects=program.output_objects)
        # Headroom over the original execution: an edit can lengthen a
        # loop a little (a shrunk trip-count store lands differently)
        # but never legitimately by 8x, so anything past this budget
        # introduced a runaway loop — reject it cheaply here rather
        # than letting the oracle grind to its own much larger limit.
        self.step_budget = min(400_000, max(20_000, baseline.events * 8))

    # -- the predicate ------------------------------------------------

    def holds(self, module: Module) -> bool:
        if self.checks >= self.max_checks:
            return False
        self.checks += 1
        try:
            verify_module(module)
        except VerificationError:
            return False
        try:
            Interpreter(
                module, externals=EXTERNALS, max_steps=self.step_budget
            ).run(self.program.entry, self.program.args,
                  output_objects=self.program.output_objects)
        except Exception:
            return False
        candidate = dataclasses.replace(self.program, module=module)
        failures = run_oracles(candidate, [self.oracle])
        return any(f.fingerprint == self.fingerprint for f in failures)

    # -- shrinking passes ---------------------------------------------

    def collapse_branches(self, module: Module) -> Tuple[Module, bool]:
        changed = False
        # Branches proven load-bearing stay frozen for this pass; each
        # accepted collapse restarts the scan because dropping the dead
        # arm may have deleted other branches wholesale.
        frozen = set()
        while True:
            target = None
            for func in module:
                for label, block in func.blocks.items():
                    if (func.name, label) in frozen:
                        continue
                    if isinstance(block.terminator, Branch):
                        target = (func.name, label, block.terminator)
                        break
                if target:
                    break
            if target is None:
                return module, changed
            fname, label, term = target
            for arm in (term.if_true, term.if_false):
                candidate = copy.deepcopy(module)
                block = candidate.get_function(fname).blocks[label]
                block.instructions[-1] = Jump(arm)
                _drop_unreachable(candidate)
                if self.holds(candidate):
                    module, changed = candidate, True
                    break
            else:
                frozen.add((fname, label))

    def thread_jumps(self, module: Module) -> Tuple[Module, bool]:
        """Bypass empty ``jmp``-only blocks so they become unreachable."""
        changed = False
        # Threading is semantics-preserving, but the fingerprint can
        # still depend on a block's mere existence (region shapes), so
        # each block gets one chance per pass.
        frozen = set()
        while True:
            trivial = None
            for func in module:
                for label, block in func.blocks.items():
                    if (
                        label != func.entry_label
                        and (func.name, label) not in frozen
                        and len(block.instructions) == 1
                        and isinstance(block.terminator, Jump)
                        and block.terminator.target != label
                    ):
                        trivial = (func.name, label, block.terminator.target)
                        break
                if trivial:
                    break
            if trivial is None:
                return module, changed
            fname, label, target = trivial
            candidate = copy.deepcopy(module)
            _redirect_label(candidate.get_function(fname), label, target)
            _drop_unreachable(candidate)
            if self.holds(candidate):
                module, changed = candidate, True
            else:
                frozen.add((fname, label))

    def delete_instructions(self, module: Module) -> Tuple[Module, bool]:
        changed = False
        chunk = 8
        while chunk >= 1:
            sites = _body_sites(module)
            progressed = False
            # Delete from the tail so surviving site indices stay valid.
            for start in range(
                (len(sites) - 1) // chunk * chunk, -1, -chunk
            ):
                group = sites[start:start + chunk]
                if not group:
                    continue
                candidate = copy.deepcopy(module)
                _delete_sites(candidate, group)
                if self.holds(candidate):
                    module, changed, progressed = candidate, True, True
            if not progressed:
                chunk //= 2
        return module, changed

    def stub_defs(self, module: Module) -> Tuple[Module, bool]:
        changed = False
        for fname, label, idx in reversed(_body_sites(module)):
            block = module.get_function(fname).blocks[label]
            inst = block.instructions[idx]
            defs = inst.defs()
            if len(defs) != 1:
                continue
            dest = defs[0]
            if isinstance(inst, Move) and isinstance(inst.src, Constant):
                continue
            zero = Constant(0.0, Type.F64) if dest.type is Type.F64 \
                else Constant(0, dest.type)
            candidate = copy.deepcopy(module)
            candidate.get_function(fname).blocks[label] \
                .instructions[idx] = Move(dest, zero)
            if self.holds(candidate):
                module, changed = candidate, True
        return module, changed

    def shrink_constants(self, module: Module) -> Tuple[Module, bool]:
        changed = False
        for fname, label, idx in _body_sites(module):
            inst = module.get_function(fname) \
                .blocks[label].instructions[idx]
            for attr in ("lhs", "rhs", "src", "value", "cond", "size"):
                operand = getattr(inst, attr, None)
                if not isinstance(operand, Constant):
                    continue
                for small in _smaller_values(operand):
                    candidate = copy.deepcopy(module)
                    setattr(
                        candidate.get_function(fname)
                        .blocks[label].instructions[idx],
                        attr, Constant(small, operand.type),
                    )
                    if self.holds(candidate):
                        module, changed = candidate, True
                        break
        return module, changed

    def sweep_dead(self, module: Module) -> Tuple[Module, bool]:
        changed = False
        for func in list(module):
            if func.name == self.program.entry:
                continue
            candidate = copy.deepcopy(module)
            candidate.functions.pop(func.name, None)
            if self.holds(candidate):
                module, changed = candidate, True
        keep = set(self.program.output_objects)
        for name in list(module.globals):
            if name in keep:
                continue
            candidate = copy.deepcopy(module)
            candidate.globals.pop(name, None)
            if self.holds(candidate):
                module, changed = candidate, True
        return module, changed

    # -- driver -------------------------------------------------------

    def run(self) -> ReductionResult:
        module = copy.deepcopy(self.program.module)
        initial = count_instructions(module)
        rounds = 0
        while self.checks < self.max_checks:
            rounds += 1
            any_change = False
            for shrink in (
                self.collapse_branches,
                self.thread_jumps,
                self.delete_instructions,
                self.stub_defs,
                self.shrink_constants,
                self.sweep_dead,
            ):
                module, changed = shrink(module)
                any_change = any_change or changed
            if not any_change:
                break
        reduced = dataclasses.replace(self.program, module=module)
        return ReductionResult(
            program=reduced,
            oracle=self.oracle.name,
            fingerprint=self.fingerprint,
            initial_instructions=initial,
            final_instructions=count_instructions(module),
            rounds=rounds,
            checks=self.checks,
        )


def reduce_program(
    program: FuzzProgram,
    oracle: Oracle,
    fingerprint: str,
    max_checks: int = 5000,
) -> ReductionResult:
    """Shrink ``program`` while ``oracle`` keeps failing with
    ``fingerprint``.

    The original failure must reproduce up front; otherwise the finding
    is flaky (it should not be — everything here is deterministic) and
    reduction refuses to start.
    """
    reducer = _Reducer(program, oracle, fingerprint, max_checks)
    if not reducer.holds(copy.deepcopy(program.module)):
        raise ValueError(
            f"failure {fingerprint} does not reproduce on the original "
            f"program {program.name}; refusing to reduce"
        )
    return reducer.run()


# -- module surgery helpers -------------------------------------------


def _body_sites(module: Module) -> List[Tuple[str, str, int]]:
    """Every non-terminator instruction as a stable (fn, label, idx)."""
    sites = []
    for func in module:
        for label, block in func.blocks.items():
            for idx, inst in enumerate(block.instructions):
                if not inst.is_terminator:
                    sites.append((func.name, label, idx))
    return sites


def _delete_sites(
    module: Module, sites: Iterable[Tuple[str, str, int]]
) -> None:
    for fname, label, idx in sorted(sites, reverse=True):
        del module.get_function(fname).blocks[label].instructions[idx]


def _redirect_label(func, label: str, target: str) -> None:
    """Point every terminator reference to ``label`` at ``target``."""
    for block in func:
        term = block.terminator
        if isinstance(term, Jump) and term.target == label:
            term.target = target
        elif isinstance(term, Branch):
            if term.if_true == label:
                term.if_true = target
            if term.if_false == label:
                term.if_false = target


def _smaller_values(operand: Constant) -> Tuple:
    """Candidate replacements for an immediate, simplest first."""
    if operand.type is Type.F64:
        return () if operand.value in (0.0, 1.0) else (0.0, 1.0)
    if operand.value in (0, 1):
        return ()
    return (0, 1) if operand.value > 1 or operand.value < 0 else ()


def _drop_unreachable(module: Module) -> None:
    for func in module:
        reachable = func.reachable_labels()
        for label in [l for l in func.blocks if l not in reachable]:
            del func.blocks[label]
