"""Budgeted, journaled, parallel differential-fuzzing campaigns.

A fuzz campaign enumerates program indices ``start .. start+budget-1``;
index ``i`` deterministically names the program generated from
``derive_program_seed(seed, i)``, so — exactly like SFI trials — the
work partitions across processes in any chunking whatsoever and still
produces the serial result bit for bit.  The architecture deliberately
mirrors :mod:`repro.runtime.parallel`: workers are initialised once
with a small picklable payload, claim index chunks, and the driver
merges results back into index order.

**Journal.** Every completed program appends one JSON line to an
optional journal file (same discipline as
:mod:`repro.runtime.journal`): a header pins the campaign identity —
seed, generator profile, oracle list, campaign-oracle sampling stride,
and the full generator configuration — and records follow *in index
order* (an in-memory hold-back buffer delays out-of-order parallel
completions).  Nothing nondeterministic (wall clock, job count, host)
is ever written, so the SHA-256 of the journal bytes doubles as the
campaign fingerprint: two runs agree iff their journals are
bit-identical.  Resume works like SFI campaigns: records already in
the journal are trusted and skipped, new ones are appended.

**Dedup and corpus.** Findings are deduplicated by ``(oracle,
fingerprint)`` — the coarse failure class, not the concrete program —
and only the *first* failing index of each class (in index order, so
independent of ``jobs``) is delta-debugged into a minimal repro, which
is written to the corpus directory as ``<oracle>-<fingerprint>.ir``
with its replay command in the header.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generator import (
    PROFILES,
    derive_program_seed,
    generate_program,
)
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    ORACLE_REGISTRY,
    make_oracles,
    run_oracles,
)
from repro.fuzz.reduce import ReductionResult, count_instructions, reduce_program
from repro.runtime.parallel import default_chunk_size, _pool_context

JOURNAL_VERSION = 1

#: Run the (expensive, pool-spawning) campaign-equivalence oracle on
#: every Nth program rather than all of them.
DEFAULT_CAMPAIGN_EVERY = 25


@dataclasses.dataclass(frozen=True)
class FuzzSettings:
    """Everything that identifies a campaign's work (journal header)."""

    seed: int = 0
    profile: str = "default"
    oracles: Tuple[str, ...] = DEFAULT_ORACLES
    campaign_every: int = DEFAULT_CAMPAIGN_EVERY

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; "
                f"expected {sorted(PROFILES)}"
            )
        unknown = [n for n in self.oracles if n not in ORACLE_REGISTRY]
        if unknown:
            raise ValueError(f"unknown oracle(s) {unknown}")

    def header(self) -> Dict:
        return {
            "kind": "fuzz-journal",
            "version": JOURNAL_VERSION,
            "seed": self.seed,
            "profile": self.profile,
            "generator": PROFILES[self.profile].key(),
            "oracles": list(self.oracles),
            "campaign_every": self.campaign_every,
        }


@dataclasses.dataclass(frozen=True)
class FuzzRecord:
    """One fuzzed program's outcome (one journal line)."""

    index: int
    program_seed: int
    name: str
    instructions: int
    failures: Tuple[Dict, ...] = ()

    def to_json(self) -> Dict:
        record = {
            "index": self.index,
            "program_seed": self.program_seed,
            "name": self.name,
            "instructions": self.instructions,
        }
        if self.failures:
            record["failures"] = list(self.failures)
        return record

    @classmethod
    def from_json(cls, data: Dict) -> "FuzzRecord":
        return cls(
            index=data["index"],
            program_seed=data["program_seed"],
            name=data["name"],
            instructions=data["instructions"],
            failures=tuple(data.get("failures", ())),
        )


@dataclasses.dataclass
class FuzzResult:
    """A finished (or finished-so-far) campaign."""

    settings: FuzzSettings
    records: List[FuzzRecord]
    reductions: List[ReductionResult]
    executed: int
    resumed: int
    elapsed: float
    jobs: int

    @property
    def failures(self) -> List[Tuple[int, Dict]]:
        return [
            (record.index, failure)
            for record in self.records
            for failure in record.failures
        ]

    @property
    def unique_failures(self) -> Dict[Tuple[str, str], Tuple[int, Dict]]:
        """First failing index per (oracle, fingerprint), index order."""
        unique: Dict[Tuple[str, str], Tuple[int, Dict]] = {}
        for index, failure in self.failures:
            key = (failure["oracle"], failure["fingerprint"])
            unique.setdefault(key, (index, failure))
        return unique

    def fingerprint(self) -> str:
        """Campaign digest: the journal bytes this run (re)produces."""
        payload = json.dumps(self.settings.header(), sort_keys=True)
        lines = [payload] + [
            json.dumps(record.to_json(), sort_keys=True)
            for record in self.records
        ]
        return hashlib.sha256(
            ("\n".join(lines) + "\n").encode()
        ).hexdigest()

    def summary(self) -> str:
        per_oracle: Dict[str, int] = {}
        for _, failure in self.failures:
            per_oracle[failure["oracle"]] = (
                per_oracle.get(failure["oracle"], 0) + 1
            )
        lines = [
            f"programs          {len(self.records)}",
            f"failures          {len(self.failures)}",
            f"unique failures   {len(self.unique_failures)}",
        ]
        for name in self.settings.oracles:
            if name in per_oracle:
                lines.append(f"  {name:<16}{per_oracle[name]}")
        for key, (index, _) in sorted(self.unique_failures.items()):
            lines.append(f"  {key[0]}:{key[1]}  first at program {index}")
        for reduction in self.reductions:
            lines.append(
                f"reduced {reduction.oracle}:{reduction.fingerprint}  "
                f"{reduction.initial_instructions} -> "
                f"{reduction.final_instructions} instructions"
            )
        lines.append(f"fingerprint       {self.fingerprint()}")
        return "\n".join(lines)


# -- journal ----------------------------------------------------------


class FuzzJournal:
    """Append-only JSONL journal, in index order, torn-tail tolerant."""

    def __init__(self, path, settings: FuzzSettings) -> None:
        self.path = Path(path)
        self.settings = settings
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = open(self.path, "a", encoding="utf-8")
        if not exists:
            self._write(settings.header())

    def _write(self, payload: Dict) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, record: FuzzRecord) -> None:
        self._write(record.to_json())

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "FuzzJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_fuzz_journal(path) -> Tuple[Dict, Dict[int, FuzzRecord]]:
    """Read a journal back; tolerates a torn final line."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"fuzz journal {path} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != "fuzz-journal":
        raise ValueError(f"{path} is not a fuzz journal")
    records: Dict[int, FuzzRecord] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = FuzzRecord.from_json(json.loads(line))
        except (json.JSONDecodeError, KeyError):
            if lineno == len(lines):  # torn tail from a crash mid-write
                break
            raise ValueError(f"{path}:{lineno}: corrupt journal record")
        records[record.index] = record
    return header, records


def validate_fuzz_resume(header: Dict, settings: FuzzSettings) -> None:
    expected = settings.header()
    mismatched = [
        key for key in expected
        if header.get(key) != expected[key]
    ]
    if mismatched:
        raise ValueError(
            "fuzz journal does not match this campaign "
            f"(mismatched: {', '.join(sorted(mismatched))}); "
            "refusing to resume"
        )


# -- one program ------------------------------------------------------


def run_program(settings: FuzzSettings, index: int) -> FuzzRecord:
    """Generate and check program ``index`` — the unit of fuzz work."""
    program_seed = derive_program_seed(settings.seed, index)
    program = generate_program(program_seed, PROFILES[settings.profile])
    names = [
        name for name in settings.oracles
        if name != "campaign" or (
            settings.campaign_every > 0
            and index % settings.campaign_every == 0
        )
    ]
    failures = run_oracles(program, make_oracles(names))
    return FuzzRecord(
        index=index,
        program_seed=program_seed,
        name=program.name,
        instructions=count_instructions(program.module),
        failures=tuple(
            {
                "oracle": f.oracle,
                "kind": f.kind,
                "fingerprint": f.fingerprint,
                "detail": f.detail,
            }
            for f in failures
        ),
    )


# -- parallel workers -------------------------------------------------

_WORKER_SETTINGS: Optional[FuzzSettings] = None


def _init_worker(settings: FuzzSettings) -> None:
    global _WORKER_SETTINGS
    _WORKER_SETTINGS = settings


def _run_chunk(indices: Sequence[int]) -> List[Tuple[int, Dict]]:
    assert _WORKER_SETTINGS is not None
    return [
        (index, run_program(_WORKER_SETTINGS, index).to_json())
        for index in indices
    ]


# -- the campaign -----------------------------------------------------


def run_fuzz_campaign(
    settings: FuzzSettings,
    budget: int,
    start: int = 0,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    journal: Optional[FuzzJournal] = None,
    completed: Optional[Dict[int, FuzzRecord]] = None,
    corpus_dir=None,
    reduce: bool = True,
    max_reduce_checks: int = 2000,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzResult:
    """Fuzz ``budget`` programs; dedup, reduce, and journal findings.

    ``completed`` (from :func:`load_fuzz_journal`) seeds the campaign
    with already-finished indices; only the remainder executes, and
    only newly-executed records are appended to ``journal``.  The
    returned record list always covers the full index range in order,
    so resumed campaigns summarize identically to uninterrupted ones.
    """
    started = time.monotonic()
    indices = list(range(start, start + budget))
    completed = dict(completed or {})
    pending = [i for i in indices if i not in completed]
    results: Dict[int, FuzzRecord] = {
        i: completed[i] for i in indices if i in completed
    }
    done_count = len(results)
    total = len(indices)

    # The hold-back buffer: records enter in completion order but leave
    # for the journal strictly in index order, so parallel journals are
    # byte-identical to serial ones.
    emitted: Dict[int, FuzzRecord] = {}
    emit_cursor = [0]

    def emit(record: FuzzRecord) -> None:
        emitted[record.index] = record
        while emit_cursor[0] < len(pending):
            expected = pending[emit_cursor[0]]
            if expected not in emitted:
                break
            if journal is not None:
                journal.append(emitted[expected])
            emit_cursor[0] += 1

    if jobs <= 1 or len(pending) <= 1:
        for index in pending:
            record = run_program(settings, index)
            results[index] = record
            emit(record)
            done_count += 1
            if progress:
                progress(done_count, total)
    else:
        chunk = chunk_size or default_chunk_size(len(pending), jobs)
        chunks = [
            pending[i:i + chunk] for i in range(0, len(pending), chunk)
        ]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)),
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(settings,),
        ) as pool:
            futures = {pool.submit(_run_chunk, c): c for c in chunks}
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    for index, data in future.result():
                        record = FuzzRecord.from_json(data)
                        results[index] = record
                        emit(record)
                        done_count += 1
                    if progress:
                        progress(done_count, total)

    records = [results[i] for i in indices]
    result = FuzzResult(
        settings=settings,
        records=records,
        reductions=[],
        executed=len(pending),
        resumed=total - len(pending),
        elapsed=0.0,
        jobs=jobs,
    )

    if reduce:
        result.reductions = reduce_findings(
            result, corpus_dir=corpus_dir,
            max_checks=max_reduce_checks,
        )

    result.elapsed = time.monotonic() - started
    return result


def reduce_findings(
    result: FuzzResult,
    corpus_dir=None,
    max_checks: int = 2000,
) -> List[ReductionResult]:
    """Shrink the first witness of each unique failure; fill the corpus.

    Runs in the driver process, in sorted ``(oracle, fingerprint)``
    order — byte-identical output for any ``jobs``.  A finding whose
    failure refuses to reproduce (it never should) is skipped rather
    than aborting the campaign.
    """
    settings = result.settings
    reductions: List[ReductionResult] = []
    if corpus_dir is not None:
        corpus_dir = Path(corpus_dir)
        corpus_dir.mkdir(parents=True, exist_ok=True)
    for (oracle_name, fingerprint), (index, _failure) in sorted(
        result.unique_failures.items()
    ):
        program_seed = derive_program_seed(settings.seed, index)
        program = generate_program(
            program_seed, PROFILES[settings.profile]
        )
        oracle = make_oracles([oracle_name])[0]
        try:
            reduction = reduce_program(
                program, oracle, fingerprint, max_checks=max_checks
            )
        except ValueError:
            continue
        reduction.profile = settings.profile
        reductions.append(reduction)
        if corpus_dir is not None:
            path = corpus_dir / f"{oracle_name}-{fingerprint}.ir"
            path.write_text(reduction.render() + "\n", encoding="utf-8")
    return reductions
