"""Seeded random program synthesis for the differential fuzzer.

Every program is a pure function of ``(seed, GeneratorConfig)``: the
generator drives a SHA-256-keyed :class:`random.Random` substream
through the :class:`repro.workloads.synth.Kit` combinators, so the same
seed reproduces the same module on any machine, in any process, under
any ``PYTHONHASHSEED``.  The emitted program space is deliberately much
richer than the old diamond-chain of ``tests/test_property_based.py``:
nested counted/while loops, if/else ladders, helper-function calls,
aliased pointer accesses through descriptor cells (the
``indirect_handle`` idiom), opaque external calls, and mixed int/float
arithmetic — while staying inside three hard safety envelopes:

* **trap-free** — memory indices are masked to power-of-two object
  sizes, divisors are non-zero constants, square roots go through
  ``fabs``, and float magnitudes are clamped after every operation so
  no ``inf``/``nan`` can enter the output comparison;
* **terminating** — every loop has a bounded trip count (counted loops
  by construction, while loops via a strictly decreasing counter);
* **well-formed** — registers defined inside conditional arms never
  escape their arm (the interpreter would fault on an undefined read),
  and :func:`repro.ir.verify_module` runs on every emitted module.

The WAR idioms (:meth:`Kit.lcg`, :meth:`Kit.checksum_into`) are woven
in so the programs exercise Encore's non-idempotent instrumentation
paths, not just trivially idempotent straight-line code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import Module, Type, verify_module
from repro.ir.values import Constant, VirtualRegister
from repro.workloads.synth import Kit, new_workload


def derive_program_seed(seed: int, index: int) -> int:
    """Key program ``index`` of a campaign off its own RNG substream.

    The same SHA-256 construction as
    :func:`repro.runtime.sfi.derive_trial_seed`: stable across
    processes and Python versions, which is what makes parallel fuzz
    campaigns bit-identical to serial ones.
    """
    digest = hashlib.sha256(f"fuzz:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the program space; part of every program's identity."""

    #: Top-level statements emitted into ``main``.
    max_stmts: int = 7
    #: Maximum nesting depth of loops/conditionals.
    max_depth: int = 3
    #: Loop trip counts are drawn from ``1..max_trip``.
    max_trip: int = 5
    #: Number of integer global arrays (power-of-two ``global_size``).
    int_globals: int = 2
    #: Number of float global arrays.
    float_globals: int = 1
    #: Size of every global array; must be a power of two (indices are
    #: masked, which is what keeps generated programs trap-free).
    global_size: int = 8
    #: Helper functions ``main`` may call (0 disables calls).
    helpers: int = 2
    #: Emit float arithmetic (clamped, nan/inf-free).
    float_ops: bool = True
    #: Emit aliased pointer accesses through descriptor cells.
    pointers: bool = True
    #: Emit opaque external calls (classified *unknown* by analysis).
    externals: bool = True
    #: Worker threads ``main`` spawns and joins (0 disables the thread
    #: grammar entirely — no spawn/join, no extra RNG draws, so profiles
    #: without threads generate byte-identical programs to before the
    #: knob existed).
    threads: int = 0

    def __post_init__(self) -> None:
        if self.global_size & (self.global_size - 1):
            raise ValueError("global_size must be a power of two")
        if self.threads < 0:
            raise ValueError("threads must be >= 0")

    def key(self) -> str:
        """Canonical identity string (journal headers, fingerprints).

        ``threads`` is omitted at its default so every pre-existing
        journal header and campaign fingerprint is preserved verbatim.
        """
        fields = dataclasses.asdict(self)
        if not fields["threads"]:
            del fields["threads"]
        return json.dumps(fields, sort_keys=True, separators=(",", ":"))


#: Small program space for property-based tests: cheap to compile and
#: execute under hypothesis' example budget, same statement grammar.
SMALL = GeneratorConfig(max_stmts=4, max_depth=2, max_trip=4,
                        int_globals=2, float_globals=1, helpers=1)

#: Multithreaded program space: the default grammar plus two spawned
#: worker threads.  Workers are pure compute over private state, so
#: every generated program stays trap-free, terminating, and
#: schedule-invariant — the oracles' golden-vs-variant comparisons
#: remain sound even though instrumentation shifts the interleaving.
THREADS = GeneratorConfig(max_stmts=5, threads=2)

#: Named generator profiles, addressable from the CLI and journals.
PROFILES = {
    "default": GeneratorConfig(),
    "small": SMALL,
    "threads": THREADS,
}


@dataclasses.dataclass
class FuzzProgram:
    """One generated program plus everything needed to execute it."""

    name: str
    module: Module
    output_objects: Tuple[str, ...]
    seed: int
    config: Optional[GeneratorConfig] = None
    args: Tuple = ()
    entry: str = "main"
    #: Thread budget an execution needs (main + spawned workers).
    #: Oracles forward this wherever a campaign pins ``threads``.
    threads: int = 1


def _ext_sink(args: Sequence) -> int:
    """The opaque library call generated programs may invoke."""
    return 0


#: Externals mapping for generated programs (picklable by reference,
#: so fuzz campaigns can cross process boundaries).
EXTERNALS: Dict[str, object] = {"fuzz_sink": _ext_sink}

_INT_OPS = ("add", "sub", "mul", "and", "or", "xor", "min", "max")
_FLOAT_OPS = ("fadd", "fsub", "fmul", "fmin", "fmax")
_INT_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")
_FLOAT_CLAMP = 1.0e6


class _ProgramBuilder:
    """One generation run: owns the RNG, the value pools, the module."""

    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.seed = seed
        self.config = config
        self.rng = random.Random(derive_program_seed(seed, 0))
        self.module, self.kit = new_workload(f"fuzz_{seed}")
        self.b = self.kit.b
        self.mask = config.global_size - 1
        self.int_pool: List[object] = []
        self.float_pool: List[object] = []
        self.helper_names: List[str] = []

    # -- value plumbing -------------------------------------------------

    def pick_int(self):
        """An int operand: usually from the pool, sometimes a literal."""
        if self.int_pool and self.rng.random() < 0.8:
            return self.rng.choice(self.int_pool)
        return self.rng.randint(-64, 255)

    def pick_float(self):
        if self.float_pool and self.rng.random() < 0.8:
            return self.rng.choice(self.float_pool)
        return round(self.rng.uniform(-4.0, 4.0), 3)

    def masked_index(self, mask: Optional[int] = None):
        """An in-bounds index register: ``value & (size - 1)``."""
        return self.b.and_(self.pick_int(), self.mask if mask is None else mask)

    def clamped(self, reg):
        """Bound a float register's magnitude so chains can't reach inf."""
        bounded = self.b.binop("fmax", reg, -_FLOAT_CLAMP)
        return self.b.binop("fmin", bounded, _FLOAT_CLAMP)

    def int_global(self):
        return self.rng.choice(self.int_objs)

    # -- statement grammar ----------------------------------------------

    def stmt_arith(self, depth: int) -> None:
        for _ in range(self.rng.randint(1, 3)):
            op = self.rng.choice(_INT_OPS)
            dest = self.b.binop(op, self.pick_int(), self.pick_int())
            self.int_pool.append(dest)
        if self.rng.random() < 0.3:
            # Division by a non-zero literal stays trap-free.
            divisor = self.rng.choice([2, 3, 5, 7, -3])
            op = self.rng.choice(["sdiv", "srem"])
            self.int_pool.append(self.b.binop(op, self.pick_int(), divisor))
        if self.rng.random() < 0.3:
            shift = self.rng.randint(0, 7)
            op = self.rng.choice(["shl", "lshr", "ashr"])
            self.int_pool.append(self.b.binop(op, self.pick_int(), shift))

    def stmt_memory(self, depth: int) -> None:
        obj = self.int_global()
        if self.rng.random() < 0.5:
            self.int_pool.append(self.b.load(obj, self.masked_index()))
        else:
            self.b.store(obj, self.masked_index(), self.pick_int())

    def stmt_rmw(self, depth: int) -> None:
        """A deliberate WAR site: load-modify-store on one cell."""
        if self.rng.random() < 0.5:
            self.int_pool.append(
                self.kit.lcg(self.int_global(), self.rng.randrange(
                    self.config.global_size))
            )
        else:
            self.kit.checksum_into(
                self.int_global(),
                self.rng.randrange(self.config.global_size),
                self.pick_int(),
            )

    def stmt_float(self, depth: int) -> None:
        if not self.float_pool:
            seeded = self.b.unop("sitofp", self.b.and_(self.pick_int(), 255))
            self.float_pool.append(seeded)
        for _ in range(self.rng.randint(1, 2)):
            roll = self.rng.random()
            if roll < 0.6:
                dest = self.b.binop(self.rng.choice(_FLOAT_OPS),
                                    self.pick_float(), self.pick_float())
            elif roll < 0.8:
                dest = self.b.unop(self.rng.choice(["fneg", "fabs"]),
                                   self.pick_float())
            else:
                dest = self.b.unop(
                    "fsqrt", self.b.unop("fabs", self.pick_float()))
            self.float_pool.append(self.clamped(dest))
        if self.float_objs and self.rng.random() < 0.5:
            obj = self.rng.choice(self.float_objs)
            if self.rng.random() < 0.5:
                self.float_pool.append(self.b.load(obj, self.masked_index()))
            else:
                self.b.store(obj, self.masked_index(), self.pick_float())

    def stmt_pointer(self, depth: int) -> None:
        """Aliased access through a descriptor cell (+ pointer math).

        The pointer round-trips through memory, so its points-to set is
        TOP under static alias analysis — the idiom behind the paper's
        Static-vs-Optimistic overhead gap.  Offsets are arranged so
        ``base_offset + step + masked_index < global_size``.
        """
        quarter = max(self.config.global_size // 4, 1)
        obj = self.int_global()
        base = self.rng.randrange(quarter)
        ptr = self.b.addrof(obj, base)
        self.b.store(self.desc_obj, self.desc_slot, ptr)
        handle = self.b.load(self.desc_obj, self.desc_slot,
                             dest=self.b.fresh("hp", Type.PTR))
        if self.rng.random() < 0.5:
            step = self.rng.randrange(quarter)
            handle = self.b.binop("add", handle, step,
                                  dest=self.b.fresh("hp", Type.PTR))
        index = self.masked_index(quarter * 2 - 1)
        if self.rng.random() < 0.5:
            self.int_pool.append(self.b.load(handle, index))
        else:
            self.b.store(handle, index, self.pick_int())

    def stmt_call(self, depth: int) -> None:
        callee = self.rng.choice(self.helper_names)
        self.int_pool.append(self.b.call(callee, [self.pick_int()]))

    def stmt_external(self, depth: int) -> None:
        self.b.call("fuzz_sink", [self.pick_int()], returns=False)

    def stmt_if(self, depth: int) -> None:
        cond = self.b.cmp(self.rng.choice(_INT_PREDS),
                          self.pick_int(), self.pick_int())
        if self.rng.random() < 0.5:
            self.kit.if_then(cond, self.scoped_body(depth + 1), "fz_if")
        else:
            self.kit.if_else(cond, self.scoped_body(depth + 1),
                             self.scoped_body(depth + 1), "fz_if")

    def stmt_for(self, depth: int) -> None:
        trip = self.rng.randint(1, self.config.max_trip)

        def body(i) -> None:
            # The induction register is defined before the loop and on
            # every path through it, so it may join the pool for good.
            self.int_pool.append(i)
            self.emit_block(depth + 1)

        self.kit.counted(trip, body, "fz_for")

    def stmt_while(self, depth: int) -> None:
        """A while loop with a strictly decreasing memory counter.

        The counter lives in ``loopctl``, a control object the statement
        grammar never stores to: a random store into the counter cell
        could re-arm the loop every iteration and lose termination.
        Nested loops may share a slot — an inner loop always leaves its
        slot at zero, so the outer loop's next decrement-and-test still
        exits.
        """
        obj = self.ctl_obj
        cell = self.while_count % obj.size
        self.while_count += 1
        self.b.store(obj, cell, self.rng.randint(1, self.config.max_trip))

        def cond():
            return self.b.cmp("sgt", self.b.load(obj, cell), 0)

        def body() -> None:
            self.emit_block(depth + 1)
            # Re-load inside the body: the decrement is itself a WAR.
            self.b.store(obj, cell, self.b.sub(self.b.load(obj, cell), 1))

        self.kit.while_loop(cond, body, "fz_while")

    # -- block / program assembly ---------------------------------------

    def scoped_body(self, depth: int):
        """A body callback whose definitions do not escape the arm.

        Registers defined inside a conditional arm are only assigned on
        that arm's path; letting them escape into the operand pool would
        generate reads of never-written registers on the other path.
        """

        def body() -> None:
            int_mark = len(self.int_pool)
            float_mark = len(self.float_pool)
            self.emit_block(depth)
            del self.int_pool[int_mark:]
            del self.float_pool[float_mark:]

        return body

    def emit_block(self, depth: int) -> None:
        kinds: List = [self.stmt_arith, self.stmt_memory, self.stmt_rmw]
        weights = [3, 3, 2]
        if self.config.float_ops:
            kinds.append(self.stmt_float)
            weights.append(2)
        if self.config.pointers:
            kinds.append(self.stmt_pointer)
            weights.append(1)
        if self.helper_names:
            kinds.append(self.stmt_call)
            weights.append(1)
        if self.config.externals and self.rng.random() < 0.15:
            kinds.append(self.stmt_external)
            weights.append(1)
        if depth < self.config.max_depth:
            kinds.extend([self.stmt_if, self.stmt_for, self.stmt_while])
            weights.extend([2, 2, 1])
        count = self.rng.randint(1, max(1, self.config.max_stmts - depth))
        for _ in range(count):
            self.rng.choices(kinds, weights=weights, k=1)[0](depth)

    def build_helper(self, index: int) -> None:
        """A small callee: params, a WAR on its own stats, a result."""
        from repro.ir import IRBuilder

        name = f"helper{index}"
        stats = self.module.add_global(f"{name}_stats",
                                       self.config.global_size)
        fn = self.module.add_function(
            name, params=[VirtualRegister(f"arg{index}")])
        b = IRBuilder(fn)
        kit = Kit(b)
        b.block("entry")
        arg = fn.params[0]
        acc = b.and_(arg, 255)
        if self.rng.random() < 0.5:
            trip = self.rng.randint(1, self.config.max_trip)

            def body(i):
                cur = b.load(stats, b.and_(i, self.mask))
                b.store(stats, b.and_(i, self.mask), b.add(cur, acc))

            kit.counted(trip, body, "hl")
        else:
            cur = b.load(stats, 0)
            b.store(stats, 0, b.add(cur, acc))
        b.ret(b.add(acc, index + 1))

    def build_worker(self, index: int) -> str:
        """A spawnable worker: pure compute over its own private buffer.

        The safety envelope for threads is *schedule-invariance*: a
        worker reads only its argument and its private global (which
        nothing else touches), so its join result — the only thing main
        observes — is the same under every interleaving.  That keeps
        golden-vs-instrumented comparisons sound even though the
        instrumented run switches threads at different event indices.
        Indices are masked and the loop is counted, so workers inherit
        the trap-free/terminating envelope too.
        """
        from repro.ir import IRBuilder

        name = f"tworker{index}"
        buf = self.module.add_global(f"{name}_buf", self.config.global_size,
                                     init=self._int_init(index))
        fn = self.module.add_function(
            name, params=[VirtualRegister(f"tw{index}")])
        b = IRBuilder(fn)
        kit = Kit(b)
        b.block("entry")
        acc = b.fresh("acc")
        b.mov(b.and_(fn.params[0], 255), acc)
        trip = self.rng.randint(2, self.config.max_trip + 2)

        def body(i):
            idx = b.and_(b.add(i, acc), self.mask)
            cur = b.load(buf, idx)
            b.store(buf, idx, b.and_(b.add(cur, b.xor(acc, i)), 255))
            b.add(acc, cur, acc)
            b.and_(acc, (1 << 31) - 1, acc)

        kit.counted(trip, body, "tw")
        b.ret(acc)
        return name

    def build(self) -> FuzzProgram:
        config = self.config
        self.int_objs = [
            self.module.add_global(f"gi{i}", config.global_size,
                                   init=self._int_init(i))
            for i in range(max(config.int_globals, 1))
        ]
        self.float_objs = [
            self.module.add_global(f"gf{i}", config.global_size,
                                   init=self._float_init(i))
            for i in range(config.float_globals if config.float_ops else 0)
        ]
        self.out_obj = self.module.add_global("out", config.global_size)
        self.ctl_obj = self.module.add_global("loopctl", 8)
        self.while_count = 0
        if config.pointers:
            self.desc_obj = self.module.add_global("desc", 2)
            self.desc_slot = 0
        if config.externals:
            self.module.declare_external("fuzz_sink")
        for i in range(self.rng.randint(0, config.helpers)):
            self.build_helper(i)
            self.helper_names.append(f"helper{i}")
        worker_names = [self.build_worker(i) for i in range(config.threads)]

        self.b.block("entry")
        self.int_pool.append(self.b.mov(self.seed & 0xFF))
        self.int_pool.append(self.b.load(self.int_objs[0], 0))
        # Spawn every worker up front and join after the random body, so
        # workers run interleaved with main's statements but their
        # results are only observed post-join (schedule-invariant).
        tids = [self.b.spawn(name, [self.pick_int()])
                for name in worker_names]
        self.emit_block(0)
        for tid in tids:
            self.int_pool.append(self.b.join(tid))

        # Fold the live pools into the output object so every program
        # has observable, deterministic memory output.
        for slot in range(min(4, config.global_size)):
            self.kit.checksum_into(self.out_obj, slot, self.pick_int())
        if self.float_objs:
            total = self.b.mov(0.0)
            for _ in range(2):
                total = self.clamped(
                    self.b.binop("fadd", total, self.pick_float()))
            self.b.store(self.float_objs[0], 0, total)
        self.b.ret(self.b.and_(self.pick_int(), (1 << 31) - 1))

        verify_module(self.module)
        outputs = ["out"] + [obj.name for obj in self.float_objs[:1]]
        return FuzzProgram(
            name=self.module.name,
            module=self.module,
            output_objects=tuple(outputs),
            seed=self.seed,
            config=config,
            threads=config.threads + 1,
        )

    def _int_init(self, which: int) -> List[int]:
        return [self.rng.randint(0, 255)
                for _ in range(self.config.global_size)]

    def _float_init(self, which: int) -> List[float]:
        return [round(self.rng.uniform(-1.0, 1.0), 4)
                for _ in range(self.config.global_size)]


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> FuzzProgram:
    """Synthesize one verified, trap-free, terminating program.

    Reproducible from ``(seed, config)`` alone; the returned module has
    already passed :func:`repro.ir.verify_module`.
    """
    return _ProgramBuilder(seed, config or GeneratorConfig()).build()


def program_strategy(config: Optional[GeneratorConfig] = None):
    """A hypothesis strategy over the generator's program space.

    Lazily imports hypothesis so the fuzzer itself carries no test-only
    dependency; property tests and the campaign driver share exactly
    one program space through this function.
    """
    from hypothesis import strategies as st

    cfg = config or SMALL
    return st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda seed: generate_program(seed, cfg)
    )
