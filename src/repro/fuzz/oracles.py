"""The differential oracle suite: what "correct" means, checkable per program.

Every oracle takes one generated :class:`~repro.fuzz.generator.
FuzzProgram` and returns the list of :class:`OracleFailure` it found
(empty when the program upholds the property).  The suite covers the
safety argument of the paper end to end:

* ``semantic``     — Encore instrumentation preserves program semantics
  under every granularity/alias-mode configuration (Section 3.5's
  "re-execution is transparent" claim);
* ``conservative`` — the static idempotence analysis (Equations 1–4)
  never calls a region idempotent that exhibits a dynamic WAR
  (:mod:`repro.runtime.traces` is the ground truth);
* ``opt``          — the optimizer pass mix is semantics-preserving;
* ``rollback``     — checkpoint/rollback restores exact state: a
  recovery triggered with *no* fault injected must reproduce the golden
  output, and planned SFI trials must be replay-deterministic;
* ``campaign``     — a parallel (``jobs=2``) SFI campaign is
  bit-identical to the serial one.

Failure fingerprints are deliberately coarse — ``oracle:kind`` with the
offending configuration but never concrete values — so a fingerprint
survives test-case reduction: the reducer shrinks a program while
preserving the fingerprint, not the exact mismatch bytes.

**Planted defects** (test-only): setting the ``ENCORE_FUZZ_DEFECT``
environment variable arms a deliberate miscompile so the fuzzer's
find-and-reduce loop can be exercised end to end:

* ``opt-swap-add``   — the first surviving ``add`` in ``main`` is
  silently rewritten to ``sub`` after optimization;
* ``drop-ckpt-mem``  — the first ``ckpt_mem`` of the instrumented
  module is deleted, so rollback restores stale memory.

The environment variable crosses fork boundaries, so planted defects
are visible to parallel campaigns too.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
from typing import Dict, List, Optional, Sequence

from repro.encore import EncoreConfig, compile_for_encore
from repro.encore.idempotence import IdempotenceAnalyzer, RegionStatus
from repro.fuzz.generator import EXTERNALS, FuzzProgram
from repro.ir import VerificationError, verify_module
from repro.opt import optimize_module
from repro.runtime import (
    DetectionModel,
    Interpreter,
    plan_trial,
    run_campaign,
    run_planned_trial,
)
from repro.runtime.sfi import golden_run
from repro.runtime.traces import capture_trace, window_war_addresses

#: Test-only escape hatch: plants a deliberate defect (see module docs).
DEFECT_ENV = "ENCORE_FUZZ_DEFECT"

#: Execution guard while checking a candidate (reduction can propose
#: modules that loop; oracles must answer, not hang).
MAX_STEPS = 2_000_000


def planted_defect() -> Optional[str]:
    return os.environ.get(DEFECT_ENV) or None


@dataclasses.dataclass(frozen=True)
class OracleFailure:
    """One violated property.

    ``kind`` is the coarse failure class (stable under reduction);
    ``detail`` carries the concrete evidence for the human reading the
    report and takes no part in the fingerprint.
    """

    oracle: str
    kind: str
    detail: str = ""

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(f"{self.oracle}:{self.kind}".encode())
        return digest.hexdigest()[:12]


class Oracle:
    """Base class: ``check`` returns the failures found (empty = pass)."""

    name = "oracle"

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        raise NotImplementedError

    def fail(self, kind: str, detail: str = "") -> OracleFailure:
        return OracleFailure(self.name, kind, detail)


def _run(module, program: FuzzProgram, max_steps: int = MAX_STEPS):
    return Interpreter(module, externals=EXTERNALS, max_steps=max_steps).run(
        program.entry, program.args, output_objects=program.output_objects
    )


def _golden(program: FuzzProgram):
    return _run(copy.deepcopy(program.module), program)


def _bound(golden_events: int) -> int:
    """Step budget for a variant run, relative to the golden one.

    Instrumentation and optimization change execution length by small
    constant factors; 32x headroom is far beyond either, so a variant
    that exceeds it is looping — a real finding, but one that should be
    rejected in milliseconds during reduction rather than ground out
    against the global :data:`MAX_STEPS` limit on every candidate.
    """
    return min(MAX_STEPS, golden_events * 32 + 50_000)


class SemanticEquivalenceOracle(Oracle):
    """Golden vs instrumented execution across the config matrix."""

    name = "semantic"

    #: One configuration per structurally distinct pipeline behaviour:
    #: both granularities, all three alias modes, and pruning disabled.
    CONFIGS = (
        ("interval/static", EncoreConfig()),
        ("interval/optimistic", EncoreConfig(alias_mode="optimistic")),
        ("interval/profiled", EncoreConfig(alias_mode="profiled")),
        ("function/static", EncoreConfig(granularity="function")),
        ("interval/static/nopmin", EncoreConfig(pmin=None)),
        ("interval/static/greedy",
         EncoreConfig(auto_tune=False, gamma=0.0, overhead_budget=10.0)),
    )

    def __init__(self, configs=None) -> None:
        self.configs = configs or self.CONFIGS

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        failures: List[OracleFailure] = []
        golden = _golden(program)
        for label, config in self.configs:
            try:
                report = compile_for_encore(
                    program.module, config, clone=True,
                    function=program.entry, args=program.args,
                    externals=EXTERNALS,
                )
                verify_module(report.module)
                result = _run(report.module, program,
                              max_steps=_bound(golden.events))
            except Exception as exc:  # compile or execution blew up
                failures.append(self.fail(
                    f"crash:{label}", f"{type(exc).__name__}: {exc}"))
                continue
            if result.value != golden.value or result.output != golden.output:
                failures.append(self.fail(
                    f"mismatch:{label}",
                    f"value {golden.value}->{result.value}, "
                    f"output diff on "
                    f"{[k for k in golden.output if golden.output[k] != result.output.get(k)]}",
                ))
        return failures


class IdempotenceConservativenessOracle(Oracle):
    """Static IDEMPOTENT verdicts checked against dynamic WAR truth.

    For each function, the whole-function SEME region is analyzed
    without pruning; a verdict of IDEMPOTENT is falsified by any
    dynamic WAR in an execution of that function (``main`` runs the
    real program; helpers run standalone on a deterministic argument —
    conservativeness must hold for *every* execution, so any witness
    counts).
    """

    name = "conservative"

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        failures: List[OracleFailure] = []
        module = copy.deepcopy(program.module)
        analyzer = IdempotenceAnalyzer(module)
        for func in module:
            if not func.blocks:
                continue
            verdict = analyzer.analyze_region(
                func.name, frozenset(func.reachable_labels()),
                func.entry_label,
            )
            if verdict.status is not RegionStatus.IDEMPOTENT:
                continue
            args = program.args if func.name == program.entry else (
                (7,) * len(func.params)
            )
            trace = capture_trace(
                module, function=func.name, args=args,
                max_steps=MAX_STEPS, externals=EXTERNALS,
            )
            wars = window_war_addresses(trace.records, 0, len(trace.records))
            if wars:
                failures.append(self.fail(
                    "unsound-idempotent",
                    f"{func.name}: static IDEMPOTENT but dynamic WAR on "
                    f"{sorted(wars)[:4]}",
                ))
        return failures


class OptEquivalenceOracle(Oracle):
    """The opt pass mix must not change observable behaviour."""

    name = "opt"

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        golden = _golden(program)
        optimized = copy.deepcopy(program.module)
        try:
            optimize_module(optimized)
            if planted_defect() == "opt-swap-add":
                _plant_swap_add(optimized, program.entry)
            verify_module(optimized)
            result = _run(optimized, program,
                          max_steps=_bound(golden.events))
        except Exception as exc:
            return [self.fail("crash", f"{type(exc).__name__}: {exc}")]
        if result.value != golden.value or result.output != golden.output:
            return [self.fail(
                "mismatch",
                f"value {golden.value}->{result.value}, output diff on "
                f"{[k for k in golden.output if golden.output[k] != result.output.get(k)]}",
            )]
        return []


class RollbackExactnessOracle(Oracle):
    """Checkpoint/rollback must restore exact pre-region state.

    Two properties: (1) a recovery triggered with *no fault injected*
    — at several deterministic points of the instrumented execution —
    must reproduce the golden output exactly (rollback + re-execution
    is the identity); (2) planned SFI trials replay deterministically:
    the same :class:`FaultPlan` twice yields the same
    :class:`TrialResult`.
    """

    name = "rollback"

    #: Fractions of the instrumented run at which to force a recovery.
    TRIGGER_POINTS = (0.25, 0.5, 0.85)
    SFI_TRIALS = 4

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        failures: List[OracleFailure] = []
        golden = _golden(program)
        config = EncoreConfig(auto_tune=False, gamma=0.0,
                              overhead_budget=10.0)
        try:
            report = compile_for_encore(
                program.module, config, clone=True,
                function=program.entry, args=program.args,
                externals=EXTERNALS,
            )
            if planted_defect() == "drop-ckpt-mem":
                _plant_drop_ckpt(report.module)
            baseline = _run(report.module, program,
                            max_steps=_bound(golden.events))
        except Exception as exc:
            return [self.fail("crash", f"{type(exc).__name__}: {exc}")]
        if not report.selected_regions:
            return []

        for point in self.TRIGGER_POINTS:
            site = max(1, int(baseline.events * point))
            state = {"fired": False}

            def hook(interp, event, _site=site, _state=state):
                if not _state["fired"] and event.index >= _site:
                    _state["fired"] = interp.trigger_recovery()

            try:
                interp = Interpreter(
                    report.module, post_step=hook, externals=EXTERNALS,
                    max_steps=_bound(golden.events) * 2,
                )
                result = interp.run(
                    program.entry, program.args,
                    output_objects=program.output_objects,
                )
            except Exception as exc:
                failures.append(self.fail(
                    "trigger-crash", f"at {point}: {type(exc).__name__}: {exc}"))
                continue
            if state["fired"] and (
                result.value != golden.value or result.output != golden.output
            ):
                failures.append(self.fail(
                    "inexact-restore",
                    f"no-fault recovery at event {site} diverged: value "
                    f"{golden.value}->{result.value}",
                ))

        detector = DetectionModel(dmax=50)
        instrumented_golden = golden_run(
            report.module, program.entry, program.args,
            program.output_objects, externals=EXTERNALS,
            threads=program.threads,
        )
        for index in range(self.SFI_TRIALS):
            plan = plan_trial(program.seed, index,
                              instrumented_golden.events, detector)
            first = run_planned_trial(
                report.module, instrumented_golden, plan,
                function=program.entry, args=program.args,
                output_objects=program.output_objects, externals=EXTERNALS,
                threads=program.threads,
            )
            second = run_planned_trial(
                report.module, instrumented_golden, plan,
                function=program.entry, args=program.args,
                output_objects=program.output_objects, externals=EXTERNALS,
                threads=program.threads,
            )
            if first != second:
                failures.append(self.fail(
                    "nondeterministic-trial",
                    f"trial {index}: {first.outcome} != {second.outcome}",
                ))
        return failures


class ReplayDeterminismOracle(Oracle):
    """The replay detector's ground truth: execution is deterministic.

    Three properties of :mod:`repro.runtime.replay` on a fault-free
    program: (1) recording the chunk log twice yields byte-identical
    digests (the log is a pure function of the program); (2) replaying
    every chunk of the raw program from its entry snapshot reproduces
    the recorded digest — a divergence with no fault injected is a bug
    in the recorder, the snapshot, or the interpreter; (3) the same
    holds on the Encore-instrumented module, which exercises the
    region-boundary chunk seals and checkpoint/restore replay.
    """

    name = "replay"

    CHUNK_SIZE = 32

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        from repro.runtime.replay import record_chunk_log

        if program.threads > 1:
            # Chunked replay cannot reconstruct scheduler state (the
            # campaign layer refuses the replay backend for threads > 1
            # for the same reason), so the property does not apply to
            # spawn-containing programs.
            return []

        failures: List[OracleFailure] = []
        golden = _golden(program)
        try:
            _, first = record_chunk_log(
                copy.deepcopy(program.module), program.entry, program.args,
                program.output_objects, chunk_size=self.CHUNK_SIZE,
                externals=EXTERNALS, max_steps=_bound(golden.events),
            )
            _, second = record_chunk_log(
                copy.deepcopy(program.module), program.entry, program.args,
                program.output_objects, chunk_size=self.CHUNK_SIZE,
                externals=EXTERNALS, max_steps=_bound(golden.events),
            )
        except Exception as exc:
            return [self.fail("crash", f"{type(exc).__name__}: {exc}")]
        if [(r.start_event, r.length, r.digest) for r in first.chunk_log] != [
            (r.start_event, r.length, r.digest) for r in second.chunk_log
        ]:
            failures.append(self.fail(
                "unstable-digest",
                f"chunk logs differ across identical recordings "
                f"({len(first.chunk_log)} vs {len(second.chunk_log)} chunks)",
            ))

        variants = [("raw", copy.deepcopy(program.module))]
        try:
            report = compile_for_encore(
                program.module,
                EncoreConfig(auto_tune=False, gamma=0.0,
                             overhead_budget=10.0),
                clone=True, function=program.entry, args=program.args,
                externals=EXTERNALS,
            )
            variants.append(("instrumented", report.module))
        except Exception as exc:
            failures.append(self.fail(
                "crash", f"instrument: {type(exc).__name__}: {exc}"))
        for label, module in variants:
            try:
                _, recorder = record_chunk_log(
                    module, program.entry, program.args,
                    program.output_objects, chunk_size=self.CHUNK_SIZE,
                    externals=EXTERNALS, max_steps=_bound(golden.events),
                    check=True,
                )
            except Exception as exc:
                failures.append(self.fail(
                    f"crash:{label}", f"{type(exc).__name__}: {exc}"))
                continue
            if recorder.divergences or recorder.end_divergence:
                failures.append(self.fail(
                    f"spurious-divergence:{label}",
                    f"fault-free replay diverged at chunk ends "
                    f"{[end for end, _ in recorder.divergences][:4]}",
                ))
        return failures


class CampaignEquivalenceOracle(Oracle):
    """Serial vs ``jobs=2`` SFI campaigns must be bit-identical."""

    name = "campaign"

    def __init__(self, trials: int = 8, jobs: int = 2) -> None:
        self.trials = trials
        self.jobs = jobs

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        config = EncoreConfig(auto_tune=False, gamma=0.0,
                              overhead_budget=10.0)
        try:
            report = compile_for_encore(
                program.module, config, clone=True,
                function=program.entry, args=program.args,
                externals=EXTERNALS,
            )
        except Exception as exc:
            return [self.fail("crash", f"{type(exc).__name__}: {exc}")]
        detector = DetectionModel(dmax=50)
        kwargs = dict(
            function=program.entry,
            args=program.args,
            output_objects=program.output_objects,
            detector=detector,
            trials=self.trials,
            seed=program.seed,
            externals=EXTERNALS,
            threads=program.threads,
        )
        serial = run_campaign(report.module, jobs=1, **kwargs)
        parallel = run_campaign(report.module, jobs=self.jobs, **kwargs)
        if serial.trials != parallel.trials:
            diverged = [
                i for i, (a, b) in
                enumerate(zip(serial.trials, parallel.trials)) if a != b
            ]
            return [self.fail(
                "serial-parallel-divergence",
                f"trials diverged at indices {diverged[:4]}",
            )]
        return []


class PruneSoundnessOracle(Oracle):
    """Statically-masked bit flips must be invisible end to end.

    The incremental subsystem's bit-liveness analysis
    (:mod:`repro.incremental.bitmask`) prunes (site, bit) pairs it
    proves unobservable and classifies their outcomes analytically
    instead of executing them.  This oracle is the ground truth behind
    that shortcut: for a sample of statically-dead pairs, inject the
    flip under the reference interpreter with *no* detector armed and
    require the final value and every observed output byte-identical
    to the fault-free run.  Any divergence means the static analysis
    called a live bit dead — an unsound prune.
    """

    name = "prune"

    #: Dead (event, bit) pairs exercised per program.
    SAMPLE = 12

    def check(self, program: FuzzProgram) -> List[OracleFailure]:
        import random

        from repro.incremental import (
            capture_attribution,
            dead_sites,
            module_dead_masks,
        )
        from repro.runtime.interpreter import bitflip

        if getattr(program, "threads", 1) > 1:
            # The flip hook targets the current frame; under the
            # cooperative scheduler that is not necessarily the frame
            # the masks describe.  The campaign engine refuses pruning
            # for threaded workloads for the same reason.
            return []
        config = EncoreConfig(auto_tune=False, gamma=0.0,
                              overhead_budget=10.0)
        try:
            report = compile_for_encore(
                program.module, config, clone=True,
                function=program.entry, args=program.args,
                externals=EXTERNALS,
            )
            masks = module_dead_masks(
                report.module, output_objects=program.output_objects
            )
            profile = capture_attribution(
                report.module, function=program.entry, args=program.args,
                output_objects=program.output_objects, externals=EXTERNALS,
                max_steps=MAX_STEPS,
            )
        except Exception as exc:
            return [self.fail("crash", f"{type(exc).__name__}: {exc}")]
        pairs = dead_sites(profile, masks)
        if not pairs:
            return []
        rng = random.Random(program.seed)
        sample = (pairs if len(pairs) <= self.SAMPLE
                  else rng.sample(pairs, self.SAMPLE))
        golden = profile.golden
        failures: List[OracleFailure] = []
        for event, bit in sample:
            state = {"done": False}

            def hook(interp, ev, _event=event, _bit=bit, _state=state):
                if not _state["done"] and ev.index == _event:
                    frame = interp.current_frame
                    dest = ev.inst.defs()[0]
                    frame.regs[dest] = bitflip(frame.regs[dest], _bit)
                    _state["done"] = True

            try:
                result = Interpreter(
                    report.module, post_step=hook, externals=EXTERNALS,
                    max_steps=_bound(golden.events),
                ).run(
                    program.entry, program.args,
                    output_objects=program.output_objects,
                )
            except Exception as exc:
                failures.append(self.fail(
                    "masked-bit-crash",
                    f"event {event} bit {bit}: "
                    f"{type(exc).__name__}: {exc}",
                ))
                continue
            if (result.value != golden.value
                    or result.output != golden.output):
                failures.append(self.fail(
                    "masked-bit-effect",
                    f"event {event} bit {bit}: value "
                    f"{golden.value} -> {result.value}",
                ))
        return failures


def _plant_swap_add(module, entry: str) -> None:
    """Test-only miscompile: first ``add`` of the entry becomes ``sub``."""
    func = module.get_function(entry)
    if func is None:
        return
    for block in func:
        for inst in block:
            if inst.opcode == "binop" and inst.op == "add":
                inst.op = "sub"
                return


def _plant_drop_ckpt(module) -> None:
    """Test-only miscompile: delete the first memory checkpoint."""
    for func in module:
        for block in func:
            for i, inst in enumerate(block.instructions):
                if inst.opcode == "ckpt_mem":
                    del block.instructions[i]
                    return


#: Registry, in the order the campaign runs them.
ORACLE_REGISTRY = {
    "semantic": SemanticEquivalenceOracle,
    "conservative": IdempotenceConservativenessOracle,
    "opt": OptEquivalenceOracle,
    "rollback": RollbackExactnessOracle,
    "replay": ReplayDeterminismOracle,
    "campaign": CampaignEquivalenceOracle,
    "prune": PruneSoundnessOracle,
}

#: The default per-program suite; ``campaign`` is sampled separately by
#: the driver (it spins up worker pools, so it runs every Nth program).
DEFAULT_ORACLES = (
    "semantic", "conservative", "opt", "rollback", "replay", "campaign",
    "prune",
)


def make_oracles(names: Sequence[str]) -> List[Oracle]:
    unknown = [n for n in names if n not in ORACLE_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; "
            f"expected {sorted(ORACLE_REGISTRY)}"
        )
    return [ORACLE_REGISTRY[name]() for name in names]


def run_oracles(
    program: FuzzProgram, oracles: Sequence[Oracle]
) -> List[OracleFailure]:
    """Run every oracle; a crashed oracle is itself a failure."""
    failures: List[OracleFailure] = []
    for oracle in oracles:
        try:
            failures.extend(oracle.check(program))
        except Exception as exc:  # an oracle must never take down a campaign
            failures.append(OracleFailure(
                oracle.name, "oracle-error",
                f"{type(exc).__name__}: {exc}",
            ))
    return failures
