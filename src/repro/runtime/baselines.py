"""The conventional recovery schemes Encore is compared against (Table 1).

Two working baselines, built on the same interpreter:

* :class:`FullCheckpointRecovery` — enterprise-style: periodically
  suspend and snapshot *everything* (all memory objects, all frames'
  registers, and the control position).  Rollback restores the whole
  snapshot.  Recovery is guaranteed, storage is the full footprint, and
  checkpoint time scales with system size.
* :class:`LogBasedRecovery` — architectural-style (SafetyNet / ReVive):
  snapshot registers+control at interval boundaries, then log the old
  value of every store.  Rollback unrolls the log and restores the
  register snapshot.  Guaranteed recovery at finer intervals and lower
  (but still store-proportional) storage, at the cost of logging every
  store — the "extra hardware" row of Table 1.

Both expose the same driver API as Encore's SFI path, so
``benchmarks/test_table1_baselines.py`` can measure interval length,
storage, checkpoint cost, and recovery success for all three schemes on
identical workloads — regenerating Table 1's qualitative rows as
quantitative measurements.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Sequence, Tuple

from repro.ir.module import Module
from repro.ir.types import WORD_BYTES
from repro.runtime.interpreter import (
    ExecutionLimit,
    Interpreter,
    StepEvent,
    Trap,
    bitflip,
)


@dataclasses.dataclass
class BaselineStats:
    """What one run of a baseline mechanism cost."""

    checkpoints_taken: int = 0
    words_copied: int = 0       # total words written into checkpoint storage
    peak_storage_words: int = 0
    log_entries: int = 0

    @property
    def peak_storage_bytes(self) -> int:
        return self.peak_storage_words * WORD_BYTES


class FullCheckpointRecovery:
    """Enterprise-style periodic full-system snapshots.

    Attach to an interpreter via ``hook`` (as ``post_step``); call
    :meth:`rollback` when a fault is detected.
    """

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.stats = BaselineStats()
        self._snapshot = None
        self._next_at = 0

    # -- hook -----------------------------------------------------------

    def hook(self, interp: Interpreter, event: StepEvent) -> None:
        if event.index >= self._next_at:
            self._take_snapshot(interp)
            self._next_at = event.index + self.interval

    def _take_snapshot(self, interp: Interpreter) -> None:
        memory = {
            name: list(cells) for name, cells in interp.memory._cells.items()
        }
        frames = [
            (frame.id, frame.func.name, dict(frame.regs), frame.block, frame.ip,
             dict(frame.stack_instances), frame.ret_dest)
            for frame in interp.frames
        ]
        counters = (interp.events, interp.cost, interp.app_cost,
                    interp.instrumentation_cost)
        self._snapshot = (memory, frames, counters)
        words = sum(len(cells) for cells in memory.values()) + sum(
            len(f[2]) for f in frames
        )
        self.stats.checkpoints_taken += 1
        self.stats.words_copied += words
        self.stats.peak_storage_words = max(self.stats.peak_storage_words, words)

    # -- recovery ----------------------------------------------------------

    def rollback(self, interp: Interpreter) -> bool:
        """Restore the last snapshot; True on success."""
        if self._snapshot is None:
            return False
        memory, frames, counters = self._snapshot
        interp.memory._cells = {
            name: list(cells) for name, cells in memory.items()
        }
        interp.memory._sizes = {
            name: len(cells) for name, cells in memory.items()
        }
        rebuilt = []
        for frame_id, func_name, regs, block, ip, stacks, ret_dest in frames:
            frame = interp.frames[0].__class__(frame_id, interp.module.function(func_name))
            frame.regs = dict(regs)
            frame.block = block
            frame.ip = ip
            frame.stack_instances = dict(stacks)
            frame.ret_dest = ret_dest
            rebuilt.append(frame)
        interp.frames[:] = rebuilt
        return True


class LogBasedRecovery:
    """Architectural-style store logging between register snapshots."""

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.stats = BaselineStats()
        self._log: List[Tuple[str, int, object]] = []
        self._reg_snapshot = None
        self._next_at = 0

    def pre_hook(self, interp: Interpreter, event: StepEvent) -> None:
        """``pre_step``: capture old values of the words about to change."""
        inst = event.inst
        for ref in inst.stores():
            try:
                name, index = interp._resolve(interp.current_frame, ref)
                old = interp.memory.read(name, index)
            except Trap:
                continue
            self._log.append((name, index, old))
            self.stats.log_entries += 1

    def post_hook(self, interp: Interpreter, event: StepEvent) -> None:
        if event.index >= self._next_at:
            self._checkpoint(interp)
            self._next_at = event.index + self.interval

    def _checkpoint(self, interp: Interpreter) -> None:
        frames = [
            (frame.id, frame.func.name, dict(frame.regs), frame.block, frame.ip,
             dict(frame.stack_instances), frame.ret_dest)
            for frame in interp.frames
        ]
        self._reg_snapshot = frames
        reg_words = sum(len(f[2]) for f in frames)
        # Log entries store address+data: two words each.
        current = reg_words + 2 * len(self._log)
        self.stats.peak_storage_words = max(self.stats.peak_storage_words, current)
        self.stats.checkpoints_taken += 1
        self.stats.words_copied += reg_words
        self._log.clear()

    def rollback(self, interp: Interpreter) -> bool:
        if self._reg_snapshot is None:
            return False
        current = self._reg_snapshot and sum(
            len(f[2]) for f in self._reg_snapshot
        ) + 2 * len(self._log)
        self.stats.peak_storage_words = max(self.stats.peak_storage_words, current)
        for name, index, old in reversed(self._log):
            if interp.memory.exists(name):
                interp.memory.write(name, index, old)
        self._log.clear()
        rebuilt = []
        for frame_id, func_name, regs, block, ip, stacks, ret_dest in self._reg_snapshot:
            frame = interp.frames[0].__class__(frame_id, interp.module.function(func_name))
            frame.regs = dict(regs)
            frame.block = block
            frame.ip = ip
            frame.stack_instances = dict(stacks)
            frame.ret_dest = ret_dest
            rebuilt.append(frame)
        interp.frames[:] = rebuilt
        return True


@dataclasses.dataclass
class BaselineTrial:
    outcome: str  # recovered | sdc | unrecoverable | masked
    fault_event: int


@dataclasses.dataclass
class BaselineCampaign:
    trials: List[BaselineTrial]
    stats: BaselineStats
    interval: int

    def fraction(self, outcome: str) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.outcome == outcome) / len(self.trials)

    @property
    def covered_fraction(self) -> float:
        return self.fraction("recovered") + self.fraction("masked")


def run_baseline_campaign(
    module: Module,
    scheme: str,
    interval: int,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    trials: int = 50,
    latency: int = 10,
    seed: int = 0,
    externals=None,
) -> BaselineCampaign:
    """SFI against a conventional scheme (``full`` or ``log``).

    Detection is assumed (fixed latency); the scheme's rollback restores
    the last snapshot.  With single-threaded deterministic programs
    these schemes give guaranteed recovery as long as the snapshot
    precedes the fault — the Table 1 "Guaranteed Recovery: Yes" rows.
    """
    if scheme not in ("full", "log"):
        raise ValueError(f"unknown baseline scheme {scheme!r}")
    golden = Interpreter(module, externals=externals).run(
        function, args, output_objects=output_objects
    )
    rng = random.Random(seed)
    results: List[BaselineTrial] = []
    last_stats = BaselineStats()
    for _ in range(trials):
        mechanism = (
            FullCheckpointRecovery(interval)
            if scheme == "full"
            else LogBasedRecovery(interval)
        )
        site = rng.randrange(max(golden.events, 1))
        bit = rng.randrange(0, 32)
        state = {"injected": False, "site": None, "rolled": False}

        def post(interp, event, mechanism=mechanism, state=state):
            if scheme == "full":
                mechanism.hook(interp, event)
            else:
                mechanism.post_hook(interp, event)
            if not state["injected"] and event.index >= site and event.inst.defs():
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), bit)
                state["injected"] = True
                state["site"] = event.index
            elif (
                state["injected"]
                and not state["rolled"]
                and event.index >= state["site"] + latency
            ):
                state["rolled"] = mechanism.rollback(interp)

        pre = mechanism.pre_hook if scheme == "log" else None
        interp = Interpreter(
            module,
            max_steps=max(golden.events * 6, 10_000),
            pre_step=pre,
            post_step=post,
            externals=externals,
        )
        try:
            result = interp.run(function, args, output_objects=output_objects)
        except Trap:
            # A trap IS a detection symptom: roll back to the last
            # snapshot and resume (guaranteed recovery in action).
            state["rolled"] = mechanism.rollback(interp)
            try:
                result = interp.resume(output_objects=output_objects)
            except (Trap, ExecutionLimit):
                results.append(
                    BaselineTrial("unrecoverable", state["site"] or -1)
                )
                last_stats = mechanism.stats
                continue
        except ExecutionLimit:
            results.append(BaselineTrial("unrecoverable", state["site"] or -1))
            last_stats = mechanism.stats
            continue
        correct = (
            result.output == golden.output and result.value == golden.value
        )
        if correct and state["rolled"]:
            outcome = "recovered"
        elif correct:
            outcome = "masked"
        else:
            outcome = "sdc"
        results.append(BaselineTrial(outcome, state["site"] or -1))
        last_stats = mechanism.stats
    return BaselineCampaign(results, last_stats, interval)
