"""Run-time memory model: word-addressed objects and pointer values."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

from repro.ir.values import MemoryObject

Word = Union[int, float]


class MemoryError_(Exception):
    """Out-of-bounds or otherwise invalid memory access (a trap symptom)."""


@dataclasses.dataclass(frozen=True)
class Pointer:
    """A run-time pointer value: a memory object instance plus word offset."""

    obj: str
    offset: int = 0

    def advanced(self, delta: int) -> "Pointer":
        return Pointer(self.obj, self.offset + delta)

    def __str__(self) -> str:
        return f"&{self.obj}+{self.offset}"


class MachineMemory:
    """All live memory objects of one execution.

    Objects are instantiated from their static declarations: globals once
    at start-up, stack objects per function activation (names mangled
    with the frame id), heap objects on ``alloc``.  Every cell holds one
    word (int or float); uninitialized cells read as 0.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, List[Word]] = {}
        self._sizes: Dict[str, int] = {}
        self._heap_counter = 0

    @classmethod
    def pristine(cls, module) -> "MachineMemory":
        """The start-of-run image: every module global, materialized."""
        memory = cls()
        for obj in module.globals.values():
            memory.materialize(obj)
        return memory

    def clone(self) -> "MachineMemory":
        """An independent deep copy (cells are one level deep by design).

        Campaign workers clone one pristine image per trial instead of
        re-materializing every global; the copy shares nothing mutable
        with its source.
        """
        twin = MachineMemory()
        twin._cells = {name: list(cells) for name, cells in self._cells.items()}
        twin._sizes = dict(self._sizes)
        twin._heap_counter = self._heap_counter
        return twin

    # -- lifecycle ------------------------------------------------------

    def materialize(self, obj: MemoryObject, instance_name: Optional[str] = None) -> str:
        name = instance_name or obj.name
        cells: List[Word] = [0] * obj.size
        if obj.init is not None:
            cells[: len(obj.init)] = list(obj.init)
        self._cells[name] = cells
        self._sizes[name] = obj.size
        return name

    def allocate_heap(self, size: int, site: str) -> str:
        if size <= 0:
            raise MemoryError_(f"alloc of non-positive size {size} at {site}")
        self._heap_counter += 1
        name = f"{site}#{self._heap_counter}"
        self._cells[name] = [0] * size
        self._sizes[name] = size
        return name

    def release(self, name: str) -> None:
        self._cells.pop(name, None)
        self._sizes.pop(name, None)

    # -- access -----------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._cells

    def size_of(self, name: str) -> int:
        return self._sizes[name]

    def read(self, name: str, index: int) -> Word:
        try:
            cells = self._cells[name]
        except KeyError:
            raise MemoryError_(f"read from dead object {name!r}") from None
        if not 0 <= index < len(cells):
            raise MemoryError_(
                f"read out of bounds: {name}[{index}] (size {len(cells)})"
            )
        return cells[index]

    def write(self, name: str, index: int, value: Word) -> None:
        try:
            cells = self._cells[name]
        except KeyError:
            raise MemoryError_(f"write to dead object {name!r}") from None
        if not 0 <= index < len(cells):
            raise MemoryError_(
                f"write out of bounds: {name}[{index}] (size {len(cells)})"
            )
        cells[index] = value

    def snapshot(self, names) -> Dict[str, List[Word]]:
        """Copy the contents of the named objects (for output comparison)."""
        return {name: list(self._cells[name]) for name in names if name in self._cells}
