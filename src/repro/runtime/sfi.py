"""Statistical fault injection (SFI) campaigns (paper Section 4).

Each trial injects one transient fault — a bit flip in the destination
register of a uniformly-chosen dynamic instruction — into an execution
of the (Encore-instrumented) program, samples a detection latency from
the configured detector model, performs the Encore rollback when the
detector fires, and classifies the final outcome against a golden run:

* ``masked``       — the fault never affected the output (architectural
  masking) and no recovery was needed;
* ``recovered``    — the detector fired, rollback re-executed the
  region, and the output matches the golden run;
* ``detected_unrecoverable`` — the detector fired but no recovery
  pointer was live for the faulting context (control had left the
  region), or execution trapped/hung without a usable recovery block;
* ``sdc``          — silent data corruption: the run completed with a
  wrong result.

These empirical outcomes validate the analytical coverage model of
Section 4.2 (see ``benchmarks/test_sfi_validation.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.detection import DetectionModel
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    Interpreter,
    StepEvent,
    Trap,
    bitflip,
)

OUTCOMES = ("masked", "recovered", "detected_unrecoverable", "sdc")

ProgressHook = Callable[[int, int], None]


def derive_trial_seed(seed: int, trial_index: int) -> int:
    """Key an independent RNG substream for one trial.

    Hashing ``(seed, trial_index)`` through SHA-256 decorrelates the
    substreams and — unlike ``hash()`` — is stable across processes,
    interpreter versions, and ``PYTHONHASHSEED``, so a trial's fault
    plan is a pure function of the campaign seed and its index.  This
    is what makes parallel campaigns bit-identical to serial ones: any
    worker, handed any chunk, derives exactly the faults the serial
    loop would have.
    """
    digest = hashlib.sha256(f"sfi:{seed}:{trial_index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """The complete randomness of one trial, fixed before execution.

    ``sites``/``bits``/``latencies`` are equal-length tuples; length 1
    is the paper's single-event-upset model, longer is the multi-fault
    extension.  Plans are immutable and picklable so they can be
    chunked across worker processes.
    """

    trial_index: int
    sites: Tuple[int, ...]
    bits: Tuple[int, ...]
    latencies: Tuple[Optional[int], ...]

    @property
    def single(self) -> bool:
        return len(self.sites) == 1


def plan_trial(
    seed: int,
    trial_index: int,
    golden_events: int,
    detector: DetectionModel,
    faults_per_trial: int = 1,
) -> FaultPlan:
    """Derive one trial's fault plan from its own RNG substream."""
    rng = random.Random(derive_trial_seed(seed, trial_index))
    sites = sorted(
        rng.randrange(max(golden_events, 1)) for _ in range(faults_per_trial)
    )
    bits = [rng.randrange(0, 32) for _ in range(faults_per_trial)]
    latencies = [detector.sample_latency(rng) for _ in range(faults_per_trial)]
    return FaultPlan(trial_index, tuple(sites), tuple(bits), tuple(latencies))


def plan_campaign(
    seed: int,
    trials: int,
    golden_events: int,
    detector: DetectionModel,
    faults_per_trial: int = 1,
) -> List[FaultPlan]:
    """All fault plans of a campaign, in trial order."""
    return [
        plan_trial(seed, index, golden_events, detector, faults_per_trial)
        for index in range(trials)
    ]


@dataclasses.dataclass
class TrialResult:
    """One SFI trial."""

    outcome: str
    fault_event: int
    detect_latency: Optional[int]
    recovery_attempts: int
    trapped: bool = False
    hang: bool = False
    #: Extra dynamic instructions executed relative to the golden run —
    #: the re-execution "wasted work" of rollback recovery (paper §2.1).
    wasted_work: int = 0


@dataclasses.dataclass
class CampaignResult:
    """Aggregated SFI campaign statistics.

    ``elapsed``/``jobs``/``worker_trials`` describe how the campaign
    was executed (wall-clock seconds, worker count, trials per worker);
    they are reporting metadata only — the trial list itself is a pure
    function of ``(module, seed, trials, detector, faults_per_trial)``
    regardless of parallelism.
    """

    trials: List[TrialResult]
    elapsed: float = 0.0
    jobs: int = 1
    worker_trials: Dict[str, int] = dataclasses.field(default_factory=dict)

    def count(self, outcome: str) -> int:
        return sum(1 for t in self.trials if t.outcome == outcome)

    def counts(self) -> Dict[str, int]:
        """Outcome tallies (all four classes, zero-filled)."""
        return {outcome: self.count(outcome) for outcome in OUTCOMES}

    def fraction(self, outcome: str) -> float:
        if not self.trials:
            return 0.0
        return self.count(outcome) / len(self.trials)

    @property
    def covered_fraction(self) -> float:
        """Masked plus recovered: the faults the system tolerates."""
        return self.fraction("masked") + self.fraction("recovered")

    @property
    def throughput(self) -> float:
        """Completed trials per wall-clock second (0.0 if untimed)."""
        if self.elapsed <= 0.0:
            return 0.0
        return len(self.trials) / self.elapsed

    @property
    def mean_wasted_work(self) -> float:
        """Mean re-executed instructions across recovered trials."""
        recovered = [t for t in self.trials if t.outcome == "recovered"
                     and t.recovery_attempts > 0]
        if not recovered:
            return 0.0
        return sum(t.wasted_work for t in recovered) / len(recovered)

    def summary(self, extended: bool = False) -> Dict[str, float]:
        """Outcome fractions; ``extended`` adds execution statistics.

        The default (outcome fractions only, summing to 1.0 on a
        non-empty campaign) is deterministic for a given seed; the
        extended block adds wall-clock figures that are not.
        """
        base: Dict[str, float] = {
            outcome: self.fraction(outcome) for outcome in OUTCOMES
        }
        if extended:
            base["trials"] = float(len(self.trials))
            base["jobs"] = float(self.jobs)
            base["elapsed_s"] = self.elapsed
            base["trials_per_sec"] = self.throughput
            for worker, count in sorted(self.worker_trials.items()):
                base[f"trials[{worker}]"] = float(count)
        return base


class _FaultInjector:
    """Post-step hook driving one trial: inject fault(s), then detect.

    ``faults`` is a list of ``(site, bit, latency)`` triples; the paper's
    single-event-upset model uses one, and the multi-fault extension
    study injects several.  Each fault arms its own detection deadline;
    detection rolls back through the current recovery pointer.
    """

    def __init__(self, faults) -> None:
        self.pending = sorted(faults, key=lambda f: f[0])
        self.fault_events: list = []
        self.deadlines: list = []  # (detect_at, handled?)
        self.recovery_attempts = 0
        self.recovery_failed = False

    @property
    def fault_event(self) -> Optional[int]:
        return self.fault_events[0] if self.fault_events else None

    def __call__(self, interp: Interpreter, event: StepEvent) -> None:
        if self.pending and event.index >= self.pending[0][0]:
            if event.inst.defs():
                site, bit, latency = self.pending.pop(0)
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), bit)
                self.fault_events.append(event.index)
                if latency is not None:
                    self.deadlines.append(event.index + latency)
                return
        while self.deadlines and event.index >= self.deadlines[0]:
            self.deadlines.pop(0)
            self.recovery_attempts += 1
            if not interp.trigger_recovery():
                self.recovery_failed = True
                raise _AbortTrial()


class _AbortTrial(Exception):
    """Detection fired with no live recovery pointer: restart required."""


def golden_run(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps: int = 5_000_000,
    externals=None,
) -> ExecResult:
    return Interpreter(module, max_steps=max_steps, externals=externals).run(
        function, args, output_objects=output_objects
    )


def run_trial(
    module: Module,
    golden: ExecResult,
    site: int,
    bit: int,
    latency: Optional[int],
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps_factor: int = 4,
    externals=None,
) -> TrialResult:
    """Execute one fault-injection trial and classify its outcome.

    ``site``/``bit``/``latency`` may be scalars (one fault, the paper's
    model) or equal-length lists for the multi-fault extension.
    """
    if isinstance(site, int):
        faults = [(site, bit, latency)]
    else:
        faults = list(zip(site, bit, latency))
    injector = _FaultInjector(faults)
    max_steps = max(golden.events * max_steps_factor, 10_000)
    interp = Interpreter(
        module, max_steps=max_steps, post_step=injector, externals=externals
    )
    trapped = False
    hang = False
    result: Optional[ExecResult] = None
    try:
        result = interp.run(function, args, output_objects=output_objects)
    except _AbortTrial:
        pass
    except Trap:
        # A symptom the detector sees immediately: try to roll back.
        trapped = True
        injector.recovery_attempts += 1
        if interp.trigger_recovery(immediate=True):
            try:
                result = interp.resume(output_objects=output_objects)
            except (Trap, ExecutionLimit, _AbortTrial):
                result = None
        else:
            injector.recovery_failed = True
    except ExecutionLimit:
        hang = True

    fault_event = injector.fault_event if injector.fault_event is not None else -1
    if result is None:
        return TrialResult(
            outcome="detected_unrecoverable",
            fault_event=fault_event,
            detect_latency=latency,
            recovery_attempts=injector.recovery_attempts,
            trapped=trapped,
            hang=hang,
        )
    wasted = max(0, result.events - golden.events)
    correct = result.output == golden.output and result.value == golden.value
    if correct:
        outcome = "recovered" if injector.recovery_attempts else "masked"
    elif not injector.fault_events:
        # The fault site was never reached (shorter dynamic path): the
        # "injection" hit dead time — architecturally masked.
        outcome = "masked" if result.output == golden.output else "sdc"
    else:
        outcome = "sdc"
    return TrialResult(
        outcome=outcome,
        fault_event=fault_event,
        detect_latency=latency,
        recovery_attempts=injector.recovery_attempts,
        trapped=trapped,
        hang=hang,
        wasted_work=wasted,
    )


def run_planned_trial(
    module: Module,
    golden: ExecResult,
    plan: FaultPlan,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps_factor: int = 4,
    externals=None,
) -> TrialResult:
    """Execute one trial from a pre-derived :class:`FaultPlan`.

    Single-fault plans unpack to the scalar :func:`run_trial` form so
    ``TrialResult.detect_latency`` keeps its historical scalar shape.
    """
    if plan.single:
        site, bit, latency = plan.sites[0], plan.bits[0], plan.latencies[0]
    else:
        site, bit, latency = list(plan.sites), list(plan.bits), list(plan.latencies)
    return run_trial(
        module,
        golden,
        site,
        bit,
        latency,
        function=function,
        args=args,
        output_objects=output_objects,
        max_steps_factor=max_steps_factor,
        externals=externals,
    )


def run_campaign(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    detector: Optional[DetectionModel] = None,
    trials: int = 200,
    seed: int = 0,
    faults_per_trial: int = 1,
    externals=None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> CampaignResult:
    """A full SFI campaign with uniformly-distributed fault sites.

    ``faults_per_trial > 1`` leaves the paper's single-event-upset model
    for the multi-fault extension study: several independent transients
    strike one execution, each with its own detection latency.

    Every trial's randomness comes from its own seed-keyed substream
    (:func:`plan_trial`), so ``jobs > 1`` fans trials out across worker
    processes (see :mod:`repro.runtime.parallel`) and returns the exact
    ``TrialResult`` sequence of the serial path — merged back in trial
    order — by construction.  ``chunk_size`` tunes how many trials each
    worker task claims; ``progress`` is called as ``progress(done,
    total)`` whenever completed-trial counts advance.  Workloads whose
    ``externals`` cannot cross a process boundary fall back to the
    serial path silently.
    """
    detector = detector or DetectionModel()
    start = time.monotonic()
    golden = golden_run(
        module, function, args, output_objects, externals=externals
    )
    plans = plan_campaign(seed, trials, golden.events, detector, faults_per_trial)
    if jobs > 1 and trials > 1:
        from repro.runtime.parallel import ParallelUnavailable, run_parallel_campaign

        try:
            results, worker_trials = run_parallel_campaign(
                module,
                plans,
                function=function,
                args=args,
                output_objects=output_objects,
                externals=externals,
                jobs=jobs,
                chunk_size=chunk_size,
                progress=progress,
            )
        except ParallelUnavailable:
            pass
        else:
            return CampaignResult(
                results,
                elapsed=time.monotonic() - start,
                jobs=jobs,
                worker_trials=worker_trials,
            )
    results = []
    for index, plan in enumerate(plans):
        results.append(
            run_planned_trial(
                module,
                golden,
                plan,
                function=function,
                args=args,
                output_objects=output_objects,
                externals=externals,
            )
        )
        if progress is not None:
            progress(index + 1, trials)
    return CampaignResult(
        results,
        elapsed=time.monotonic() - start,
        jobs=1,
        worker_trials={"worker-0": len(results)},
    )
