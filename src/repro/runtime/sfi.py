"""Statistical fault injection (SFI) campaigns (paper Section 4).

Each trial injects one transient fault — a bit flip in the destination
register of a uniformly-chosen dynamic instruction — into an execution
of the (Encore-instrumented) program, samples a detection latency from
the configured detector model, performs the Encore rollback when the
detector fires, and classifies the final outcome against a golden run.

Rollback is mediated by a :class:`~repro.runtime.supervisor.
RecoverySupervisor`: every attempt is charged per region, livelocked
recoveries (K rollbacks into the same region with no committed
progress) are bounded, an optional per-attempt step watchdog re-rolls
silently-stuck recoveries, and faults can be planned to strike *inside*
the recovery window (the double-fault model).  Outcomes form a
reason-coded escalation ladder:

* ``masked``       — the fault never affected the output (architectural
  masking) and no recovery was needed;
* ``recovered``    — the detector fired, rollback re-executed the
  region, and the output matches the golden run;
* ``recovered_after_retry`` — as ``recovered``, but one region needed
  more than one consecutive rollback attempt;
* ``detected_unrecoverable`` — execution trapped or hung without a
  usable recovery block;
* ``escape_unrecoverable`` — the detector fired after control had left
  the faulting region (no recovery pointer was live);
* ``livelock``     — recovery kept re-triggering its own fault; the
  supervisor stopped it after K attempts;
* ``double_fault_unrecoverable`` — a second fault striking during
  recovery defeated it;
* ``metadata_corrupt_detected`` — a fault struck Encore's *recovery
  metadata* (checkpoint log, register checkpoints, or the recovery
  pointer — see :mod:`repro.runtime.guarded_state`) and the metadata
  guard caught it at rollback time: graceful restart-required
  degradation instead of restoring garbage;
* ``metadata_corrupt_silent`` — corrupted recovery metadata was
  consumed by a rollback *undetected* and the run finished with a
  wrong result — the failure mode the guard exists to eliminate;
* ``cfe_detected_recovered`` — a control-flow fault (corrupted branch
  target or wrong-way branch) was detected — by the branch-signature
  monitor or by the wild-target trap — and rollback restored the
  correct result;
* ``cfe_wild_trap`` — a corrupted branch target left the legal label
  space and trapped, but no recovery pointer was live: restart
  required;
* ``cfe_silent``   — a control-flow fault (typically a wrong-way
  branch, whose edge is *legal* and therefore invisible to the
  signature monitor) completed with a wrong result undetected;
* ``sdc``          — silent data corruption: the run completed with a
  wrong result;
* ``infra_error``  — the trial never produced a verdict (worker crash
  or wall-clock timeout in the campaign engine).

These empirical outcomes validate the analytical coverage model of
Section 4.2 (see ``benchmarks/test_sfi_validation.py``).
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.detection import DetectionModel
from repro.runtime.engine import make_interpreter
from repro.runtime.guarded_state import METADATA_TARGETS
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    Interpreter,
    StepEvent,
    Trap,
    bitflip,
)
from repro.runtime.memory import MachineMemory
from repro.runtime.replay import (
    REPLAY_CHUNK_DEFAULT,
    ChunkRecorder,
    ReplayDetector,
)
from repro.runtime.supervisor import (
    EscalateTrial,
    RecoverySupervisor,
    SupervisorPolicy,
)

OUTCOMES = (
    "masked",
    "recovered",
    "recovered_after_retry",
    "detected_unrecoverable",
    "escape_unrecoverable",
    "livelock",
    "double_fault_unrecoverable",
    "metadata_corrupt_detected",
    "metadata_corrupt_silent",
    "cfe_detected_recovered",
    "cfe_wild_trap",
    "cfe_silent",
    "sdc",
    "infra_error",
)

#: Outcomes in which the program ended with the correct result.
COVERED_OUTCOMES = (
    "masked", "recovered", "recovered_after_retry", "cfe_detected_recovered",
)

#: Control-flow fault kinds: ``target`` re-aims a branch at an
#: arbitrary block of the executing function (one extra selector slot
#: models a target outside the legal label space entirely — an
#: immediate wild-branch trap); ``wrong`` inverts a conditional
#: branch's decision, which follows a *legal* CFG edge and is therefore
#: invisible to signature-based detection by construction.
CF_KINDS = ("target", "wrong")

#: Control-flow error detectors: ``signature`` checks every executed
#: branch edge against the static CFG (the classic basic-block
#: signature monitor); ``off`` leaves CFE detection to traps alone.
CFE_DETECTORS = ("off", "signature")

#: Where a trial's detection events come from.  ``model`` samples a
#: latency from the analytical :class:`DetectionModel` (the paper's
#: assumption); ``replay`` measures it with chunked record + replay
#: (:mod:`repro.runtime.replay`) — same outcome taxonomy either way.
DETECTOR_BACKENDS = ("model", "replay")

ProgressHook = Callable[[int, int], None]


class TrialTimeout(Exception):
    """A trial exceeded its wall-clock budget (campaign-engine guard)."""


def derive_trial_seed(seed: int, trial_index: int) -> int:
    """Key an independent RNG substream for one trial.

    Hashing ``(seed, trial_index)`` through SHA-256 decorrelates the
    substreams and — unlike ``hash()`` — is stable across processes,
    interpreter versions, and ``PYTHONHASHSEED``, so a trial's fault
    plan is a pure function of the campaign seed and its index.  This
    is what makes parallel campaigns bit-identical to serial ones: any
    worker, handed any chunk, derives exactly the faults the serial
    loop would have.
    """
    digest = hashlib.sha256(f"sfi:{seed}:{trial_index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """The complete randomness of one trial, fixed before execution.

    ``sites``/``bits``/``latencies`` are equal-length tuples; length 1
    is the paper's single-event-upset model, longer is the multi-fault
    extension.  ``recovery_sites``/``recovery_bits``/
    ``recovery_latencies`` describe the double-fault model: each entry
    is a fault armed *relative to a rollback* — it strikes that many
    dynamic instructions after the n-th recovery attempt begins.  Plans
    are immutable and picklable so they can be chunked across worker
    processes.
    """

    trial_index: int
    sites: Tuple[int, ...]
    bits: Tuple[int, ...]
    latencies: Tuple[Optional[int], ...]
    recovery_sites: Tuple[int, ...] = ()
    recovery_bits: Tuple[int, ...] = ()
    recovery_latencies: Tuple[Optional[int], ...] = ()
    # Metadata fault surface (recovery-state corruption model): each
    # fault strikes the structure named by its target (see
    # guarded_state.METADATA_TARGETS) at a dynamic-instruction site,
    # picking a live entry with ``selector`` and flipping ``bit``.
    meta_sites: Tuple[int, ...] = ()
    meta_targets: Tuple[str, ...] = ()
    meta_selectors: Tuple[int, ...] = ()
    meta_bits: Tuple[int, ...] = ()
    # Control-flow fault surface: each fault arms at dynamic site
    # ``cf_sites[i]`` and strikes the next branch executed at or after
    # it, corrupting it per ``cf_kinds[i]`` (see CF_KINDS);
    # ``cf_selectors[i]`` picks the bogus target for ``target`` kinds.
    cf_sites: Tuple[int, ...] = ()
    cf_kinds: Tuple[str, ...] = ()
    cf_selectors: Tuple[int, ...] = ()

    @property
    def single(self) -> bool:
        return len(self.sites) == 1

    @property
    def recovery_faults(self) -> Tuple[Tuple[int, int, Optional[int]], ...]:
        """The planned recovery-window faults as (offset, bit, latency)."""
        return tuple(
            zip(self.recovery_sites, self.recovery_bits, self.recovery_latencies)
        )

    @property
    def metadata_faults(self) -> Tuple[Tuple[int, str, int, int], ...]:
        """The planned metadata faults as (site, target, selector, bit)."""
        return tuple(
            zip(self.meta_sites, self.meta_targets,
                self.meta_selectors, self.meta_bits)
        )

    @property
    def control_faults(self) -> Tuple[Tuple[int, str, int], ...]:
        """The planned control-flow faults as (site, kind, selector)."""
        return tuple(zip(self.cf_sites, self.cf_kinds, self.cf_selectors))


def plan_trial(
    seed: int,
    trial_index: int,
    golden_events: int,
    detector: DetectionModel,
    faults_per_trial: int = 1,
    recovery_faults_per_trial: int = 0,
    metadata_faults_per_trial: int = 0,
    cf_faults_per_trial: int = 0,
    site_dist=None,
    rng_seed: Optional[int] = None,
) -> FaultPlan:
    """Derive one trial's fault plan from its own RNG substream.

    The recovery-window draws happen *after* the primary draws, the
    metadata draws after those, and the control-flow draws last, so a
    campaign with every extension count at 0 produces bit-identical
    plans to one planned before any extension existed.

    ``site_dist`` replaces the uniform site/bit draws with a pruned
    importance-sampling distribution (any object with a
    ``draw(rng) -> (site, bit)`` method — see
    :class:`repro.incremental.bitmask.SectionSampler`); it requires the
    single-event-upset configuration, and ``rng_seed`` then keys the
    substream directly (per-section discipline) instead of the global
    ``(seed, trial_index)`` hash.
    """
    rng = random.Random(
        derive_trial_seed(seed, trial_index) if rng_seed is None else rng_seed
    )
    if site_dist is not None:
        if (faults_per_trial != 1 or recovery_faults_per_trial
                or metadata_faults_per_trial or cf_faults_per_trial):
            raise ValueError(
                "site_dist requires the single-event-upset configuration "
                "(one primary fault, no extension surfaces)"
            )
        site, bit = site_dist.draw(rng)
        latency = detector.sample_latency(rng)
        return FaultPlan(trial_index, (site,), (bit,), (latency,))
    sites = sorted(
        rng.randrange(max(golden_events, 1)) for _ in range(faults_per_trial)
    )
    bits = [rng.randrange(0, 32) for _ in range(faults_per_trial)]
    latencies = [detector.sample_latency(rng) for _ in range(faults_per_trial)]
    rec_sites = [rng.randrange(1, 33) for _ in range(recovery_faults_per_trial)]
    rec_bits = [rng.randrange(0, 32) for _ in range(recovery_faults_per_trial)]
    rec_latencies = [
        detector.sample_latency(rng) for _ in range(recovery_faults_per_trial)
    ]
    meta_sites = sorted(
        rng.randrange(max(golden_events, 1))
        for _ in range(metadata_faults_per_trial)
    )
    meta_targets = [
        METADATA_TARGETS[rng.randrange(len(METADATA_TARGETS))]
        for _ in range(metadata_faults_per_trial)
    ]
    meta_selectors = [
        rng.randrange(64) for _ in range(metadata_faults_per_trial)
    ]
    meta_bits = [rng.randrange(0, 64) for _ in range(metadata_faults_per_trial)]
    cf_sites = sorted(
        rng.randrange(max(golden_events, 1)) for _ in range(cf_faults_per_trial)
    )
    cf_kinds = [
        CF_KINDS[rng.randrange(len(CF_KINDS))] for _ in range(cf_faults_per_trial)
    ]
    cf_selectors = [rng.randrange(64) for _ in range(cf_faults_per_trial)]
    return FaultPlan(
        trial_index,
        tuple(sites),
        tuple(bits),
        tuple(latencies),
        tuple(rec_sites),
        tuple(rec_bits),
        tuple(rec_latencies),
        tuple(meta_sites),
        tuple(meta_targets),
        tuple(meta_selectors),
        tuple(meta_bits),
        tuple(cf_sites),
        tuple(cf_kinds),
        tuple(cf_selectors),
    )


def plan_campaign(
    seed: int,
    trials: int,
    golden_events: int,
    detector: DetectionModel,
    faults_per_trial: int = 1,
    recovery_faults_per_trial: int = 0,
    metadata_faults_per_trial: int = 0,
    cf_faults_per_trial: int = 0,
) -> List[FaultPlan]:
    """All fault plans of a campaign, in trial order."""
    return [
        plan_trial(
            seed, index, golden_events, detector,
            faults_per_trial, recovery_faults_per_trial,
            metadata_faults_per_trial, cf_faults_per_trial,
        )
        for index in range(trials)
    ]


@dataclasses.dataclass
class TrialResult:
    """One SFI trial."""

    outcome: str
    fault_event: int
    detect_latency: Optional[int]
    recovery_attempts: int
    trapped: bool = False
    hang: bool = False
    #: Extra dynamic instructions executed relative to the golden run —
    #: the re-execution "wasted work" of rollback recovery (paper §2.1).
    wasted_work: int = 0
    #: Consecutive rollbacks the worst region needed beyond the first
    #: (0 = every recovery committed on its first attempt).
    retries: int = 0
    #: Faults injected inside the recovery window (double-fault model).
    double_faults: int = 0
    #: Faults that landed in live recovery metadata (checkpoint log,
    #: register checkpoints, or the recovery pointer).
    metadata_faults: int = 0
    #: Corrupted metadata entries repaired from a shadow copy
    #: (``--guard dup`` only).
    metadata_repairs: int = 0
    #: Divergent chunks the replay detector flagged (replay backend
    #: only; ``detect_latency`` is then the *measured* latency of the
    #: first divergence, not a sampled one).
    replay_divergences: int = 0
    #: Dynamic instructions re-executed by replay checks (replay
    #: backend only) — the detector-side overhead of this trial.
    replay_overhead: int = 0
    #: Control-flow faults that actually struck a branch (a planned
    #: strike past the end of the dynamic path is dead time).
    control_faults: int = 0
    #: Illegal branch edges flagged by the signature monitor.
    cfe_detections: int = 0
    #: The (function, region) section the primary fault struck —
    #: attributed by the incremental subsystem (None outside it, and
    #: then omitted from journals for byte-stability).
    section: Optional[str] = None


def infra_error_trial() -> TrialResult:
    """The placeholder verdict for a trial the engine could not finish
    (worker crash after all pool retries, or wall-clock timeout)."""
    return TrialResult(
        outcome="infra_error", fault_event=-1, detect_latency=None,
        recovery_attempts=0,
    )


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-campaign; the completed prefix survives.

    Raised instead of a bare :class:`KeyboardInterrupt` so the CLI can
    flush the journal, report partial results, and print a resume hint
    rather than dying with a traceback.  ``results`` holds every trial
    that finished before the signal (keyed by trial index — already
    streamed to ``on_result``, so a journal has them on disk), and
    ``total`` is the trial count the campaign was aiming for.
    """

    def __init__(self, results: Dict[int, TrialResult], total: int) -> None:
        super().__init__()
        self.results = dict(results)
        self.total = total

    @property
    def done(self) -> int:
        return len(self.results)


@dataclasses.dataclass
class CampaignResult:
    """Aggregated SFI campaign statistics.

    ``elapsed``/``jobs``/``worker_trials`` describe how the campaign
    was executed (wall-clock seconds, worker count, trials per worker);
    they are reporting metadata only — the trial list itself is a pure
    function of ``(module, seed, trials, detector, faults_per_trial,
    recovery_faults_per_trial, policy)`` regardless of parallelism.
    ``pool_restarts`` counts worker pools rebuilt after a crash; any
    non-zero value (or any ``infra_error`` trial) marks a campaign that
    needed the resilience machinery.
    """

    trials: List[TrialResult]
    elapsed: float = 0.0
    jobs: int = 1
    worker_trials: Dict[str, int] = dataclasses.field(default_factory=dict)
    pool_restarts: int = 0
    resumed_trials: int = 0
    #: Share of the fault-site mass composed from a persisted section
    #: store instead of executed (incremental campaigns; 0.0 otherwise).
    composed_fraction: float = 0.0

    def count(self, outcome: str) -> int:
        return sum(1 for t in self.trials if t.outcome == outcome)

    def counts(self) -> Dict[str, int]:
        """Outcome tallies (all classes, zero-filled)."""
        return {outcome: self.count(outcome) for outcome in OUTCOMES}

    def fraction(self, outcome: str) -> float:
        if not self.trials:
            return 0.0
        return self.count(outcome) / len(self.trials)

    @property
    def covered_fraction(self) -> float:
        """Masked plus recovered (with or without retries): the faults
        the system tolerates."""
        return sum(self.fraction(outcome) for outcome in COVERED_OUTCOMES)

    @property
    def infra_errors(self) -> int:
        """Trials that never produced a verdict (crash/timeout)."""
        return self.count("infra_error")

    @property
    def throughput(self) -> float:
        """Completed trials per wall-clock second (0.0 if untimed)."""
        if self.elapsed <= 0.0:
            return 0.0
        return len(self.trials) / self.elapsed

    @property
    def mean_wasted_work(self) -> float:
        """Mean re-executed instructions across recovered trials."""
        recovered = [
            t for t in self.trials
            if t.outcome in ("recovered", "recovered_after_retry")
            and t.recovery_attempts > 0
        ]
        if not recovered:
            return 0.0
        return sum(t.wasted_work for t in recovered) / len(recovered)

    def coverage_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Covered-fraction estimate and normal-approximation CI
        half-width.  Incremental campaigns override this with the
        stratified Horvitz–Thompson estimator."""
        p = self.covered_fraction
        n = len(self.trials)
        if n <= 0:
            return 0.0, 0.0
        return p, z * (p * (1.0 - p) / n) ** 0.5

    def summary(self, extended: bool = False) -> Dict[str, float]:
        """Outcome fractions; ``extended`` adds execution statistics.

        The default (outcome fractions only, summing to 1.0 on a
        non-empty campaign) is deterministic for a given seed; the
        extended block adds wall-clock figures that are not.
        """
        base: Dict[str, float] = {
            outcome: self.fraction(outcome) for outcome in OUTCOMES
        }
        if self.composed_fraction:
            base["composed_fraction"] = self.composed_fraction
        if extended:
            base["trials"] = float(len(self.trials))
            base["jobs"] = float(self.jobs)
            base["elapsed_s"] = self.elapsed
            base["trials_per_sec"] = self.throughput
            base["pool_restarts"] = float(self.pool_restarts)
            base["resumed_trials"] = float(self.resumed_trials)
            for worker, count in sorted(self.worker_trials.items()):
                base[f"trials[{worker}]"] = float(count)
        return base


class _FaultInjector:
    """Post-step hook driving one trial: inject fault(s), then detect.

    ``faults`` is a list of ``(site, bit, latency)`` triples; the paper's
    single-event-upset model uses one, and the multi-fault extension
    study injects several.  Each fault arms its own detection deadline;
    when a deadline passes, the rollback decision is delegated to the
    trial's :class:`RecoverySupervisor`, which also gets a per-step
    callback for progress tracking, its watchdog, and the recovery-window
    (double-fault) injections.
    """

    def __init__(
        self,
        faults,
        supervisor: RecoverySupervisor,
        metadata_faults: Sequence[Tuple[int, str, int, int]] = (),
    ) -> None:
        self.pending = sorted(faults, key=lambda f: f[0])
        self.supervisor = supervisor
        self.fault_events: List[int] = []
        #: Faults that actually struck: (site, bit, latency, event index).
        self.injected: List[Tuple[int, int, Optional[int], int]] = []
        self.deadlines: List[int] = []
        #: Planned metadata strikes as (site, target, selector, bit).
        self.meta_pending = sorted(metadata_faults, key=lambda f: f[0])
        #: Metadata faults that found no live structure (dead metadata
        #: time — architecturally masked, like a dead-register strike).
        self.meta_masked = 0

    @property
    def fault_event(self) -> Optional[int]:
        return self.fault_events[0] if self.fault_events else None

    @property
    def detect_latency(self) -> Optional[int]:
        """The latency of the first fault that actually struck.

        ``None`` when no planned fault was reached (the injection hit
        dead time) or the detector missed the first one that was.
        """
        return self.injected[0][2] if self.injected else None

    def __call__(self, interp: Interpreter, event: StepEvent) -> None:
        while self.meta_pending and event.index >= self.meta_pending[0][0]:
            # Metadata faults strike storage, not a destination
            # register: they fire at their planned site regardless of
            # what instruction executed there.
            _site, target, selector, bit = self.meta_pending.pop(0)
            if not interp.guard.inject_fault(interp, target, selector, bit):
                self.meta_masked += 1
        if self.pending and event.index >= self.pending[0][0]:
            if event.inst.defs():
                site, bit, latency = self.pending.pop(0)
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), bit)
                self.fault_events.append(event.index)
                self.injected.append((site, bit, latency, event.index))
                if latency is not None:
                    bisect.insort(self.deadlines, event.index + latency)
                # Detection never fires on the injection step itself —
                # even a zero-latency detector sees the corruption one
                # dynamic instruction later.
                self.supervisor.on_step(interp, event)
                return
        while self.deadlines and event.index >= self.deadlines[0]:
            self.deadlines.pop(0)
            self.supervisor.on_detection(interp, event.index)
        self.supervisor.on_step(interp, event)


class _ControlFlowInjector:
    """Post-step hook for the control-flow fault surface.

    Each planned fault arms at its dynamic site and strikes the next
    branch executed at or after it — ``wrong`` kinds wait for a
    conditional ``br`` (an unconditional ``jmp`` has no wrong way),
    ``target`` kinds strike any branch.  Corruption happens *after* the
    branch committed its legal transfer, mirroring a transient in the
    branch-target path: the frame's current block is overwritten with
    the bogus label (or, for the wild selector slot, execution traps
    immediately — the fetch from a garbage address).

    When ``detector="signature"`` the hook doubles as the classic
    basic-block signature monitor: after every branch it checks the
    realized edge against the instruction's static successors and
    reports an illegal edge to the supervisor at once (latency 0).
    A wrong-way branch follows a legal edge and sails through — the
    honesty gap the ``cfe_silent`` outcome measures.
    """

    def __init__(
        self,
        faults: Sequence[Tuple[int, str, int]],
        detector: str,
        supervisor: RecoverySupervisor,
    ) -> None:
        if detector not in CFE_DETECTORS:
            raise ValueError(
                f"unknown cfe detector {detector!r}; "
                f"expected one of {CFE_DETECTORS}"
            )
        for _site, kind, _sel in faults:
            if kind not in CF_KINDS:
                raise ValueError(
                    f"unknown control-fault kind {kind!r}; "
                    f"expected one of {CF_KINDS}"
                )
        self.pending = sorted(faults, key=lambda f: f[0])
        self.detector = detector
        self.supervisor = supervisor
        #: Faults that struck: (event index, kind).
        self.injected: List[Tuple[int, str]] = []
        self.detections = 0
        self.wild = False

    def __call__(self, interp: Interpreter, event: StepEvent) -> None:
        inst = event.inst
        if inst.opcode not in ("br", "jmp"):
            return
        frames = interp.frames
        if not frames or frames[-1].id != event.frame_id:
            return
        frame = frames[-1]
        if self.pending and event.index >= self.pending[0][0]:
            kind = self.pending[0][1]
            if kind == "target" or inst.opcode == "br":
                _site, kind, selector = self.pending.pop(0)
                self._strike(interp, frame, event, kind, selector)
        if self.detector == "signature" and frame.block not in inst.successors():
            self.detections += 1
            self.supervisor.on_detection(interp, event.index)

    def _strike(self, interp, frame, event, kind: str, selector: int) -> None:
        self.injected.append((event.index, kind))
        if kind == "wrong":
            inst = event.inst
            frame.block = (
                inst.if_false if frame.block == inst.if_true else inst.if_true
            )
            return
        labels = sorted(frame.func.blocks)
        choice = selector % (len(labels) + 1)
        if choice == len(labels):
            # The extra selector slot: a target outside the function's
            # label space entirely — an immediately-trapping wild branch.
            self.wild = True
            raise Trap("cfe: wild branch target", interp.events)
        frame.block = labels[choice]


def golden_run(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps: int = 5_000_000,
    externals=None,
    engine: Optional[str] = None,
    memory_image: Optional[MachineMemory] = None,
    threads: int = 1,
    quantum: Optional[int] = None,
) -> ExecResult:
    """The fault-free reference execution trials are classified against.

    ``engine`` selects the interpreter (see
    :mod:`repro.runtime.engine`); both engines produce bit-identical
    results, so trial verdicts never depend on the choice.
    ``memory_image`` shares a pristine memory snapshot the run clones
    instead of re-materializing every global.  ``threads``/``quantum``
    configure the cooperative scheduler for multithreaded workloads
    (``threads=1``, the default, traps on any ``spawn``).
    """
    interp = make_interpreter(
        module, engine=engine, max_steps=max_steps, externals=externals,
        memory_image=memory_image, max_threads=threads, quantum=quantum,
    )
    return interp.run(function, args, output_objects=output_objects)


def run_trial(
    module: Module,
    golden: ExecResult,
    site: int,
    bit: int,
    latency: Optional[int],
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps_factor: int = 4,
    externals=None,
    policy: Optional[SupervisorPolicy] = None,
    recovery_faults: Sequence[Tuple[int, int, Optional[int]]] = (),
    metadata_faults: Sequence[Tuple[int, str, int, int]] = (),
    metadata_guard: str = "off",
    engine: Optional[str] = None,
    memory_image: Optional[MachineMemory] = None,
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    control_faults: Sequence[Tuple[int, str, int]] = (),
    cfe_detector: str = "signature",
    threads: int = 1,
    quantum: Optional[int] = None,
) -> TrialResult:
    """Execute one fault-injection trial and classify its outcome.

    ``site``/``bit``/``latency`` may be scalars (one fault, the paper's
    model) or equal-length lists for the multi-fault extension.
    ``policy`` bounds the recovery escalation ladder (default:
    :class:`SupervisorPolicy`), ``recovery_faults`` are the
    double-fault model's recovery-window strikes, and
    ``metadata_faults`` strike Encore's own recovery state —
    ``metadata_guard`` selects the protection level
    (:data:`repro.runtime.guarded_state.GUARD_LEVELS`) defending it.
    ``engine`` picks the interpreter; ``memory_image`` shares a
    pristine memory snapshot across trials of one campaign.

    ``detector_backend="replay"`` swaps the sampled-latency model for
    chunked record + replay (:mod:`repro.runtime.replay`): planned
    latencies are ignored (the fault sites and bits stay identical, so
    the two backends are head-to-head comparable at the same seed) and
    detection fires when a chunk's replay digest diverges, with the
    *measured* latency landing in ``detect_latency``.

    ``control_faults`` are planned control-flow strikes as ``(site,
    kind, selector)`` triples (see :data:`CF_KINDS`); ``cfe_detector``
    arms the branch-signature monitor against them.  ``threads`` bounds
    concurrently-live threads (1 = any ``spawn`` traps) and ``quantum``
    sets the cooperative scheduler's time slice — both must match the
    golden run's settings or verdicts are meaningless.
    """
    if detector_backend not in DETECTOR_BACKENDS:
        raise ValueError(
            f"unknown detector backend {detector_backend!r}; "
            f"expected one of {DETECTOR_BACKENDS}"
        )
    if isinstance(site, int):
        faults = [(site, bit, latency)]
    else:
        faults = list(zip(site, bit, latency))
    recovery_faults = tuple(recovery_faults)
    if detector_backend == "replay":
        # Replay detects by divergence, never by deadline: drop every
        # sampled latency but keep the sites/bits draws untouched.
        faults = [(s, b, None) for s, b, _ in faults]
        recovery_faults = tuple((o, b, None) for o, b, _ in recovery_faults)
    supervisor = RecoverySupervisor(policy, recovery_faults)
    injector = _FaultInjector(faults, supervisor, metadata_faults)
    cf_injector: Optional[_ControlFlowInjector] = None
    recorder: Optional[ChunkRecorder] = None
    pre_step = None
    post_step = injector
    if control_faults:
        cf_injector = _ControlFlowInjector(control_faults, cfe_detector,
                                           supervisor)

        def post_step(interp, event, _inj=injector, _cf=cf_injector):
            # Register/metadata surface first, then the control surface
            # — a branch's destination register is corrupted before its
            # realized edge is corrupted or checked.
            _inj(interp, event)
            _cf(interp, event)

    if detector_backend == "replay":
        recorder = ChunkRecorder(
            replay_chunk_size or REPLAY_CHUNK_DEFAULT,
            detector=ReplayDetector(module, externals=externals),
            supervisor=supervisor,
            injector=injector,
        )
        pre_step = recorder.on_pre_step

        def post_step(interp, event, _inj=post_step, _rec=recorder):
            # Injection first, so a corrupted destination register is
            # digested on its own step — guaranteeing the divergence
            # lands in the faulting chunk (latency <= chunk size).
            _inj(interp, event)
            _rec.on_post_step(interp, event)

    max_steps = max(golden.events * max_steps_factor, 10_000)
    interp = make_interpreter(
        module, engine=engine, max_steps=max_steps, pre_step=pre_step,
        post_step=post_step, externals=externals,
        metadata_guard=metadata_guard, memory_image=memory_image,
        max_threads=threads, quantum=quantum,
    )
    trapped = False
    hang = False
    escalation: Optional[str] = None
    result: Optional[ExecResult] = None
    try:
        result = interp.run(function, args, output_objects=output_objects)
    except EscalateTrial as esc:
        escalation = esc.reason
    except Trap:
        # A symptom the detector sees immediately: roll back under
        # supervision, and keep retrying while the supervisor allows —
        # a recovery that re-traps is exactly the livelock shape the
        # attempt bound exists for.
        trapped = True
        try:
            while True:
                if recorder is not None:
                    # The trap redirected control outside any step; the
                    # open chunk can never replay — drop it.
                    recorder.resync()
                if not supervisor.on_trap(interp, interp.events):
                    break  # no live recovery pointer: restart required
                try:
                    result = interp.resume(output_objects=output_objects)
                    break
                except Trap:
                    continue
                except ExecutionLimit:
                    hang = True
                    break
        except EscalateTrial as esc:
            escalation = esc.reason
    except ExecutionLimit:
        hang = True

    if recorder is not None and result is not None:
        # Check the final partial chunk: a divergence here is detection
        # after the program already finished.
        recorder.finalize(interp)
    fault_event = injector.fault_event if injector.fault_event is not None else -1
    retries = max(0, supervisor.max_streak - 1)
    if recorder is not None:
        detect_latency = recorder.first_latency
        replay_divergences = len(recorder.divergences)
        replay_overhead = recorder.detector.replayed_events
    else:
        detect_latency = injector.detect_latency
        replay_divergences = 0
        replay_overhead = 0
    cf_struck = len(cf_injector.injected) if cf_injector is not None else 0
    common = dict(
        fault_event=fault_event,
        detect_latency=detect_latency,
        recovery_attempts=supervisor.attempts,
        trapped=trapped,
        hang=hang,
        retries=retries,
        double_faults=supervisor.double_faults,
        metadata_faults=interp.guard.metadata_faults,
        metadata_repairs=interp.guard.repairs,
        replay_divergences=replay_divergences,
        replay_overhead=replay_overhead,
        control_faults=cf_struck,
        cfe_detections=cf_injector.detections if cf_injector is not None else 0,
    )

    def classify_cfe(outcome: str) -> str:
        """Re-attribute an outcome to the control-flow surface when a
        control-flow fault actually struck this trial.  Escalation
        outcomes (livelock, escape, metadata) keep their reason codes —
        they describe the *recovery* failure, not the fault surface."""
        if not cf_struck:
            return outcome
        if outcome in ("recovered", "recovered_after_retry"):
            return "cfe_detected_recovered"
        if outcome == "detected_unrecoverable" and cf_injector.wild:
            return "cfe_wild_trap"
        if outcome == "sdc":
            return "cfe_silent"
        return outcome

    if escalation is not None:
        outcome = escalation
        if (
            supervisor.double_faults
            and escalation not in ("livelock", "metadata_corrupt_detected")
        ):
            outcome = "double_fault_unrecoverable"
        return TrialResult(outcome=outcome, **common)
    if result is None:
        outcome = (
            "double_fault_unrecoverable"
            if supervisor.double_faults
            else "detected_unrecoverable"
        )
        return TrialResult(outcome=classify_cfe(outcome), **common)
    wasted = max(0, result.events - golden.events)
    correct = result.output == golden.output and result.value == golden.value
    if correct:
        if supervisor.attempts == 0:
            outcome = "masked"
        elif retries:
            outcome = "recovered_after_retry"
        else:
            outcome = "recovered"
    elif interp.guard.tainted_consumed:
        # A rollback consumed corrupted recovery metadata without
        # detection and the result is wrong: the restore itself wrote
        # garbage.  Distinguished from generic sdc because this is the
        # class the metadata guard exists to eliminate.
        outcome = "metadata_corrupt_silent"
    elif not injector.fault_events:
        # The fault site was never reached (shorter dynamic path): the
        # "injection" hit dead time — architecturally masked.
        outcome = "masked" if result.output == golden.output else "sdc"
    elif recorder is not None and recorder.end_divergence:
        # The replay check on the final partial chunk caught the
        # corruption, but the run had already completed wrong: detected
        # too late to recover — not silent.
        outcome = "detected_unrecoverable"
    else:
        outcome = "sdc"
    return TrialResult(outcome=classify_cfe(outcome), wasted_work=wasted,
                       **common)


def _alarm_available() -> bool:
    import signal

    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def call_with_timeout(fn: Callable[[], TrialResult],
                      seconds: Optional[float]):
    """Run ``fn`` under a wall-clock alarm; raise :class:`TrialTimeout`
    when it overruns.

    The guard uses ``SIGALRM`` so it can interrupt a trial stuck inside
    the interpreter loop; where alarms are unavailable (non-main thread,
    platforms without ``SIGALRM``) the call runs unguarded — the
    deterministic step budget still bounds runaway trials.
    """
    if not seconds or seconds <= 0 or not _alarm_available():
        return fn()
    import signal

    def _on_alarm(signum, frame):
        raise TrialTimeout(f"trial exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_planned_trial(
    module: Module,
    golden: ExecResult,
    plan: FaultPlan,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps_factor: int = 4,
    externals=None,
    policy: Optional[SupervisorPolicy] = None,
    trial_timeout: Optional[float] = None,
    metadata_guard: str = "off",
    engine: Optional[str] = None,
    memory_image: Optional[MachineMemory] = None,
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    cfe_detector: str = "signature",
    threads: int = 1,
    quantum: Optional[int] = None,
) -> TrialResult:
    """Execute one trial from a pre-derived :class:`FaultPlan`.

    Single-fault plans unpack to the scalar :func:`run_trial` form so
    ``TrialResult.detect_latency`` keeps its historical scalar shape.
    ``trial_timeout`` (seconds) is the campaign engine's wall-clock
    guard: an overrunning trial yields ``infra_error`` instead of
    stalling the whole campaign.
    """
    if plan.single:
        site, bit, latency = plan.sites[0], plan.bits[0], plan.latencies[0]
    else:
        site, bit, latency = list(plan.sites), list(plan.bits), list(plan.latencies)

    def _execute() -> TrialResult:
        return run_trial(
            module,
            golden,
            site,
            bit,
            latency,
            function=function,
            args=args,
            output_objects=output_objects,
            max_steps_factor=max_steps_factor,
            externals=externals,
            policy=policy,
            recovery_faults=plan.recovery_faults,
            metadata_faults=plan.metadata_faults,
            metadata_guard=metadata_guard,
            engine=engine,
            memory_image=memory_image,
            detector_backend=detector_backend,
            replay_chunk_size=replay_chunk_size,
            control_faults=plan.control_faults,
            cfe_detector=cfe_detector,
            threads=threads,
            quantum=quantum,
        )

    try:
        return call_with_timeout(_execute, trial_timeout)
    except TrialTimeout:
        return infra_error_trial()


def run_campaign(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    detector: Optional[DetectionModel] = None,
    trials: int = 200,
    seed: int = 0,
    faults_per_trial: int = 1,
    recovery_faults_per_trial: int = 0,
    metadata_faults_per_trial: int = 0,
    cf_faults_per_trial: int = 0,
    cfe_detector: str = "signature",
    metadata_guard: str = "off",
    externals=None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    policy: Optional[SupervisorPolicy] = None,
    trial_timeout: Optional[float] = None,
    max_pool_retries: int = 2,
    completed: Optional[Dict[int, TrialResult]] = None,
    on_result: Optional[Callable[[int, TrialResult], None]] = None,
    engine: Optional[str] = None,
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    threads: int = 1,
    quantum: Optional[int] = None,
) -> CampaignResult:
    """A full SFI campaign with uniformly-distributed fault sites.

    ``faults_per_trial > 1`` leaves the paper's single-event-upset model
    for the multi-fault extension study: several independent transients
    strike one execution, each with its own detection latency.
    ``recovery_faults_per_trial > 0`` additionally plans faults that
    strike *inside* recovery windows (the double-fault model), and
    ``metadata_faults_per_trial > 0`` plans faults that strike Encore's
    own recovery metadata, defended at level ``metadata_guard``.

    Every trial's randomness comes from its own seed-keyed substream
    (:func:`plan_trial`), so ``jobs > 1`` fans trials out across worker
    processes (see :mod:`repro.runtime.parallel`) and returns the exact
    ``TrialResult`` sequence of the serial path — merged back in trial
    order — by construction.  ``chunk_size`` tunes how many trials each
    worker task claims; ``progress`` is called as ``progress(done,
    total)`` whenever completed-trial counts advance.  Workloads whose
    ``externals`` cannot cross a process boundary fall back to the
    serial path silently.

    Resilience: ``trial_timeout`` bounds each trial's wall clock,
    ``max_pool_retries`` bounds worker-pool rebuilds after a crash
    (surviving trials then classify ``infra_error``), ``completed``
    seeds the campaign with journaled results to skip (resume), and
    ``on_result`` streams each newly-executed ``(index, result)`` pair
    — the campaign journal's append hook — in completion order.

    ``engine`` selects the interpreter for the golden run and every
    trial.  Both engines are bit-identical (the equivalence contract),
    so campaign results — and journals, which deliberately do not
    record the engine — are valid across engines: a campaign journaled
    under one engine can resume under the other.

    ``detector_backend="replay"`` measures detection with chunked
    record + replay instead of sampling latencies from ``detector``
    (``replay_chunk_size`` tunes the chunk length); the fault plans
    stay draw-for-draw identical, so replay campaigns are comparable
    to model campaigns at the same seed and remain jobs-independent
    and resumable like any other.

    ``cf_faults_per_trial > 0`` opens the control-flow fault surface
    (corrupted branch targets, wrong-way branches), its draws appended
    strictly after every existing draw so all other plans stay
    bit-identical; ``cfe_detector`` arms the branch-signature monitor.
    ``threads`` and ``quantum`` configure the cooperative scheduler
    for multithreaded workloads (``threads=1``, the default, keeps
    campaigns strictly single-threaded — a ``spawn`` traps).  The
    replay backend is refused for ``threads > 1``: replayed chunks
    cannot reconstruct scheduler state, so divergence verdicts would
    be meaningless.
    """
    if detector_backend not in DETECTOR_BACKENDS:
        raise ValueError(
            f"unknown detector backend {detector_backend!r}; "
            f"expected one of {DETECTOR_BACKENDS}"
        )
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if threads > 1 and detector_backend == "replay":
        raise ValueError(
            "the replay detection backend does not support multithreaded "
            "scheduling (threads > 1): replayed chunks cannot reconstruct "
            "scheduler state"
        )
    detector = detector or DetectionModel()
    start = time.monotonic()
    # One pristine memory image per campaign: every golden run and
    # trial clones it instead of re-materializing all globals.
    memory_image = MachineMemory.pristine(module)
    golden = golden_run(
        module, function, args, output_objects, externals=externals,
        engine=engine, memory_image=memory_image, threads=threads,
        quantum=quantum,
    )
    plans = plan_campaign(
        seed, trials, golden.events, detector,
        faults_per_trial, recovery_faults_per_trial,
        metadata_faults_per_trial, cf_faults_per_trial,
    )
    completed = dict(completed or {})
    completed = {
        index: trial for index, trial in completed.items() if index < trials
    }
    todo = [plan for plan in plans if plan.trial_index not in completed]
    resumed = len(plans) - len(todo)
    pool_restarts = 0

    def emit(index: int, trial: TrialResult) -> None:
        if on_result is not None:
            on_result(index, trial)

    if jobs > 1 and len(todo) > 1:
        from repro.runtime.parallel import ParallelUnavailable, run_parallel_campaign

        try:
            results, worker_trials, pool_restarts = run_parallel_campaign(
                module,
                todo,
                function=function,
                args=args,
                output_objects=output_objects,
                externals=externals,
                jobs=jobs,
                chunk_size=chunk_size,
                progress=progress,
                policy=policy,
                trial_timeout=trial_timeout,
                metadata_guard=metadata_guard,
                max_pool_retries=max_pool_retries,
                on_result=emit,
                done_offset=resumed,
                total=trials,
                engine=engine,
                detector_backend=detector_backend,
                replay_chunk_size=replay_chunk_size,
                cfe_detector=cfe_detector,
                threads=threads,
                quantum=quantum,
            )
        except ParallelUnavailable:
            pass
        except CampaignInterrupted as exc:
            # Journaled (resumed) trials are part of the partial result
            # the CLI reports, even though this run never re-executed
            # them.
            merged = dict(completed)
            merged.update(exc.results)
            raise CampaignInterrupted(merged, trials) from None
        else:
            by_index = dict(completed)
            by_index.update(
                (plan.trial_index, trial)
                for plan, trial in zip(todo, results)
            )
            return CampaignResult(
                [by_index[i] for i in range(trials)],
                elapsed=time.monotonic() - start,
                jobs=jobs,
                worker_trials=worker_trials,
                pool_restarts=pool_restarts,
                resumed_trials=resumed,
            )
    results = []
    done = 0
    finished: Dict[int, TrialResult] = dict(completed)
    try:
        for plan in plans:
            if plan.trial_index in completed:
                results.append(completed[plan.trial_index])
            else:
                trial = run_planned_trial(
                    module,
                    golden,
                    plan,
                    function=function,
                    args=args,
                    output_objects=output_objects,
                    externals=externals,
                    policy=policy,
                    trial_timeout=trial_timeout,
                    metadata_guard=metadata_guard,
                    engine=engine,
                    memory_image=memory_image,
                    detector_backend=detector_backend,
                    replay_chunk_size=replay_chunk_size,
                    cfe_detector=cfe_detector,
                    threads=threads,
                    quantum=quantum,
                )
                emit(plan.trial_index, trial)
                results.append(trial)
                finished[plan.trial_index] = trial
            done += 1
            if progress is not None:
                progress(done, trials)
    except KeyboardInterrupt:
        # Graceful SIGINT: everything already finished was streamed to
        # ``on_result`` (so a journal has it on disk); hand the partial
        # results up instead of an unhandled traceback.
        raise CampaignInterrupted(finished, trials) from None
    return CampaignResult(
        results,
        elapsed=time.monotonic() - start,
        jobs=1,
        worker_trials={"worker-0": len(results) - resumed},
        resumed_trials=resumed,
    )
