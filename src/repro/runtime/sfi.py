"""Statistical fault injection (SFI) campaigns (paper Section 4).

Each trial injects one transient fault — a bit flip in the destination
register of a uniformly-chosen dynamic instruction — into an execution
of the (Encore-instrumented) program, samples a detection latency from
the configured detector model, performs the Encore rollback when the
detector fires, and classifies the final outcome against a golden run:

* ``masked``       — the fault never affected the output (architectural
  masking) and no recovery was needed;
* ``recovered``    — the detector fired, rollback re-executed the
  region, and the output matches the golden run;
* ``detected_unrecoverable`` — the detector fired but no recovery
  pointer was live for the faulting context (control had left the
  region), or execution trapped/hung without a usable recovery block;
* ``sdc``          — silent data corruption: the run completed with a
  wrong result.

These empirical outcomes validate the analytical coverage model of
Section 4.2 (see ``benchmarks/test_sfi_validation.py``).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from repro.ir.module import Module
from repro.runtime.detection import DetectionModel
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    Interpreter,
    StepEvent,
    Trap,
    bitflip,
)

OUTCOMES = ("masked", "recovered", "detected_unrecoverable", "sdc")


@dataclasses.dataclass
class TrialResult:
    """One SFI trial."""

    outcome: str
    fault_event: int
    detect_latency: Optional[int]
    recovery_attempts: int
    trapped: bool = False
    hang: bool = False
    #: Extra dynamic instructions executed relative to the golden run —
    #: the re-execution "wasted work" of rollback recovery (paper §2.1).
    wasted_work: int = 0


@dataclasses.dataclass
class CampaignResult:
    """Aggregated SFI campaign statistics."""

    trials: List[TrialResult]

    def count(self, outcome: str) -> int:
        return sum(1 for t in self.trials if t.outcome == outcome)

    def fraction(self, outcome: str) -> float:
        if not self.trials:
            return 0.0
        return self.count(outcome) / len(self.trials)

    @property
    def covered_fraction(self) -> float:
        """Masked plus recovered: the faults the system tolerates."""
        return self.fraction("masked") + self.fraction("recovered")

    @property
    def mean_wasted_work(self) -> float:
        """Mean re-executed instructions across recovered trials."""
        recovered = [t for t in self.trials if t.outcome == "recovered"
                     and t.recovery_attempts > 0]
        if not recovered:
            return 0.0
        return sum(t.wasted_work for t in recovered) / len(recovered)

    def summary(self) -> Dict[str, float]:
        return {outcome: self.fraction(outcome) for outcome in OUTCOMES}


class _FaultInjector:
    """Post-step hook driving one trial: inject fault(s), then detect.

    ``faults`` is a list of ``(site, bit, latency)`` triples; the paper's
    single-event-upset model uses one, and the multi-fault extension
    study injects several.  Each fault arms its own detection deadline;
    detection rolls back through the current recovery pointer.
    """

    def __init__(self, faults) -> None:
        self.pending = sorted(faults, key=lambda f: f[0])
        self.fault_events: list = []
        self.deadlines: list = []  # (detect_at, handled?)
        self.recovery_attempts = 0
        self.recovery_failed = False

    @property
    def fault_event(self) -> Optional[int]:
        return self.fault_events[0] if self.fault_events else None

    def __call__(self, interp: Interpreter, event: StepEvent) -> None:
        if self.pending and event.index >= self.pending[0][0]:
            if event.inst.defs():
                site, bit, latency = self.pending.pop(0)
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), bit)
                self.fault_events.append(event.index)
                if latency is not None:
                    self.deadlines.append(event.index + latency)
                return
        while self.deadlines and event.index >= self.deadlines[0]:
            self.deadlines.pop(0)
            self.recovery_attempts += 1
            if not interp.trigger_recovery():
                self.recovery_failed = True
                raise _AbortTrial()


class _AbortTrial(Exception):
    """Detection fired with no live recovery pointer: restart required."""


def golden_run(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps: int = 5_000_000,
    externals=None,
) -> ExecResult:
    return Interpreter(module, max_steps=max_steps, externals=externals).run(
        function, args, output_objects=output_objects
    )


def run_trial(
    module: Module,
    golden: ExecResult,
    site: int,
    bit: int,
    latency: Optional[int],
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps_factor: int = 4,
    externals=None,
) -> TrialResult:
    """Execute one fault-injection trial and classify its outcome.

    ``site``/``bit``/``latency`` may be scalars (one fault, the paper's
    model) or equal-length lists for the multi-fault extension.
    """
    if isinstance(site, int):
        faults = [(site, bit, latency)]
    else:
        faults = list(zip(site, bit, latency))
    injector = _FaultInjector(faults)
    max_steps = max(golden.events * max_steps_factor, 10_000)
    interp = Interpreter(
        module, max_steps=max_steps, post_step=injector, externals=externals
    )
    trapped = False
    hang = False
    result: Optional[ExecResult] = None
    try:
        result = interp.run(function, args, output_objects=output_objects)
    except _AbortTrial:
        pass
    except Trap:
        # A symptom the detector sees immediately: try to roll back.
        trapped = True
        injector.detected = True
        injector.recovery_attempts += 1
        if interp.trigger_recovery(immediate=True):
            try:
                result = interp.resume(output_objects=output_objects)
            except (Trap, ExecutionLimit, _AbortTrial):
                result = None
        else:
            injector.recovery_failed = True
    except ExecutionLimit:
        hang = True

    fault_event = injector.fault_event if injector.fault_event is not None else -1
    if result is None:
        return TrialResult(
            outcome="detected_unrecoverable",
            fault_event=fault_event,
            detect_latency=latency,
            recovery_attempts=injector.recovery_attempts,
            trapped=trapped,
            hang=hang,
        )
    wasted = max(0, result.events - golden.events)
    correct = result.output == golden.output and result.value == golden.value
    if correct:
        outcome = "recovered" if injector.recovery_attempts else "masked"
    elif not injector.fault_events:
        # The fault site was never reached (shorter dynamic path): the
        # "injection" hit dead time — architecturally masked.
        outcome = "masked" if result.output == golden.output else "sdc"
    else:
        outcome = "sdc"
    return TrialResult(
        outcome=outcome,
        fault_event=fault_event,
        detect_latency=latency,
        recovery_attempts=injector.recovery_attempts,
        trapped=trapped,
        hang=hang,
        wasted_work=wasted,
    )


def run_campaign(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    detector: Optional[DetectionModel] = None,
    trials: int = 200,
    seed: int = 0,
    faults_per_trial: int = 1,
    externals=None,
) -> CampaignResult:
    """A full SFI campaign with uniformly-distributed fault sites.

    ``faults_per_trial > 1`` leaves the paper's single-event-upset model
    for the multi-fault extension study: several independent transients
    strike one execution, each with its own detection latency.
    """
    detector = detector or DetectionModel()
    rng = random.Random(seed)
    golden = golden_run(
        module, function, args, output_objects, externals=externals
    )
    results: List[TrialResult] = []
    for _ in range(trials):
        sites = sorted(
            rng.randrange(max(golden.events, 1)) for _ in range(faults_per_trial)
        )
        bits = [rng.randrange(0, 32) for _ in range(faults_per_trial)]
        latencies = [detector.sample_latency(rng) for _ in range(faults_per_trial)]
        if faults_per_trial == 1:
            site, bit, latency = sites[0], bits[0], latencies[0]
        else:
            site, bit, latency = sites, bits, latencies
        results.append(
            run_trial(
                module,
                golden,
                site,
                bit,
                latency,
                function=function,
                args=args,
                output_objects=output_objects,
                externals=externals,
            )
        )
    return CampaignResult(results)
