"""Per-thread execution state: the :class:`ExecutionContext`.

Everything mutable that belongs to *one thread of control* — the frame
stack, the pending recovery redirect, the finished flag and return
value, the cooperative-scheduling state — lives here, extracted from
the interpreter so both engines (:class:`~repro.runtime.interpreter.
ReferenceInterpreter` and :class:`~repro.runtime.predecode.
FastInterpreter`) execute instructions against a context instead of
owning the state themselves.

The interpreter *binds* one context at a time: binding aliases the
context's frame list into the interpreter's hot-loop attributes and
copies the few scalars in; suspending copies the scalars back.  A
single-threaded run binds the main context once and never suspends it,
so the refactor costs the hot loop nothing — the bound attributes are
exactly the fields the pre-refactor interpreter carried.  At every
scheduler switch point the context is the source of truth.

Machine-global state deliberately stays on the interpreter: memory,
the metadata guard, the step/cost counters (``events`` indexes fault
sites across *all* threads), the frame-id counter (frame ids are
unique machine-wide), and the replay chunk recorder's open chunk —
chunks seal at every thread switch, so an open chunk always belongs to
the currently bound context (see :mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

from typing import List, Optional

#: Context states for cooperative scheduling.
RUNNABLE = "runnable"
BLOCKED = "blocked"
DONE = "done"


class ExecutionContext:
    """The mutable state of one cooperative thread.

    ``tid`` 0 is the main thread; spawned threads get consecutive ids
    in spawn order, which (together with round-robin scheduling) is
    what makes multithreaded executions bit-replayable.
    """

    __slots__ = (
        "tid",
        "frames",
        "pending_redirect",
        "finished",
        "return_value",
        "state",
        "waiting_on",
        "steps",
    )

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.frames: List = []
        #: Label of a recovery block to enter after the current step
        #: (the detector-initiated redirect), or None.
        self.pending_redirect: Optional[str] = None
        self.finished = False
        self.return_value = None
        self.state = RUNNABLE
        #: Thread id this context is blocked joining, when state is
        #: BLOCKED.
        self.waiting_on: Optional[int] = None
        #: Dynamic instructions executed by this thread while the
        #: scheduler was active (settled at switch points).
        self.steps = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExecutionContext tid={self.tid} state={self.state} "
            f"frames={len(self.frames)} steps={self.steps}>"
        )
