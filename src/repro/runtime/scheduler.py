"""Deterministic cooperative round-robin scheduler.

Threads in this machine are *cooperative*: a thread runs until the
scheduler switches it out, and switches happen only at well-defined
points in the instruction stream, so a multithreaded execution is a
pure function of (module, inputs, quantum).  That property is what
keeps fault-injection campaigns over multithreaded workloads
bit-replayable — the same trial seed always sees the same interleaving
and therefore the same dynamic instruction stream.

Switch rules
------------

* A thread is switched out **immediately** when it blocks (``join`` on
  a live thread) or finishes (its root frame returns).
* Otherwise a thread runs for at least ``quantum`` dynamic
  instructions and is switched out at the *first block boundary* after
  the quantum expires: only ``br``/``jmp``/``call``/``ret``/``spawn``/
  ``join`` steps are eligible switch points.  Mid-block switches never
  happen, so Encore region undo-logs and replay chunks never observe a
  half-executed block from another thread.
* Candidates are scanned round-robin in thread-id order starting after
  the current thread; a blocked thread whose join target has finished
  is promoted back to runnable during the scan.
* The run ends when the **main** thread finishes (like process exit);
  still-live spawned threads are simply abandoned.  If every live
  thread is blocked the machine traps with a deterministic deadlock.

The scheduler is created lazily by the first ``spawn`` an execution
performs.  Single-threaded runs never construct one, which is how the
post-refactor interpreter stays bit-identical (and equally fast) on
the whole pre-existing corpus.

Every switch is recorded in ``switch_log`` as ``(event_index,
from_tid, to_tid)`` — the engine-equivalence tests assert the fast and
reference engines produce identical logs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.runtime.context import BLOCKED, DONE, RUNNABLE, ExecutionContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.interpreter import ReferenceInterpreter

#: Default scheduling quantum, in dynamic instruction steps.
DEFAULT_QUANTUM = 50

#: Opcodes at which an expired quantum may actually switch.  These are
#: exactly the block/frame boundaries: after any of them the bound
#: context sits at the start of an instruction run, never mid-block.
SWITCH_OPCODES = frozenset({"br", "jmp", "call", "ret", "spawn", "join"})


class CooperativeScheduler:
    """Round-robin scheduler over :class:`ExecutionContext` objects."""

    def __init__(self, quantum: Optional[int] = None) -> None:
        if quantum is not None and quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.quantum = DEFAULT_QUANTUM if quantum is None else quantum
        self.contexts: Dict[int, ExecutionContext] = {}
        #: Thread ids in creation order; the round-robin ring.
        self.ring: List[int] = []
        self.current: Optional[int] = None
        #: ``(event_index, from_tid, to_tid)`` per switch, in order.
        self.switch_log: List[Tuple[int, int, int]] = []
        self._slice = 0
        self._slice_start_events = 0
        self._next_tid = 1

    # -- context lifecycle -------------------------------------------------

    def adopt(self, ctx: ExecutionContext, events: int) -> None:
        """Register the already-running main context (first spawn)."""
        self.contexts[ctx.tid] = ctx
        self.ring.append(ctx.tid)
        self.current = ctx.tid
        self._slice_start_events = events

    def create_context(self) -> ExecutionContext:
        """Allocate a context for a newly spawned thread."""
        ctx = ExecutionContext(self._next_tid)
        self._next_tid += 1
        self.contexts[ctx.tid] = ctx
        self.ring.append(ctx.tid)
        return ctx

    def live_count(self) -> int:
        return sum(1 for c in self.contexts.values() if c.state != DONE)

    # -- the per-step hook -------------------------------------------------

    def after_step(self, interp: "ReferenceInterpreter", opcode: str) -> None:
        """Called by the engine at the end of every step while active."""
        self._slice += 1
        cur = interp.context
        if interp._finished:
            cur.state = DONE
            self._settle(interp, cur)
            if cur.tid == 0:
                # Main returned: the run is over; live spawned threads
                # are abandoned by design.
                return
            self._switch(interp, must=True)
            return
        if cur.state == BLOCKED:
            self._switch(interp, must=True)
            return
        if self._slice >= self.quantum and opcode in SWITCH_OPCODES:
            self._switch(interp, must=False)

    # -- internals ---------------------------------------------------------

    def _settle(self, interp: "ReferenceInterpreter", ctx: ExecutionContext) -> None:
        ctx.steps += interp.events - self._slice_start_events
        self._slice_start_events = interp.events

    def _pick_next(self) -> Optional[ExecutionContext]:
        """Next runnable context after ``current``, ring order.

        Blocked contexts whose join target has finished are promoted to
        runnable as they are scanned, which keeps wake-up order a pure
        function of the ring.
        """
        if not self.ring:
            return None
        start = self.ring.index(self.current)
        n = len(self.ring)
        for offset in range(1, n + 1):
            tid = self.ring[(start + offset) % n]
            if tid == self.current:
                continue
            ctx = self.contexts[tid]
            if ctx.state == BLOCKED:
                target = self.contexts.get(ctx.waiting_on)
                if target is not None and target.state == DONE:
                    ctx.state = RUNNABLE
                    ctx.waiting_on = None
            if ctx.state == RUNNABLE:
                return ctx
        return None

    def _switch(self, interp: "ReferenceInterpreter", must: bool) -> None:
        from repro.runtime.interpreter import Trap

        nxt = self._pick_next()
        if nxt is None:
            if must:
                cur = interp.context
                if cur.state == DONE:
                    # A non-main thread finished and nothing else can
                    # run: main must be blocked on a thread that will
                    # never finish (or on this one, which _pick_next
                    # would have woken).  Deterministic deadlock.
                    raise Trap("deadlock: all live threads blocked", interp.events)
                raise Trap(
                    f"deadlock: thread {cur.tid} blocked joining thread "
                    f"{cur.waiting_on} with no runnable thread",
                    interp.events,
                )
            # Quantum expired but nobody else can run: keep going.
            self._slice = 0
            return
        cur = interp.context
        self._settle(interp, cur)
        interp._suspend()
        self.switch_log.append((interp.events, cur.tid, nxt.tid))
        self.current = nxt.tid
        interp._bind(nxt)
        self._slice = 0
