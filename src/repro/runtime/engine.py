"""Engine selection: one name, two interchangeable interpreters.

The repo-wide ``Interpreter`` name resolves here.  Both engines execute
the same IR with bit-identical observable behaviour (the contract
``tests/test_engine_equivalence.py`` enforces); they differ only in how
they dispatch:

* ``"fast"`` — :class:`~repro.runtime.predecode.FastInterpreter`, the
  pre-decoded template-dispatch engine (the default);
* ``"reference"`` — :class:`~repro.runtime.interpreter.ReferenceInterpreter`,
  the decode-as-you-go loop the fast engine is measured against.

Selection order: an explicit ``engine=`` argument, else the
``ENCORE_ENGINE`` environment variable, else ``"fast"``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Type

from repro.ir.module import Module
from repro.runtime.interpreter import ReferenceInterpreter
from repro.runtime.predecode import FastInterpreter

ENGINES: Dict[str, Type[ReferenceInterpreter]] = {
    "fast": FastInterpreter,
    "reference": ReferenceInterpreter,
}

DEFAULT_ENGINE = "fast"

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV_VAR = "ENCORE_ENGINE"


def default_engine() -> str:
    """The session's engine name (``ENCORE_ENGINE`` or ``"fast"``)."""
    name = os.environ.get(ENGINE_ENV_VAR, DEFAULT_ENGINE)
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r} in ${ENGINE_ENV_VAR} "
            f"(choose from {sorted(ENGINES)})"
        )
    return name


def engine_class(name: Optional[str] = None) -> Type[ReferenceInterpreter]:
    """The interpreter class for ``name`` (or the session default)."""
    if name is None:
        name = default_engine()
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r} (choose from {sorted(ENGINES)})"
        ) from None


def make_interpreter(module: Module, *, engine: Optional[str] = None, **kwargs):
    """Build an interpreter on the selected engine.

    ``kwargs`` are the usual interpreter arguments (``max_steps``,
    ``pre_step``, ``post_step``, ``externals``, ``metadata_guard``,
    ``memory_image``).
    """
    return engine_class(engine)(module, **kwargs)
