"""Recovery supervision: bounded, reason-coded rollback escalation.

The paper's recovery mechanism is a single redirect to the region's
recovery block.  A real deployment needs more: a fault can strike
*during* recovery (the double-fault window RepTFD highlights), and a
recovery block whose inputs were corrupted outside the checkpoint set
re-triggers its own fault forever — localized rollback only pays off
when cascading restarts are bounded.  The :class:`RecoverySupervisor`
wraps every rollback decision of one SFI trial with exactly those
bounds:

* **per-region attempt accounting** — every rollback is charged to its
  ``(frame, region)`` key;
* **livelock detection** — ``K`` consecutive rollbacks into the same
  region header with no committed progress in between (no region exit,
  no frame pop, no transfer to another region) escalate to the
  ``livelock`` outcome instead of spinning until the step budget
  explodes;
* **a per-attempt watchdog** — an optional step budget per recovery
  attempt; a recovery that executes more dynamic instructions than the
  budget without committing is re-rolled (charging another attempt), so
  a silently-stuck recovery is bounded in *deterministic* dynamic
  instruction units, never wall-clock;
* **double-fault injection** — faults planned to strike *inside* the
  recovery window (``FaultPlan.recovery_*`` fields) are armed relative
  to the rollback event and classified separately when they defeat
  recovery.

Escalation is communicated by raising :class:`EscalateTrial` with one
of the reason codes in :data:`ESCALATIONS`; ``run_trial`` translates
the reason into the trial outcome.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

#: Reason codes an escalation can carry.  The supervisor itself raises
#: the first two; ``metadata_corrupt_detected`` is raised through the
#: same ladder by the metadata guard (``guarded_state.py``) when a
#: rollback's own state fails verification.
ESCALATIONS = (
    "livelock",
    "escape_unrecoverable",
    "metadata_corrupt_detected",
)


class EscalateTrial(Exception):
    """The supervisor gave up on recovery; the trial ends now.

    ``reason`` is one of :data:`ESCALATIONS` and becomes (part of) the
    trial outcome classification.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Bounds on the recovery escalation ladder.

    ``max_attempts`` is K: the number of consecutive rollbacks into the
    same region (without committed progress in between) tolerated
    before the trial is declared a livelock.  ``attempt_step_budget``
    is the per-attempt watchdog in dynamic instructions: a recovery
    attempt that runs longer than the budget without committing is
    re-rolled, charging another attempt (None disables the watchdog).
    Both are measured in deterministic units, so supervised campaigns
    remain bit-reproducible.
    """

    max_attempts: int = 3
    attempt_step_budget: Optional[int] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.attempt_step_budget is not None and self.attempt_step_budget < 1:
            raise ValueError("attempt_step_budget must be >= 1 or None")


#: A fault planned to strike during recovery: (offset after rollback,
#: bit to flip, detection latency or None).
RecoveryFault = Tuple[int, int, Optional[int]]


class RecoverySupervisor:
    """Tracks and bounds all rollback activity of one trial.

    Wired into the trial two ways: the fault injector forwards detector
    deadlines to :meth:`on_detection`, and the trial's post-step hook
    calls :meth:`on_step` every dynamic instruction so the supervisor
    can observe committed progress, run the watchdog, and inject the
    planned recovery-window faults.  The trap path of ``run_trial``
    calls :meth:`on_trap` instead of redirecting control itself.
    """

    def __init__(
        self,
        policy: Optional[SupervisorPolicy] = None,
        recovery_faults: Tuple[RecoveryFault, ...] = (),
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        # Recovery-window faults not yet armed; one is armed per rollback.
        self.pending_recovery_faults: List[RecoveryFault] = list(recovery_faults)
        # Armed recovery faults: (absolute event index, bit).
        self._armed: List[Tuple[int, int, Optional[int]]] = []
        # Detector deadlines owned by the supervisor (recovery faults).
        self._deadlines: List[int] = []
        self.attempts = 0                 # total rollbacks attempted
        self.streak = 0                   # consecutive no-progress rollbacks
        self.max_streak = 0               # worst streak seen (retry marker)
        self.double_faults = 0            # faults injected inside recovery
        self.recovery_failed = False      # a rollback found no live pointer
        # The (frame id, region id) of the active uncommitted rollback,
        # plus the event index it happened at (for the watchdog).
        self._active: Optional[Tuple[int, int]] = None
        self._active_since = 0

    # ------------------------------------------------------------------
    # progress observation, watchdog, recovery-window injection
    # ------------------------------------------------------------------

    def on_step(self, interp, event) -> None:
        """Per-step hook: progress tracking, watchdog, double faults."""
        self._inject_recovery_faults(interp, event)
        self._fire_deadlines(interp, event)
        if self._active is None:
            return
        frame_id, region_id = self._active
        # Judge progress on the frame that owns the rollback (a callee
        # frame on top of it is not progress — the region has not
        # committed until its own pointer moves or clears).  The lookup
        # spans every thread's stack: a suspended owner frame parked in
        # another execution context has not committed anything.
        finder = getattr(interp, "find_frame", None)
        if finder is not None:
            owner = finder(frame_id)
        else:
            owner = next(
                (c for c in interp.frames if c.id == frame_id), None
            )
        if (
            owner is None
            or owner.recovery_ptr is None
            or owner.recovery_ptr[0] != region_id
        ):
            # The rolled-back region exited (pointer cleared), the frame
            # popped, or control reached another region: committed
            # progress — the escalation streak resets.
            self._active = None
            self.streak = 0
            return
        budget = self.policy.attempt_step_budget
        if budget is not None and event.index - self._active_since > budget:
            # Watchdog: the attempt overran its step budget without
            # committing.  Re-roll (charging another attempt).
            self.request_rollback(interp, event.index)

    def _inject_recovery_faults(self, interp, event) -> None:
        if not self._armed or not interp.frames:
            return
        due = [f for f in self._armed if event.index >= f[0]]
        if not due:
            return
        from repro.runtime.interpreter import bitflip

        for fault in due:
            if not event.inst.defs():
                return  # wait for the next value-producing instruction
            self._armed.remove(fault)
            _site, bit, latency = fault
            dest = event.inst.defs()[0]
            frame = interp.current_frame
            frame.regs[dest] = bitflip(frame.regs.get(dest, 0), bit)
            self.double_faults += 1
            if latency is not None:
                self._deadlines.append(event.index + latency)

    def _fire_deadlines(self, interp, event) -> None:
        while self._deadlines and event.index >= min(self._deadlines):
            self._deadlines.remove(min(self._deadlines))
            self.on_detection(interp, event.index)

    # ------------------------------------------------------------------
    # rollback entry points
    # ------------------------------------------------------------------

    def on_detection(self, interp, event_index: int) -> None:
        """A detector deadline fired: roll back under supervision.

        Raises :class:`EscalateTrial` with ``escape_unrecoverable`` when
        no recovery pointer is live (the fault escaped its region) or
        ``livelock`` when the attempt bound is exhausted.
        """
        self.request_rollback(interp, event_index, immediate=False)

    def on_trap(self, interp, event_index: int) -> bool:
        """A trap symptom fired (outside a step): roll back immediately.

        Returns True when a recovery block was entered; False when no
        recovery pointer is live.  Raises :class:`EscalateTrial` on
        livelock like the deadline path.
        """
        return self.request_rollback(interp, event_index, immediate=True,
                                     escalate_on_escape=False)

    def request_rollback(
        self,
        interp,
        event_index: int,
        immediate: bool = False,
        escalate_on_escape: bool = True,
    ) -> bool:
        self.attempts += 1
        frame = interp.frames[-1] if interp.frames else None
        ptr = frame.recovery_ptr if frame is not None else None
        if frame is None or ptr is None:
            self.recovery_failed = True
            if escalate_on_escape:
                raise EscalateTrial("escape_unrecoverable")
            return False
        key = (frame.id, ptr[0])
        self.streak = self.streak + 1 if self._active == key else 1
        self.max_streak = max(self.max_streak, self.streak)
        if self.streak > self.policy.max_attempts:
            raise EscalateTrial("livelock")
        if not interp.trigger_recovery(immediate=immediate):
            self.recovery_failed = True
            if escalate_on_escape:
                raise EscalateTrial("escape_unrecoverable")
            return False
        self._active = key
        self._active_since = event_index
        if self.pending_recovery_faults:
            offset, bit, latency = self.pending_recovery_faults.pop(0)
            self._armed.append((event_index + offset, bit, latency))
        return True
