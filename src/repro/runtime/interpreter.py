"""The reference interpreter for the repro IR.

Executes modules instruction by instruction, exposing exactly the hooks
the reproduction needs:

* dynamic-instruction events (for profiling, trace capture and fault
  injection — ``pre_step``/``post_step`` callbacks receive resolved
  memory addresses);
* two step counters: ``events`` counts executed instructions (fault
  sites are drawn from this index), while ``cost`` charges each
  instruction's ``dynamic_cost`` so Encore instrumentation overhead is
  measured in the paper's dynamic-instruction currency;
* Encore recovery semantics: ``SetRecoveryPtr`` publishes the active
  region in a frame-local slot (the paper reserves a region of the stack
  for recovery state, so the pointer survives calls to instrumented
  callees), ``CheckpointReg``/``CheckpointMem`` push undo records, and
  :meth:`Interpreter.trigger_recovery` performs the detector-initiated
  redirect to the recovery block;
* traps (out-of-bounds accesses, division by zero) surface as
  :class:`Trap` outcomes — the "highly visible symptoms" that low-cost
  detectors key on.

This module defines the **reference engine**: the simple decode-as-you-go
loop every other engine is measured against.  The pre-decoded fast
engine lives in :mod:`repro.runtime.predecode`; engine selection (and
the ``Interpreter`` name itself, which resolves to the session's default
engine) goes through :mod:`repro.runtime.engine`.  Whatever the engine,
observable behaviour — events, costs, traps, recovery state, hook
streams — must be bit-identical; ``tests/test_engine_equivalence.py``
enforces that contract.
"""

from __future__ import annotations

import dataclasses
import math
import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import wrap_int
from repro.ir.values import Constant, MemoryObject, MemRef, VirtualRegister
from repro.runtime.context import BLOCKED, ExecutionContext
from repro.runtime.guarded_state import RecoveryStateGuard
from repro.runtime.memory import MachineMemory, MemoryError_, Pointer, Word


class ExecutionLimit(Exception):
    """The step budget was exhausted (runaway execution)."""


class Trap(Exception):
    """A run-time fault symptom (bad memory access, div-by-zero, ...)."""

    def __init__(self, reason: str, event_index: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.event_index = event_index


@dataclasses.dataclass
class StepEvent:
    """Description of one executed instruction, passed to hooks."""

    index: int
    func: str
    block: str
    inst_index: int
    inst: Instruction
    frame_id: int
    loads: List[Tuple[str, int]]
    stores: List[Tuple[str, int]]


@dataclasses.dataclass
class ExecResult:
    """Outcome of a completed (non-trapping) execution."""

    value: Optional[Word]
    events: int
    cost: int
    app_cost: int
    instrumentation_cost: int
    output: Dict[str, List[Word]]

    @property
    def overhead(self) -> float:
        """Instrumentation cost as a fraction of application cost."""
        if self.app_cost == 0:
            return 0.0
        return self.instrumentation_cost / self.app_cost


class _Frame:
    __slots__ = (
        "id",
        "func",
        "regs",
        "block",
        "ip",
        "stack_instances",
        "ret_dest",
        "region_ckpts",
        "recovery_ptr",
    )

    def __init__(self, frame_id: int, func: Function) -> None:
        self.id = frame_id
        self.func = func
        self.regs: Dict[VirtualRegister, Word] = {}
        self.block = func.entry_label
        self.ip = 0
        self.stack_instances: Dict[str, str] = {}
        self.ret_dest: Optional[VirtualRegister] = None
        # region id -> list of undo records pushed since region entry
        self.region_ckpts: Dict[int, List[tuple]] = {}
        # Frame-local recovery slot: (region id, recovery block label).
        self.recovery_ptr: Optional[Tuple[int, str]] = None


Hook = Callable[["ReferenceInterpreter", StepEvent], None]
ExternalFn = Callable[[Sequence[Word]], Word]


class ReferenceInterpreter:
    """Executes one module.

    Instances are **single-run**: each carries the mutable state of one
    execution (frames, machine memory, undo logs, recovery pointers,
    cost counters), so ``run()`` may be called at most once — a second
    call raises ``RuntimeError``.  ``resume()`` after an
    externally-handled :class:`Trap` continues the *same* run and is
    always allowed.

    The run's **inputs** are a different story: the ``Module``, a golden
    ``ExecResult``, and a pristine ``memory_image`` are never mutated by
    execution, so sharing them across any number of interpreter
    instances (and across campaign worker processes, the way
    ``runtime/parallel.py`` does) is safe and encouraged.  A fresh
    instance per run is exactly what guarantees that no ``_Frame``
    state — ``recovery_ptr``, ``region_ckpts``, register files — leaks
    from one trial into the next.
    """

    def __init__(
        self,
        module: Module,
        max_steps: int = 20_000_000,
        pre_step: Optional[Hook] = None,
        post_step: Optional[Hook] = None,
        externals: Optional[Dict[str, ExternalFn]] = None,
        metadata_guard: str = "off",
        memory_image: Optional[MachineMemory] = None,
        max_threads: Optional[int] = None,
        quantum: Optional[int] = None,
    ) -> None:
        self.module = module
        self.max_steps = max_steps
        # Cooperative threading: max concurrently-live threads counting
        # main (None = unlimited; 1 = spawn traps), and the scheduling
        # quantum in dynamic instructions (None = scheduler default).
        # The scheduler itself is created lazily by the first spawn, so
        # single-threaded runs carry none of its machinery.
        self.max_threads = max_threads
        self.quantum = quantum
        self.scheduler = None
        self.context: Optional[ExecutionContext] = None
        self.pre_step = pre_step
        self.post_step = post_step
        self.externals: Dict[str, ExternalFn] = dict(externals or {})
        # Self-protection of the recovery metadata itself: seals every
        # checkpoint record and recovery pointer on write and verifies
        # them before any rollback consumes them (guarded_state.py).
        self.guard = RecoveryStateGuard(metadata_guard)
        # A campaign runs the same module thousands of times; cloning a
        # pristine image is much cheaper than re-materializing every
        # global, and bit-identical to it by construction.
        if memory_image is not None:
            self.memory = memory_image.clone()
        else:
            self.memory = MachineMemory.pristine(module)
        self.frames: List[_Frame] = []
        self._started = False
        self.events = 0
        self.cost = 0
        self.app_cost = 0
        self.instrumentation_cost = 0
        self._frame_counter = 0
        self._pending_redirect: Optional[str] = None
        self._finished = False
        self._return_value: Optional[Word] = None
        # Peak undo-log footprint per region id, in words (registers
        # cost one word, memory entries two) — the measured counterpart
        # of Table 1's checkpoint-storage column.
        self.peak_ckpt_words: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        function: str = "main",
        args: Sequence[Word] = (),
        output_objects: Sequence[str] = (),
    ) -> ExecResult:
        """Execute ``function`` to completion and snapshot ``output_objects``."""
        if self._started:
            raise RuntimeError(
                "interpreter instances are single-run: build a fresh "
                "instance per execution (sharing the module, golden "
                "result, and memory image across runs is fine)"
            )
        self._started = True
        self._bind(ExecutionContext(0))
        self._push_frame(self.module.function(function), args, ret_dest=None)
        return self.resume(output_objects)

    def resume(self, output_objects: Sequence[str] = ()) -> ExecResult:
        """Continue execution (e.g. after an externally-handled trap)."""
        while not self._finished:
            self._step()
        return ExecResult(
            value=self._return_value,
            events=self.events,
            cost=self.cost,
            app_cost=self.app_cost,
            instrumentation_cost=self.instrumentation_cost,
            output=self.memory.snapshot(output_objects),
        )

    @property
    def current_frame(self) -> _Frame:
        return self.frames[-1]

    # -- execution contexts ---------------------------------------------

    def _bind(self, ctx: ExecutionContext) -> None:
        """Make ``ctx`` the running thread.

        Binding aliases the context's frame list into ``self.frames``
        (so the hot loop mutates the context's own stack directly) and
        copies the per-thread scalars in.  The inverse, :meth:`_suspend`,
        copies the scalars back; both run only at scheduler switch
        points, never per step.
        """
        self.context = ctx
        self.frames = ctx.frames
        self._pending_redirect = ctx.pending_redirect
        self._finished = ctx.finished
        self._return_value = ctx.return_value

    def _suspend(self) -> None:
        """Write the bound scalars back into the current context."""
        ctx = self.context
        ctx.pending_redirect = self._pending_redirect
        ctx.finished = self._finished
        ctx.return_value = self._return_value

    def find_frame(self, frame_id: int) -> Optional[_Frame]:
        """Find a live frame by id across every thread's stack."""
        for frame in self.frames:
            if frame.id == frame_id:
                return frame
        if self.scheduler is not None:
            for ctx in self.scheduler.contexts.values():
                if ctx is self.context:
                    continue
                for frame in ctx.frames:
                    if frame.id == frame_id:
                        return frame
        return None

    def corrupt_register(self, frame_id: int, reg: VirtualRegister, value: Word) -> None:
        """Overwrite a register (fault-injection entry point)."""
        frame = self.find_frame(frame_id)
        if frame is None:
            raise KeyError(f"no live frame {frame_id}")
        frame.regs[reg] = value

    def trigger_recovery(self, immediate: bool = False) -> bool:
        """Detector hook: redirect control to the active recovery block.

        Returns True when a recovery block was entered; False when no
        recovery pointer is live for the current frame (the fault escaped
        its region — unrecoverable by Encore).

        With ``immediate=False`` (for calls from a post-step hook) the
        redirect is applied after the current step completes; with
        ``immediate=True`` (for calls from a trap handler, outside any
        step) control moves right away so ``resume`` re-enters at the
        recovery block instead of re-executing the trapping instruction.
        """
        if not self.frames:
            return False
        frame = self.frames[-1]
        if frame.recovery_ptr is None:
            return False
        # Verify the pointer before following it: a corrupted pointer is
        # a wild branch target.  May raise MetadataCorruption (detected,
        # graceful escalation) or repair from the shadow copy.
        ptr, guard_cost = self.guard.verify_pointer(frame)
        self._charge_guard(guard_cost)
        if ptr is None:
            return False
        _region_id, label = ptr
        if label not in frame.func.blocks:
            return False
        if immediate:
            frame.block = label
            frame.ip = 0
        else:
            self._pending_redirect = label
        return True

    # ------------------------------------------------------------------
    # frame management
    # ------------------------------------------------------------------

    def _push_frame(
        self,
        func: Function,
        args: Sequence[Word],
        ret_dest: Optional[VirtualRegister],
    ) -> None:
        if len(args) != len(func.params):
            raise TypeError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        self._frame_counter += 1
        frame = _Frame(self._frame_counter, func)
        frame.ret_dest = ret_dest
        for param, arg in zip(func.params, args):
            frame.regs[param] = arg
        for name, obj in func.stack_objects.items():
            instance = self.memory.materialize(obj, f"{name}@f{frame.id}")
            frame.stack_instances[name] = instance
        self.frames.append(frame)

    def _pop_frame(self, value: Optional[Word]) -> None:
        frame = self.frames.pop()
        for instance in frame.stack_instances.values():
            self.memory.release(instance)
        if not self.frames:
            self._finished = True
            self._return_value = value
        elif frame.ret_dest is not None:
            self.frames[-1].regs[frame.ret_dest] = value if value is not None else 0

    # ------------------------------------------------------------------
    # value plumbing
    # ------------------------------------------------------------------

    def _eval(self, frame: _Frame, operand) -> Word:
        if isinstance(operand, Constant):
            return operand.value
        return frame.regs.get(operand, 0)

    def _resolve(self, frame: _Frame, ref: MemRef) -> Tuple[str, int]:
        index = self._eval(frame, ref.index)
        if isinstance(index, float):
            index = int(index)
        base = ref.base
        if isinstance(base, MemoryObject):
            if base.kind == "stack":
                name = frame.stack_instances.get(base.name)
                if name is None:
                    raise Trap(
                        f"stack object {base.name} not in frame", self.events
                    )
            else:
                name = base.name
            return name, index
        value = frame.regs.get(base)
        if not isinstance(value, Pointer):
            raise Trap(f"indirect access through non-pointer {base}", self.events)
        return value.obj, value.offset + index

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def _step(self) -> None:
        if self.events >= self.max_steps:
            raise ExecutionLimit(f"exceeded {self.max_steps} dynamic instructions")
        frame = self.frames[-1]
        block = frame.func.blocks[frame.block]
        if frame.ip >= len(block.instructions):
            raise Trap(f"fell off end of block {frame.block}", self.events)
        inst = block.instructions[frame.ip]

        event = StepEvent(
            index=self.events,
            func=frame.func.name,
            block=frame.block,
            inst_index=frame.ip,
            inst=inst,
            frame_id=frame.id,
            loads=[],
            stores=[],
        )
        if self.pre_step is not None:
            self.pre_step(self, event)

        self._execute(frame, inst, event)

        self.events += 1
        self.cost += inst.dynamic_cost
        if inst.is_instrumentation:
            self.instrumentation_cost += inst.dynamic_cost
        else:
            self.app_cost += inst.dynamic_cost

        if self.post_step is not None:
            self.post_step(self, event)

        if self._pending_redirect is not None and self.frames:
            self.frames[-1].block = self._pending_redirect
            self.frames[-1].ip = 0
            self._pending_redirect = None

        if self.scheduler is not None:
            self.scheduler.after_step(self, inst.opcode)

    # ------------------------------------------------------------------
    # instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, frame: _Frame, inst: Instruction, event: StepEvent) -> None:
        op = inst.opcode
        handler = _DISPATCH.get(op)
        if handler is None:
            raise Trap(f"unknown opcode {op}", self.events)
        handler(self, frame, inst, event)

    def _advance(self, frame: _Frame) -> None:
        frame.ip += 1

    def _charge_guard(self, guard_cost: int) -> None:
        """Charge metadata-guard work as instrumentation cost.

        Seal/verify/repair work rides on the instrumentation
        instruction that caused it, in the same dynamic-instruction
        currency as the checkpoints themselves, so ``--guard`` levels
        change measured overhead but never the event stream.
        """
        if guard_cost:
            self.cost += guard_cost
            self.instrumentation_cost += guard_cost

    # -- arithmetic -----------------------------------------------------

    def _do_binop(self, frame: _Frame, inst, event) -> None:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        frame.regs[inst.dest] = self._apply_binop(inst.op, lhs, rhs)
        self._advance(frame)

    def _apply_binop(self, op: str, lhs: Word, rhs: Word) -> Word:
        if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
            return self._pointer_binop(op, lhs, rhs)
        if op == "add":
            return wrap_int(int(lhs) + int(rhs))
        if op == "sub":
            return wrap_int(int(lhs) - int(rhs))
        if op == "mul":
            return wrap_int(int(lhs) * int(rhs))
        if op == "sdiv":
            if int(rhs) == 0:
                raise Trap("integer division by zero", self.events)
            return wrap_int(int(int(lhs) / int(rhs)))  # trunc toward zero
        if op == "srem":
            if int(rhs) == 0:
                raise Trap("integer remainder by zero", self.events)
            return wrap_int(int(lhs) - int(int(lhs) / int(rhs)) * int(rhs))
        if op == "and":
            return wrap_int(int(lhs) & int(rhs))
        if op == "or":
            return wrap_int(int(lhs) | int(rhs))
        if op == "xor":
            return wrap_int(int(lhs) ^ int(rhs))
        if op == "shl":
            return wrap_int(int(lhs) << (int(rhs) & 63))
        if op == "lshr":
            return wrap_int((int(lhs) & ((1 << 64) - 1)) >> (int(rhs) & 63))
        if op == "ashr":
            return wrap_int(int(lhs) >> (int(rhs) & 63))
        if op == "min":
            return min(int(lhs), int(rhs))
        if op == "max":
            return max(int(lhs), int(rhs))
        if op == "fadd":
            return float(lhs) + float(rhs)
        if op == "fsub":
            return float(lhs) - float(rhs)
        if op == "fmul":
            return float(lhs) * float(rhs)
        if op == "fdiv":
            if float(rhs) == 0.0:
                raise Trap("float division by zero", self.events)
            return float(lhs) / float(rhs)
        if op == "fmin":
            return min(float(lhs), float(rhs))
        if op == "fmax":
            return max(float(lhs), float(rhs))
        raise Trap(f"unhandled binop {op}", self.events)

    def _pointer_binop(self, op: str, lhs: Word, rhs: Word) -> Word:
        if op == "add":
            if isinstance(lhs, Pointer) and isinstance(rhs, (int, float)):
                return lhs.advanced(int(rhs))
            if isinstance(rhs, Pointer) and isinstance(lhs, (int, float)):
                return rhs.advanced(int(lhs))
        if op == "sub" and isinstance(lhs, Pointer):
            if isinstance(rhs, (int, float)):
                return lhs.advanced(-int(rhs))
            if isinstance(rhs, Pointer) and rhs.obj == lhs.obj:
                return lhs.offset - rhs.offset
        raise Trap(f"invalid pointer arithmetic: {op}", self.events)

    def _do_unop(self, frame: _Frame, inst, event) -> None:
        src = self._eval(frame, inst.src)
        op = inst.op
        if isinstance(src, Pointer):
            raise Trap(f"unary {op} on pointer", self.events)
        if op == "neg":
            value: Word = wrap_int(-int(src))
        elif op == "not":
            value = wrap_int(~int(src))
        elif op == "fneg":
            value = -float(src)
        elif op == "sitofp":
            value = float(int(src))
        elif op == "fptosi":
            value = wrap_int(int(float(src)))
        elif op == "fsqrt":
            if float(src) < 0:
                raise Trap("sqrt of negative", self.events)
            value = math.sqrt(float(src))
        elif op == "fabs":
            value = abs(float(src))
        else:
            raise Trap(f"unhandled unop {op}", self.events)
        frame.regs[inst.dest] = value
        self._advance(frame)

    def _do_cmp(self, frame: _Frame, inst, event) -> None:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        pred = inst.pred
        if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
            if pred == "eq":
                result = int(lhs == rhs)
            elif pred == "ne":
                result = int(lhs != rhs)
            else:
                raise Trap(f"pointer compare {pred}", self.events)
        elif pred in ("eq", "feq"):
            result = int(lhs == rhs)
        elif pred in ("ne", "fne"):
            result = int(lhs != rhs)
        elif pred in ("slt", "flt"):
            result = int(lhs < rhs)
        elif pred in ("sle", "fle"):
            result = int(lhs <= rhs)
        elif pred in ("sgt", "fgt"):
            result = int(lhs > rhs)
        elif pred in ("sge", "fge"):
            result = int(lhs >= rhs)
        else:
            raise Trap(f"unhandled predicate {pred}", self.events)
        frame.regs[inst.dest] = result
        self._advance(frame)

    def _do_select(self, frame: _Frame, inst, event) -> None:
        cond = self._eval(frame, inst.cond)
        chosen = inst.if_true if _truthy(cond) else inst.if_false
        frame.regs[inst.dest] = self._eval(frame, chosen)
        self._advance(frame)

    def _do_mov(self, frame: _Frame, inst, event) -> None:
        frame.regs[inst.dest] = self._eval(frame, inst.src)
        self._advance(frame)

    def _do_addrof(self, frame: _Frame, inst, event) -> None:
        name, index = self._resolve(frame, inst.ref)
        frame.regs[inst.dest] = Pointer(name, index)
        self._advance(frame)

    # -- memory -----------------------------------------------------------

    def _do_load(self, frame: _Frame, inst, event) -> None:
        name, index = self._resolve(frame, inst.ref)
        try:
            value = self.memory.read(name, index)
        except MemoryError_ as exc:
            raise Trap(str(exc), self.events) from None
        event.loads.append((name, index))
        frame.regs[inst.dest] = value
        self._advance(frame)

    def _do_store(self, frame: _Frame, inst, event) -> None:
        name, index = self._resolve(frame, inst.ref)
        value = self._eval(frame, inst.value)
        try:
            self.memory.write(name, index, value)
        except MemoryError_ as exc:
            raise Trap(str(exc), self.events) from None
        event.stores.append((name, index))
        self._advance(frame)

    def _do_alloc(self, frame: _Frame, inst, event) -> None:
        size = self._eval(frame, inst.size)
        if isinstance(size, float):
            size = int(size)
        site = f"heap:{frame.func.name}:{frame.block}"
        try:
            name = self.memory.allocate_heap(int(size), site)
        except MemoryError_ as exc:
            raise Trap(str(exc), self.events) from None
        frame.regs[inst.dest] = Pointer(name, 0)
        self._advance(frame)

    # -- control ------------------------------------------------------------

    def _do_br(self, frame: _Frame, inst, event) -> None:
        cond = self._eval(frame, inst.cond)
        target = inst.if_true if _truthy(cond) else inst.if_false
        frame.block = target
        frame.ip = 0

    def _do_jmp(self, frame: _Frame, inst, event) -> None:
        frame.block = inst.target
        frame.ip = 0

    def _do_call(self, frame: _Frame, inst, event) -> None:
        args = [self._eval(frame, a) for a in inst.args]
        callee = self.module.get_function(inst.callee)
        self._advance(frame)
        if callee is not None:
            self._push_frame(callee, args, ret_dest=inst.dest)
            return
        handler = self.externals.get(inst.callee, _default_external)
        result = handler(args)
        if inst.dest is not None:
            frame.regs[inst.dest] = result if result is not None else 0

    def _do_ret(self, frame: _Frame, inst, event) -> None:
        value = self._eval(frame, inst.value) if inst.value is not None else None
        self._pop_frame(value)

    # -- threads -------------------------------------------------------------

    def _do_spawn(self, frame: _Frame, inst, event) -> None:
        callee = self.module.get_function(inst.callee)
        if callee is None:
            raise Trap(f"spawn of unknown function {inst.callee}", self.events)
        args = [self._eval(frame, a) for a in inst.args]
        if len(args) != len(callee.params):
            raise TypeError(
                f"{callee.name} expects {len(callee.params)} args, got {len(args)}"
            )
        if self.scheduler is None:
            # First spawn of the run: bring up the scheduler around the
            # already-running main context.  (A replayed chunk executes
            # without run() having built a context — synthesize one.)
            from repro.runtime.scheduler import CooperativeScheduler

            if self.context is None:
                ctx = ExecutionContext(0)
                ctx.frames = self.frames
                self.context = ctx
            self.scheduler = CooperativeScheduler(quantum=self.quantum)
            self.scheduler.adopt(self.context, self.events)
        if (
            self.max_threads is not None
            and self.scheduler.live_count() + 1 > self.max_threads
        ):
            raise Trap(
                f"spawn exceeds thread limit of {self.max_threads}", self.events
            )
        ctx = self.scheduler.create_context()
        self._frame_counter += 1
        root = _Frame(self._frame_counter, callee)
        for param, arg in zip(callee.params, args):
            root.regs[param] = arg
        for name, obj in callee.stack_objects.items():
            instance = self.memory.materialize(obj, f"{name}@f{root.id}")
            root.stack_instances[name] = instance
        ctx.frames.append(root)
        frame.regs[inst.dest] = ctx.tid
        self._advance(frame)

    def _do_join(self, frame: _Frame, inst, event) -> None:
        tid = self._eval(frame, inst.thread)
        if isinstance(tid, float):
            tid = int(tid)
        sched = self.scheduler
        target = (
            sched.contexts.get(tid)
            if sched is not None and isinstance(tid, int)
            else None
        )
        if target is None:
            raise Trap(f"join of unknown thread {tid}", self.events)
        if target.state == "done":
            value = target.return_value
            frame.regs[inst.dest] = value if value is not None else 0
            self._advance(frame)
            return
        # Target still live: charge this attempt, leave ip untouched so
        # the join re-executes when this thread is scheduled again, and
        # let the scheduler switch us out at the end of the step.
        self.context.state = BLOCKED
        self.context.waiting_on = tid

    # -- Encore instrumentation ----------------------------------------------

    def _do_set_recovery_ptr(self, frame: _Frame, inst, event) -> None:
        frame.recovery_ptr = (inst.region_id, inst.recovery_label)
        frame.region_ckpts[inst.region_id] = []
        self._charge_guard(self.guard.on_publish(frame))
        self._advance(frame)

    def _do_clear_recovery_ptr(self, frame: _Frame, inst, event) -> None:
        # Conditional on the region id: a join block reachable from
        # several regions only invalidates the pointer its own exit
        # published.  The undo log is dropped with it — nothing can
        # roll back into the region any more.
        if frame.recovery_ptr is not None and frame.recovery_ptr[0] == inst.region_id:
            frame.recovery_ptr = None
            frame.region_ckpts[inst.region_id] = []
            self._charge_guard(self.guard.on_clear(frame, inst.region_id))
        self._advance(frame)

    def _do_ckpt_reg(self, frame: _Frame, inst, event) -> None:
        record = ("reg", inst.reg, frame.regs.get(inst.reg, 0))
        frame.region_ckpts.setdefault(inst.region_id, []).append(record)
        self._charge_guard(self.guard.on_push(frame, inst.region_id, record))
        self._track_ckpt(frame, inst.region_id)
        self._advance(frame)

    def _do_ckpt_mem(self, frame: _Frame, inst, event) -> None:
        name, index = self._resolve(frame, inst.ref)
        try:
            value = self.memory.read(name, index)
        except MemoryError_ as exc:
            raise Trap(str(exc), self.events) from None
        event.loads.append((name, index))
        record = ("mem", name, index, value)
        frame.region_ckpts.setdefault(inst.region_id, []).append(record)
        self._charge_guard(self.guard.on_push(frame, inst.region_id, record))
        self._track_ckpt(frame, inst.region_id)
        self._advance(frame)

    def _track_ckpt(self, frame: _Frame, region_id: int) -> None:
        words = sum(
            2 if record[0] == "mem" else 1
            for record in frame.region_ckpts.get(region_id, ())
        )
        if words > self.peak_ckpt_words.get(region_id, 0):
            self.peak_ckpt_words[region_id] = words

    def _do_restore(self, frame: _Frame, inst, event) -> None:
        # Verify the undo log before consuming it: corrupted records are
        # repaired (dup) or escalate (checksum) instead of restoring
        # garbage.  May raise MetadataCorruption.
        records, guard_cost = self.guard.verify_restore(frame, inst.region_id)
        self._charge_guard(guard_cost)
        for record in reversed(records):
            if record[0] == "reg":
                _, reg, value = record
                frame.regs[reg] = value
            else:
                _, name, index, value = record
                if self.memory.exists(name):
                    try:
                        self.memory.write(name, index, value)
                    except MemoryError_ as exc:
                        # A corrupted saved address can point out of
                        # bounds; surface it as a visible trap symptom
                        # rather than an interpreter crash.
                        raise Trap(str(exc), self.events) from None
                    event.stores.append((name, index))
        frame.region_ckpts[inst.region_id] = []
        self.guard.on_reset(frame, inst.region_id)
        self._advance(frame)


def _truthy(value: Word) -> bool:
    if isinstance(value, Pointer):
        return True
    return bool(value)


def _default_external(args: Sequence[Word]) -> Word:
    return 0


_DISPATCH = {
    "binop": ReferenceInterpreter._do_binop,
    "unop": ReferenceInterpreter._do_unop,
    "cmp": ReferenceInterpreter._do_cmp,
    "select": ReferenceInterpreter._do_select,
    "mov": ReferenceInterpreter._do_mov,
    "addrof": ReferenceInterpreter._do_addrof,
    "load": ReferenceInterpreter._do_load,
    "store": ReferenceInterpreter._do_store,
    "alloc": ReferenceInterpreter._do_alloc,
    "br": ReferenceInterpreter._do_br,
    "jmp": ReferenceInterpreter._do_jmp,
    "call": ReferenceInterpreter._do_call,
    "ret": ReferenceInterpreter._do_ret,
    "spawn": ReferenceInterpreter._do_spawn,
    "join": ReferenceInterpreter._do_join,
    "set_recovery_ptr": ReferenceInterpreter._do_set_recovery_ptr,
    "clear_recovery_ptr": ReferenceInterpreter._do_clear_recovery_ptr,
    "ckpt_reg": ReferenceInterpreter._do_ckpt_reg,
    "ckpt_mem": ReferenceInterpreter._do_ckpt_mem,
    "restore": ReferenceInterpreter._do_restore,
}


def __getattr__(name: str):
    # ``Interpreter`` stays importable from here for the whole repo, but
    # resolves to the session's default engine (PEP 562).  The lazy
    # import breaks the cycle interpreter -> engine -> predecode ->
    # interpreter.
    if name == "Interpreter":
        from repro.runtime.engine import engine_class

        return engine_class()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def bitflip(value: Word, bit: int) -> Word:
    """Flip one bit of a run-time value (the transient-fault model).

    Integers flip a bit of their 64-bit two's-complement pattern; floats
    flip a bit of their IEEE-754 representation; pointers flip a bit of
    their offset (modelling a corrupted index computation).
    """
    if isinstance(value, Pointer):
        return Pointer(value.obj, value.offset ^ (1 << (bit % 16)))
    if isinstance(value, float):
        packed = struct.pack("<d", value)
        as_int = int.from_bytes(packed, "little") ^ (1 << (bit % 64))
        result = struct.unpack("<d", as_int.to_bytes(8, "little"))[0]
        if math.isnan(result) or math.isinf(result):
            return 0.0 if value == 0 else -value
        return result
    return wrap_int(int(value) ^ (1 << (bit % 64)))
