"""Dynamic-trace capture and trace-level idempotence (paper Figure 1).

Figure 1 measures how often windows of the *dynamic* instruction stream
are inherently idempotent: a window is idempotent when no memory address
is read before being overwritten inside the window (no dynamic WAR).
This module records the memory-access event stream of an execution and
classifies fixed-size windows sampled from it.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.module import Module
from repro.runtime.interpreter import Interpreter, StepEvent

# One record per dynamic instruction: (loads, stores) with resolved
# (object, index) addresses.
TraceRecord = Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]


@dataclasses.dataclass
class DynamicTrace:
    """The memory-access shadow of one execution."""

    records: List[TraceRecord]

    def __len__(self) -> int:
        return len(self.records)


def capture_trace(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    max_steps: int = 5_000_000,
    externals=None,
) -> DynamicTrace:
    """Execute and record per-instruction load/store addresses."""
    records: List[TraceRecord] = []

    def hook(interp: Interpreter, event: StepEvent) -> None:
        records.append((tuple(event.loads), tuple(event.stores)))

    Interpreter(
        module, max_steps=max_steps, post_step=hook, externals=externals
    ).run(function, args)
    return DynamicTrace(records)


def window_war_addresses(
    records: Sequence[TraceRecord], start: int, length: int
) -> Set[Tuple[str, int]]:
    """Addresses read then later written within the window (dynamic WARs)."""
    read_first: Set[Tuple[str, int]] = set()
    written: Set[Tuple[str, int]] = set()
    wars: Set[Tuple[str, int]] = set()
    end = min(start + length, len(records))
    for i in range(start, end):
        loads, stores = records[i]
        for addr in loads:
            if addr not in written:
                read_first.add(addr)
        for addr in stores:
            written.add(addr)
            if addr in read_first:
                wars.add(addr)
    return wars


def window_is_idempotent(
    records: Sequence[TraceRecord], start: int, length: int
) -> bool:
    return not window_war_addresses(records, start, length)


@dataclasses.dataclass
class TraceIdempotenceStats:
    """Figure 1 data for one window size."""

    window: int
    samples: int
    fully_idempotent: float
    nearly_idempotent: float  # at most `near_threshold` WAR addresses


def trace_idempotence_profile(
    trace: DynamicTrace,
    window_sizes: Sequence[int] = (10, 25, 50, 100, 200, 500, 1000),
    samples_per_size: int = 200,
    near_threshold: int = 2,
    seed: int = 0,
) -> List[TraceIdempotenceStats]:
    """Sample windows of each size and classify their idempotence.

    ``fully_idempotent`` reproduces the paper's "Fully Idempotent"
    series; ``nearly_idempotent`` (windows with at most
    ``near_threshold`` offending addresses — the few-offending-
    instructions property the paper highlights) corresponds to the
    headroom Encore's "Idempotence Target" curve aims to expose.
    """
    rng = random.Random(seed)
    stats: List[TraceIdempotenceStats] = []
    n = len(trace.records)
    for window in window_sizes:
        if n == 0:
            stats.append(TraceIdempotenceStats(window, 0, 0.0, 0.0))
            continue
        full = 0
        near = 0
        samples = 0
        max_start = max(n - window, 0)
        for _ in range(samples_per_size):
            start = rng.randint(0, max_start) if max_start > 0 else 0
            wars = window_war_addresses(trace.records, start, window)
            samples += 1
            if not wars:
                full += 1
                near += 1
            elif len(wars) <= near_threshold:
                near += 1
        stats.append(
            TraceIdempotenceStats(
                window=window,
                samples=samples,
                fully_idempotent=full / samples,
                nearly_idempotent=near / samples,
            )
        )
    return stats
