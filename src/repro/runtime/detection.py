"""Fault-detection models.

Encore pairs with symptom-based detectors (ReStore, Shoestring) that
notice a fault some number of dynamic instructions after it corrupts
state.  The paper's analytical model assumes detection latency uniform
on ``[0, Dmax]``; the SFI campaigns and the detection ablation also
support fixed and geometric latencies.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional


@dataclasses.dataclass(frozen=True)
class DetectionModel:
    """A latency distribution over dynamic instructions.

    ``kind``:
      * ``uniform`` — latency ~ U[0, dmax] (the paper's assumption);
      * ``fixed``   — latency = dmax exactly;
      * ``geometric`` — latency ~ Geom(p) with mean dmax/2, truncated at
        ``dmax`` (a heavier-tailed symptom model).

    ``coverage`` is the probability that the detector notices the fault
    at all; undetected faults become silent data corruptions.
    """

    dmax: int = 100
    kind: str = "uniform"
    coverage: float = 1.0

    def __post_init__(self):
        if self.kind not in ("uniform", "fixed", "geometric"):
            raise ValueError(f"unknown detection model {self.kind!r}")
        if self.dmax < 0:
            raise ValueError("dmax must be non-negative")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")

    def sample_latency(self, rng: random.Random) -> Optional[int]:
        """Sample a detection latency, or None when the fault escapes."""
        if rng.random() >= self.coverage:
            return None
        if self.dmax == 0:
            return 0
        if self.kind == "uniform":
            return rng.randint(0, self.dmax)
        if self.kind == "fixed":
            return self.dmax
        # Geometric with mean dmax/2, truncated at dmax.
        mean = max(self.dmax / 2.0, 1.0)
        p = min(1.0 / mean, 1.0)
        latency = 0
        while rng.random() >= p and latency < self.dmax:
            latency += 1
        return latency

    def pdf(self, latency: float) -> float:
        """Density used by the numerical alpha integration."""
        if latency < 0 or latency > self.dmax:
            return 0.0
        if self.kind == "uniform":
            return 1.0 / self.dmax if self.dmax > 0 else 0.0
        if self.kind == "fixed":
            # Dirac at dmax: approximate with a narrow box for quadrature.
            width = max(self.dmax * 0.01, 1e-6)
            return 1.0 / width if latency >= self.dmax - width else 0.0
        mean = max(self.dmax / 2.0, 1.0)
        lam = 1.0 / mean
        norm = 1.0 - math.exp(-lam * self.dmax)
        return lam * math.exp(-lam * latency) / max(norm, 1e-12)


SHOESTRING_LIKE = DetectionModel(dmax=100, kind="uniform")
"""Latency consistent with Shoestring/ReStore (paper Figure 8, middle)."""

SPECULATIVE_HW = DetectionModel(dmax=1000, kind="uniform")
"""The long-latency regime (paper Figure 8, left column)."""

FUTURE_DETECTOR = DetectionModel(dmax=10, kind="uniform")
"""The constrained-latency regime (paper Figure 8, right column)."""
