"""Crash-tolerant campaign journals: append-only JSONL under ``results/``.

A campaign journal records one line per completed trial — ``(seed,
trial_index, outcome, ...)`` — plus a header line fingerprinting the
campaign configuration.  Because every trial is a pure function of
``(seed, trial_index)`` (see :func:`repro.runtime.sfi.derive_trial_seed`),
a campaign that crashed — worker death, power loss, ctrl-C — can be
resumed from its journal and produce results bit-identical to an
uninterrupted serial run: journaled trials are replayed verbatim, the
rest re-derive exactly the plans the lost run would have executed.

The format is deliberately dumb:

* line 1: ``{"kind": "campaign", "version": 1, ...metadata}``
* then:   ``{"kind": "trial", "index": i, "outcome": ..., ...}``

Appends are flushed per record; a line torn by a crash mid-write is
ignored on load (it will simply be re-run).  Records may appear in any
order (parallel chunks complete out of order) and may be duplicated
(a chunk retried after a pool crash); the last record for an index
wins, which is safe because records for the same index are identical
by determinism.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional, TextIO, Tuple

from repro.runtime.detection import DetectionModel
from repro.runtime.sfi import TrialResult

JOURNAL_VERSION = 1

#: Default directory for campaign journals.
DEFAULT_JOURNAL_DIR = "results"


class JournalError(ValueError):
    """The journal is unreadable or does not match the campaign."""


def module_fingerprint(module) -> str:
    """A stable digest of the module under test, for resume validation."""
    from repro.ir.printer import module_to_text

    return hashlib.sha256(module_to_text(module).encode()).hexdigest()[:16]


def header_fingerprint(metadata: Dict[str, Any]) -> str:
    """A stable digest of a whole campaign header (canonical JSON), so a
    resume refusal can name both sides in one line instead of forcing a
    manual diff of two journal files."""
    canonical = json.dumps(metadata, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def campaign_metadata(
    module,
    seed: int,
    detector: DetectionModel,
    function: str = "main",
    args=(),
    faults_per_trial: int = 1,
    recovery_faults_per_trial: int = 0,
    metadata_faults_per_trial: int = 0,
    metadata_guard: str = "off",
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    cf_faults_per_trial: int = 0,
    cfe_detector: str = "signature",
    threads: int = 1,
    quantum: Optional[int] = None,
    incremental: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The identity of a campaign: everything that determines its plans.

    The metadata-fault keys are only emitted when the feature is in use:
    a campaign with the default ``metadata_faults_per_trial=0`` /
    ``metadata_guard="off"`` produces a header byte-identical to the
    pre-metadata format, so old journals resume unchanged and new
    plain-campaign journals stay readable by old code.  The detector
    backend follows the same rule: only a replay campaign emits
    ``detector_backend``/``replay_chunk_size``, and because
    :func:`validate_resume` compares the *union* of header keys, a
    journal written under one backend refuses to resume under the
    other.  The control-flow surface (``cf_faults_per_trial``,
    ``cfe_detector``) and the scheduler settings (``threads``,
    ``quantum``) follow the same conditional-emission rule: a
    single-threaded, register-fault-only campaign's header is
    byte-identical to the pre-thread format, and any cross-config
    resume (different thread count, quantum, CFE count, or detector)
    is refused loudly.
    """
    meta: Dict[str, Any] = {
        "seed": seed,
        "function": function,
        "args": list(args),
        "faults_per_trial": faults_per_trial,
        "recovery_faults_per_trial": recovery_faults_per_trial,
        "detector": {
            "dmax": detector.dmax,
            "kind": detector.kind,
            "coverage": detector.coverage,
        },
        "module": module_fingerprint(module),
    }
    if metadata_faults_per_trial:
        meta["metadata_faults_per_trial"] = metadata_faults_per_trial
    if metadata_guard != "off":
        meta["metadata_guard"] = metadata_guard
    if detector_backend != "model":
        from repro.runtime.replay import REPLAY_CHUNK_DEFAULT

        meta["detector_backend"] = detector_backend
        meta["replay_chunk_size"] = int(
            replay_chunk_size or REPLAY_CHUNK_DEFAULT
        )
    if cf_faults_per_trial:
        meta["cf_faults_per_trial"] = cf_faults_per_trial
        # The detector changes outcomes, not plans, but resumed trials
        # are replayed verbatim — so it is part of the campaign identity
        # whenever the surface is open.
        meta["cfe_detector"] = cfe_detector
    if threads != 1:
        meta["threads"] = threads
    if quantum is not None:
        meta["quantum"] = int(quantum)
    if incremental is not None:
        # Same conditional-emission rule: the key exists only for
        # incremental campaigns, and validate_resume's union comparison
        # then refuses to resume one as (or from) a plain campaign.
        meta["incremental"] = incremental
    return meta


class CampaignJournal:
    """Append-side handle: write the header once, then stream records.

    ``fsync=True`` makes every append durable against power loss at a
    measurable throughput cost (see ``benchmarks/bench_supervisor.py``);
    the default flushes to the OS, which already survives process
    crashes — the campaign's own failure mode.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._handle: Optional[TextIO] = None

    def _open(self) -> TextIO:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _write(self, record: Dict[str, Any]) -> None:
        handle = self._open()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def write_header(self, metadata: Dict[str, Any]) -> None:
        self._write(
            {"kind": "campaign", "version": JOURNAL_VERSION, **metadata}
        )

    def record(self, index: int, trial: TrialResult) -> None:
        fields = dataclasses.asdict(trial)
        if fields.get("section") is None:
            # Non-incremental campaigns carry no attribution; dropping
            # the key keeps their records byte-identical to the
            # pre-incremental format.
            fields.pop("section", None)
        self._write({"kind": "trial", "index": index, **fields})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InOrderJournal:
    """A hold-back wrapper around :class:`CampaignJournal`.

    Parallel and service campaigns complete trials out of order and may
    deliver duplicates (a batch retried after a worker crash); this
    wrapper buffers results and appends them strictly in trial-index
    order, first delivery wins — so the journal a sharded campaign
    writes is *byte-identical* to the one a serial ``inject`` run
    writes (the invariant the campaign server's tests enforce).

    ``flush_out_of_order()`` abandons the in-order guarantee and dumps
    whatever is buffered beyond the contiguous prefix: the shutdown
    path uses it so completed work survives a drain — the journal
    format tolerates out-of-order records, only byte-identity is lost.
    """

    def __init__(self, journal: CampaignJournal, start_index: int = 0) -> None:
        self.journal = journal
        self._held: Dict[int, TrialResult] = {}
        self._cursor = start_index
        self._written: set = set()

    @property
    def cursor(self) -> int:
        """The next trial index the in-order stream is waiting for."""
        return self._cursor

    @property
    def held(self) -> int:
        """Out-of-order results currently buffered."""
        return len(self._held)

    def record(self, index: int, trial: TrialResult) -> None:
        if index in self._written or index in self._held or index < self._cursor:
            return  # duplicate delivery (retried batch): first wins
        self._held[index] = trial
        while self._cursor in self._held:
            self.journal.record(self._cursor, self._held.pop(self._cursor))
            self._written.add(self._cursor)
            self._cursor += 1

    def flush_out_of_order(self) -> int:
        """Append every held record regardless of order (drain path)."""
        flushed = 0
        for index in sorted(self._held):
            self.journal.record(index, self._held.pop(index))
            self._written.add(index)
            flushed += 1
        return flushed

    def close(self) -> None:
        self.journal.close()


def load_journal(path: str) -> Tuple[Dict[str, Any], Dict[int, TrialResult]]:
    """Read a journal back: ``(metadata, {index: TrialResult})``.

    Tolerates a torn final line (crash mid-append) and duplicate
    records (chunks retried after a pool crash).  Raises
    :class:`JournalError` when the file has no valid header.
    """
    metadata: Optional[Dict[str, Any]] = None
    completed: Dict[int, TrialResult] = {}
    torn_before_header = 0
    fields = {f.name for f in dataclasses.fields(TrialResult)}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn *tail* (crash mid-append) is re-run harmlessly;
                # a torn line before any header means the header itself
                # was torn mid-write — count it so the refusal below can
                # say so instead of the generic "no header".
                if metadata is None:
                    torn_before_header += 1
                continue
            kind = record.get("kind")
            if kind == "campaign":
                if record.get("version") != JOURNAL_VERSION:
                    raise JournalError(
                        f"journal version {record.get('version')} != "
                        f"{JOURNAL_VERSION}"
                    )
                metadata = {
                    k: v for k, v in record.items()
                    if k not in ("kind", "version")
                }
            elif kind == "trial" and metadata is not None:
                index = record.get("index")
                payload = {k: v for k, v in record.items()
                           if k in fields}
                if isinstance(index, int) and "outcome" in payload:
                    completed[index] = TrialResult(**payload)
    if metadata is None:
        if torn_before_header:
            raise JournalError(
                f"{path} has no valid campaign header: its header line "
                "is torn or corrupt (crash mid-write?); the journal "
                "cannot be trusted — delete it and restart the campaign"
            )
        raise JournalError(f"{path} has no campaign header")
    return metadata, completed


def validate_resume(
    journal_meta: Dict[str, Any], current_meta: Dict[str, Any]
) -> None:
    """Refuse to resume a journal written by a different campaign.

    Everything in the header must match — the journaled results are
    only valid verbatim if the plans they came from are the plans this
    campaign would derive.  (Trial *count* is deliberately absent from
    the metadata: per-trial seeding is prefix-stable, so a journal may
    be resumed into a longer or shorter campaign.)  The comparison is
    symmetric over the union of keys: a journal carrying a key the
    current campaign lacks (e.g. a metadata-fault campaign resumed as a
    plain one) mismatches just as loudly as the reverse.
    """
    mismatched = [
        key for key in sorted(set(journal_meta) | set(current_meta))
        if journal_meta.get(key) != current_meta.get(key)
    ]
    if mismatched:
        detail = ", ".join(
            f"{key}: journal={journal_meta.get(key)!r} != "
            f"campaign={current_meta.get(key)!r}"
            for key in mismatched
        )
        raise JournalError(
            "journal does not match this campaign: header fingerprints "
            f"journal={header_fingerprint(journal_meta)} != "
            f"campaign={header_fingerprint(current_meta)}; "
            f"differing keys ({detail})"
        )


def default_journal_path(module_name: str, seed: int) -> str:
    """The conventional journal location: ``results/sfi_<module>_s<seed>.jsonl``."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in module_name)
    return os.path.join(DEFAULT_JOURNAL_DIR, f"sfi_{safe}_s{seed}.jsonl")
