"""Process-parallel execution of SFI campaigns.

SFI campaigns are embarrassingly parallel Monte-Carlo experiments:
every trial is an independent re-execution of the same module with a
pre-derived fault plan.  Because :func:`repro.runtime.sfi.plan_trial`
keys each trial's randomness off ``(seed, trial_index)`` rather than a
shared sequential RNG, trials can be partitioned across worker
processes in any chunking whatsoever and still reproduce the serial
campaign bit for bit — the merge below only has to reorder results by
trial index.

Each worker is initialised once per process: it unpickles the module
payload, replays the golden run locally (cheaper and simpler than
shipping interpreter state), and then serves trial chunks until the
pool drains.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.sfi import FaultPlan, ProgressHook, TrialResult


class ParallelUnavailable(RuntimeError):
    """The campaign cannot cross a process boundary (e.g. closure
    externals that don't pickle); callers fall back to the serial path."""


#: Per-process campaign state installed by :func:`_init_worker`.
_WORKER: dict = {}


def _init_worker(payload: bytes) -> None:
    from repro.runtime.sfi import golden_run

    state = pickle.loads(payload)
    state["golden"] = golden_run(
        state["module"],
        state["function"],
        state["args"],
        state["output_objects"],
        externals=state["externals"],
    )
    _WORKER.clear()
    _WORKER.update(state)


def _run_chunk(plans: Sequence[FaultPlan]) -> Tuple[int, List[Tuple[int, TrialResult]]]:
    from repro.runtime.sfi import run_planned_trial

    state = _WORKER
    results = [
        (
            plan.trial_index,
            run_planned_trial(
                state["module"],
                state["golden"],
                plan,
                function=state["function"],
                args=state["args"],
                output_objects=state["output_objects"],
                externals=state["externals"],
            ),
        )
        for plan in plans
    ]
    return os.getpid(), results


def default_chunk_size(trials: int, jobs: int) -> int:
    """Roughly four chunks per worker: large enough to amortise task
    dispatch, small enough to keep the pool load-balanced."""
    return max(1, math.ceil(trials / (jobs * 4)))


def _chunked(plans: Sequence[FaultPlan], size: int) -> List[List[FaultPlan]]:
    return [list(plans[i:i + size]) for i in range(0, len(plans), size)]


def _pool_context():
    # fork shares the parent's imports and is dramatically cheaper to
    # start; fall back to the platform default (spawn) elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_parallel_campaign(
    module: Module,
    plans: Sequence[FaultPlan],
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    externals=None,
    jobs: int = 2,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> Tuple[List[TrialResult], Dict[str, int]]:
    """Fan ``plans`` out over ``jobs`` worker processes.

    Returns the trial results in trial-index order plus a per-worker
    trial tally (keyed ``worker-0`` … ``worker-n``, ordered by pid).
    Raises :class:`ParallelUnavailable` when the campaign payload
    cannot be pickled across the process boundary.
    """
    try:
        payload = pickle.dumps(
            {
                "module": module,
                "function": function,
                "args": tuple(args),
                "output_objects": tuple(output_objects),
                "externals": externals,
            }
        )
    except Exception as exc:
        raise ParallelUnavailable(str(exc)) from exc

    size = chunk_size if chunk_size and chunk_size > 0 else default_chunk_size(
        len(plans), jobs
    )
    chunks = _chunked(plans, size)
    workers = max(1, min(jobs, len(chunks)))
    total = len(plans)
    by_index: Dict[int, TrialResult] = {}
    pid_counts: Dict[int, int] = {}
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        pending = {pool.submit(_run_chunk, chunk) for chunk in chunks}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                pid, chunk_results = future.result()
                for index, trial in chunk_results:
                    by_index[index] = trial
                pid_counts[pid] = pid_counts.get(pid, 0) + len(chunk_results)
                if progress is not None:
                    progress(len(by_index), total)
    if len(by_index) != total:
        missing = sorted(set(range(total)) - set(by_index))
        raise RuntimeError(f"parallel campaign lost trials {missing[:8]}")
    worker_trials = {
        f"worker-{slot}": count
        for slot, (_pid, count) in enumerate(sorted(pid_counts.items()))
    }
    return [by_index[i] for i in range(total)], worker_trials
