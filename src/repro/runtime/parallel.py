"""Process-parallel execution of SFI campaigns, hardened against the
failures a long campaign actually meets.

SFI campaigns are embarrassingly parallel Monte-Carlo experiments:
every trial is an independent re-execution of the same module with a
pre-derived fault plan.  Because :func:`repro.runtime.sfi.plan_trial`
keys each trial's randomness off ``(seed, trial_index)`` rather than a
shared sequential RNG, trials can be partitioned across worker
processes in any chunking whatsoever and still reproduce the serial
campaign bit for bit — the merge below only has to reorder results by
trial index.

Each worker is initialised once per process: it unpickles the module
payload, replays the golden run locally (cheaper and simpler than
shipping interpreter state), and then serves trial chunks until the
pool drains.

Resilience (the campaign must outlive its own infrastructure):

* **per-trial wall-clock timeouts** — enforced *inside* the worker via
  ``SIGALRM`` (see :func:`repro.runtime.sfi.call_with_timeout`), so a
  stuck trial yields an ``infra_error`` verdict without poisoning its
  chunk or its worker;
* **worker-crash containment** — a worker dying (OOM kill, segfault,
  deliberate ``SIGKILL``) breaks the whole ``ProcessPoolExecutor``;
  instead of propagating, the engine re-plans the unfinished trials
  and retries them on a fresh pool, up to ``max_pool_retries`` times,
  after which the survivors are marked ``infra_error`` — determinism
  is unaffected because retried chunks re-derive exactly the same
  plans;
* **result streaming** — every merged ``(index, result)`` pair is
  forwarded to ``on_result`` as it arrives, which is how the campaign
  journal (:mod:`repro.runtime.journal`) sees trials the moment they
  complete rather than at campaign end.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.sfi import (
    CampaignInterrupted,
    FaultPlan,
    ProgressHook,
    TrialResult,
    infra_error_trial,
)
from repro.runtime.supervisor import SupervisorPolicy


class ParallelUnavailable(RuntimeError):
    """The campaign cannot cross a process boundary (e.g. closure
    externals that don't pickle); callers fall back to the serial path."""


#: Per-process campaign state installed by :func:`_init_worker`.
_WORKER: dict = {}


def _init_worker(payload: bytes) -> None:
    from repro.runtime.memory import MachineMemory
    from repro.runtime.sfi import golden_run

    state = pickle.loads(payload)
    # Materialize the module's globals exactly once per worker; every
    # trial in every chunk clones this image instead of rebuilding it.
    state["memory_image"] = MachineMemory.pristine(state["module"])
    state["golden"] = golden_run(
        state["module"],
        state["function"],
        state["args"],
        state["output_objects"],
        externals=state["externals"],
        engine=state.get("engine"),
        memory_image=state["memory_image"],
        threads=state.get("threads", 1),
        quantum=state.get("quantum"),
    )
    _WORKER.clear()
    _WORKER.update(state)


def run_worker_plan(plan: FaultPlan) -> TrialResult:
    """Execute one pre-derived plan from the installed worker state.

    The single unit of worker-side work, shared by the chunk runner
    below and the campaign service's batch workers
    (:mod:`repro.service.dispatch`) — both install state with
    :func:`_init_worker` and then replay plans through here, which is
    why a served campaign is bit-identical to a pooled one.
    """
    from repro.runtime.sfi import run_planned_trial

    state = _WORKER
    return run_planned_trial(
        state["module"],
        state["golden"],
        plan,
        function=state["function"],
        args=state["args"],
        output_objects=state["output_objects"],
        externals=state["externals"],
        policy=state["policy"],
        trial_timeout=state["trial_timeout"],
        metadata_guard=state.get("metadata_guard", "off"),
        engine=state.get("engine"),
        memory_image=state["memory_image"],
        detector_backend=state.get("detector_backend", "model"),
        replay_chunk_size=state.get("replay_chunk_size"),
        cfe_detector=state.get("cfe_detector", "signature"),
        threads=state.get("threads", 1),
        quantum=state.get("quantum"),
    )


def _run_chunk(plans: Sequence[FaultPlan]) -> Tuple[int, List[Tuple[int, TrialResult]]]:
    return os.getpid(), [
        (plan.trial_index, run_worker_plan(plan)) for plan in plans
    ]


def default_chunk_size(trials: int, jobs: int) -> int:
    """Roughly four chunks per worker: large enough to amortise task
    dispatch, small enough to keep the pool load-balanced."""
    return max(1, math.ceil(trials / (jobs * 4)))


def _chunked(plans: Sequence[FaultPlan], size: int) -> List[List[FaultPlan]]:
    return [list(plans[i:i + size]) for i in range(0, len(plans), size)]


def _pool_context():
    # fork shares the parent's imports and is dramatically cheaper to
    # start; fall back to the platform default (spawn) elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def worker_payload(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    externals=None,
    policy: Optional[SupervisorPolicy] = None,
    trial_timeout: Optional[float] = None,
    metadata_guard: str = "off",
    engine: Optional[str] = None,
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    cfe_detector: str = "signature",
    threads: int = 1,
    quantum: Optional[int] = None,
) -> bytes:
    """Pickle the per-worker campaign state for :func:`_init_worker`.

    Shared between the pool engine below and the campaign service, so
    a worker initialised by either executes trials identically.
    Raises :class:`ParallelUnavailable` when the campaign cannot cross
    a process boundary.
    """
    try:
        return pickle.dumps(
            {
                "module": module,
                "function": function,
                "args": tuple(args),
                "output_objects": tuple(output_objects),
                "externals": externals,
                "policy": policy,
                "trial_timeout": trial_timeout,
                "metadata_guard": metadata_guard,
                "engine": engine,
                "detector_backend": detector_backend,
                "replay_chunk_size": replay_chunk_size,
                "cfe_detector": cfe_detector,
                "threads": threads,
                "quantum": quantum,
            }
        )
    except Exception as exc:
        raise ParallelUnavailable(str(exc)) from exc


def run_parallel_campaign(
    module: Module,
    plans: Sequence[FaultPlan],
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    externals=None,
    jobs: int = 2,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    policy: Optional[SupervisorPolicy] = None,
    trial_timeout: Optional[float] = None,
    metadata_guard: str = "off",
    max_pool_retries: int = 2,
    on_result: Optional[Callable[[int, TrialResult], None]] = None,
    done_offset: int = 0,
    total: Optional[int] = None,
    engine: Optional[str] = None,
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    cfe_detector: str = "signature",
    threads: int = 1,
    quantum: Optional[int] = None,
) -> Tuple[List[TrialResult], Dict[str, int], int]:
    """Fan ``plans`` out over ``jobs`` worker processes.

    Returns ``(results, worker_trials, pool_restarts)``: the trial
    results in ``plans`` order, a per-worker trial tally (keyed
    ``worker-0`` … ``worker-n``, ordered by pid), and the number of
    worker pools rebuilt after a crash.  ``done_offset``/``total``
    calibrate the ``progress`` callback when this call covers only the
    un-journaled tail of a resumed campaign.  Raises
    :class:`ParallelUnavailable` when the campaign payload cannot be
    pickled across the process boundary.
    """
    payload = worker_payload(
        module,
        function=function,
        args=args,
        output_objects=output_objects,
        externals=externals,
        policy=policy,
        trial_timeout=trial_timeout,
        metadata_guard=metadata_guard,
        engine=engine,
        detector_backend=detector_backend,
        replay_chunk_size=replay_chunk_size,
        cfe_detector=cfe_detector,
        threads=threads,
        quantum=quantum,
    )

    size = chunk_size if chunk_size and chunk_size > 0 else default_chunk_size(
        len(plans), jobs
    )
    report_total = total if total is not None else len(plans)
    by_index: Dict[int, TrialResult] = {}
    pid_counts: Dict[int, int] = {}
    pool_restarts = 0

    def merge(pid: int, chunk_results: List[Tuple[int, TrialResult]]) -> None:
        fresh = 0
        for index, trial in chunk_results:
            if index not in by_index:
                fresh += 1
                if on_result is not None:
                    on_result(index, trial)
            by_index[index] = trial
        pid_counts[pid] = pid_counts.get(pid, 0) + len(chunk_results)
        if progress is not None and fresh:
            progress(done_offset + len(by_index), report_total)

    remaining = list(plans)
    for attempt in range(max_pool_retries + 1):
        chunks = _chunked(remaining, size)
        if not chunks:
            break
        workers = max(1, min(jobs, len(chunks)))
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                pending = {pool.submit(_run_chunk, chunk) for chunk in chunks}
                try:
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            pid, chunk_results = future.result()
                            merge(pid, chunk_results)
                except KeyboardInterrupt:
                    # Graceful SIGINT: drop the queue, put the workers
                    # down hard (their in-flight chunks are re-derivable
                    # on resume), and surface everything already merged
                    # — the journal has it on disk via ``on_result``.
                    for future in pending:
                        future.cancel()
                    for proc in getattr(pool, "_processes", {}).values():
                        try:
                            proc.terminate()
                        except (OSError, AttributeError):
                            pass
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise CampaignInterrupted(
                        dict(by_index), report_total
                    ) from None
        except BrokenProcessPool:
            # A worker died mid-campaign (OOM kill, segfault, ...).
            # Everything already merged stays; the unfinished trials are
            # re-planned onto a fresh pool.  Chunks are pure functions
            # of their plans, so a retry cannot diverge from the serial
            # result — it can only finish it.
            pool_restarts += 1
            remaining = [p for p in remaining if p.trial_index not in by_index]
            continue
        remaining = [p for p in remaining if p.trial_index not in by_index]
        if not remaining:
            break
    # Pool retries exhausted (or trials silently lost): the survivors
    # get an explicit infra_error verdict instead of poisoning the
    # campaign with an exception after hours of completed work.
    for plan in remaining:
        trial = infra_error_trial()
        by_index[plan.trial_index] = trial
        if on_result is not None:
            on_result(plan.trial_index, trial)
    if progress is not None and remaining:
        progress(done_offset + len(by_index), report_total)
    worker_trials = {
        f"worker-{slot}": count
        for slot, (_pid, count) in enumerate(sorted(pid_counts.items()))
    }
    return (
        [by_index[plan.trial_index] for plan in plans],
        worker_trials,
        pool_restarts,
    )
