"""Run-time substrate: interpreter, memory, fault injection, recovery."""

from repro.runtime.baselines import (
    BaselineCampaign,
    BaselineStats,
    FullCheckpointRecovery,
    LogBasedRecovery,
    run_baseline_campaign,
)
from repro.runtime.detection import (
    DetectionModel,
    FUTURE_DETECTOR,
    SHOESTRING_LIKE,
    SPECULATIVE_HW,
)
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    Interpreter,
    StepEvent,
    Trap,
    bitflip,
)
from repro.runtime.masking import ARM926_STRUCTURES, MaskingModel
from repro.runtime.memory import MachineMemory, MemoryError_, Pointer
from repro.runtime.parallel import (
    ParallelUnavailable,
    default_chunk_size,
    run_parallel_campaign,
)
from repro.runtime.sfi import (
    CampaignResult,
    FaultPlan,
    TrialResult,
    derive_trial_seed,
    golden_run,
    plan_campaign,
    plan_trial,
    run_campaign,
    run_planned_trial,
    run_trial,
)
from repro.runtime.symptoms import (
    InvariantProfile,
    SymptomCampaignResult,
    SymptomTrial,
    run_symptom_campaign,
    run_symptom_trial,
    train_invariants,
)
from repro.runtime.traces import (
    DynamicTrace,
    TraceIdempotenceStats,
    capture_trace,
    trace_idempotence_profile,
    window_is_idempotent,
    window_war_addresses,
)

__all__ = [
    "ARM926_STRUCTURES",
    "BaselineCampaign",
    "BaselineStats",
    "CampaignResult",
    "DetectionModel",
    "DynamicTrace",
    "ExecResult",
    "ExecutionLimit",
    "FUTURE_DETECTOR",
    "FaultPlan",
    "FullCheckpointRecovery",
    "Interpreter",
    "InvariantProfile",
    "LogBasedRecovery",
    "MachineMemory",
    "MaskingModel",
    "MemoryError_",
    "ParallelUnavailable",
    "Pointer",
    "SHOESTRING_LIKE",
    "SPECULATIVE_HW",
    "StepEvent",
    "SymptomCampaignResult",
    "SymptomTrial",
    "TraceIdempotenceStats",
    "Trap",
    "TrialResult",
    "bitflip",
    "capture_trace",
    "default_chunk_size",
    "derive_trial_seed",
    "golden_run",
    "plan_campaign",
    "plan_trial",
    "run_baseline_campaign",
    "run_campaign",
    "run_parallel_campaign",
    "run_planned_trial",
    "run_symptom_campaign",
    "run_symptom_trial",
    "run_trial",
    "trace_idempotence_profile",
    "train_invariants",
    "window_is_idempotent",
    "window_war_addresses",
]
