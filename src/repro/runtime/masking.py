"""Hardware fault-masking model (substitute for the paper's Verilog SFI).

The paper derives per-benchmark masking rates from Monte-Carlo fault
injection into a Verilog ARM926 model, reporting ~91% average masking
(Figure 8 shows per-benchmark masked fractions between roughly 89% and
93%).  We cannot run RTL, so this module reproduces the *consumed*
quantity — a per-benchmark masking rate — from a structural model:

* a transient strikes one of several microarchitectural structures with
  probability proportional to its area share;
* each structure has an intrinsic logical-masking probability (derated
  latches, ECC-like don't-care bits, unused issue slots);
* an architectural-derating term varies with workload character (the
  fraction of dynamic values that are dead or control-independent),
  seeded deterministically per benchmark so results are reproducible.

The Monte-Carlo estimate converges to the closed-form rate; both are
exposed so tests can verify the sampling machinery.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

#: (structure, area share, masking probability) — calibrated so that the
#: weighted average lands at the paper's ~91% with workload jitter.
ARM926_STRUCTURES: Tuple[Tuple[str, float, float], ...] = (
    ("register_file", 0.22, 0.88),
    ("alu_datapath", 0.18, 0.90),
    ("pipeline_latches", 0.17, 0.93),
    ("control_logic", 0.13, 0.86),
    ("load_store_unit", 0.12, 0.92),
    ("fetch_decode", 0.10, 0.94),
    ("misc_glue", 0.08, 0.97),
)


@dataclasses.dataclass
class MaskingModel:
    """Per-benchmark hardware masking rates."""

    structures: Tuple[Tuple[str, float, float], ...] = ARM926_STRUCTURES
    workload_jitter: float = 0.015

    def base_rate(self) -> float:
        """Area-weighted average masking probability of the structure mix."""
        total_area = sum(area for _, area, _ in self.structures)
        return sum(area * mask for _, area, mask in self.structures) / total_area

    def rate_for(self, benchmark: str) -> float:
        """Deterministic per-benchmark masking rate (base + jitter).

        The jitter stands in for workload-dependent architectural
        derating; it is seeded by the benchmark name so every run of the
        evaluation sees the same rates.
        """
        rng = random.Random(f"masking:{benchmark}")
        jitter = rng.uniform(-self.workload_jitter, self.workload_jitter)
        rate = self.base_rate() + jitter
        return min(max(rate, 0.0), 1.0)

    def monte_carlo_rate(
        self, benchmark: str, trials: int = 10_000, seed: int = 0
    ) -> float:
        """Estimate the masking rate by sampling fault strikes.

        Each trial picks a structure by area, then decides masking by
        the structure's probability adjusted by the benchmark jitter.
        """
        target = self.rate_for(benchmark)
        adjustment = target - self.base_rate()
        rng = random.Random(f"mc:{benchmark}:{seed}")
        areas = [area for _, area, _ in self.structures]
        total_area = sum(areas)
        masked = 0
        for _ in range(trials):
            pick = rng.uniform(0.0, total_area)
            acc = 0.0
            for _, area, mask in self.structures:
                acc += area
                if pick <= acc:
                    if rng.random() < min(max(mask + adjustment, 0.0), 1.0):
                        masked += 1
                    break
        return masked / trials

    def rates(self, benchmarks: List[str]) -> Dict[str, float]:
        return {name: self.rate_for(name) for name in benchmarks}
