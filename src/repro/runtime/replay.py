"""Replay-based fault detection: chunked record + deterministic replay.

All other detectors in this reproduction are *models*: the analytical
:class:`~repro.runtime.detection.DetectionModel` samples a latency from
an assumed distribution, and the trained invariant detector of
:mod:`repro.runtime.symptoms` watches learned value ranges.  This
module builds the third family — RepTFD-style replay detection — in
which detection latency is a **measured** quantity:

* a :class:`ChunkRecorder` hook splits execution into chunks (``N``
  dynamic instructions or a region boundary, whichever comes first) and
  folds every retired write and branch outcome into a running digest —
  never full state, so the record cost is bounded and charged into
  ``instrumentation_cost`` like any other Encore instrumentation;
* a :class:`ReplayDetector` re-executes each chunk deterministically
  from its entry snapshot on a fresh reference interpreter and compares
  digests.  A mismatch means a transient corrupted the original run of
  the chunk: *divergence is detection*, and the observed latency is the
  distance (in dynamic instructions) from the fault event to the end of
  the divergent chunk — by construction at most one chunk.

Design notes, in decreasing order of importance:

* **Replay is snapshot-based, not golden-based.**  Each chunk replays
  from its own entry snapshot, so the scheme composes with rollback:
  after a recovery redirect the next chunk simply snapshots the
  post-rollback state and stays self-consistent.  No golden chunk log
  or resynchronisation protocol is needed.
* **Replay always runs on the reference engine.**  The main run
  executes hooks on the reference ``_step`` path anyway (hooks pin the
  fast engine to the slow tier), so digests are engine-independent and
  replay campaigns are bit-identical across ``fast``/``reference``.
* **Digests are process-stable.**  FNV-1a mixing over explicit
  encodings (two's-complement ints, IEEE-754 float bits, CRC-32 of
  object/block names) — never Python ``hash()`` — so chunk logs agree
  across worker processes and ``PYTHONHASHSEED`` values.
* **Cost accounting models hardware-assisted signatures.**  RepTFD
  accumulates chunk signatures in dedicated registers; we charge one
  instrumentation instruction per :data:`RECORD_STRIDE` recorded steps
  plus :data:`SNAPSHOT_COST` per chunk entry.  The replay check itself
  (re-executed instructions) is reported separately as
  ``ReplayDetector.replayed_events`` — it runs off the critical path
  (idle cores in RepTFD), so it is overhead of the *detector*, not of
  the protected program.
* **Watchdog interaction.**  A supervisor watchdog rollback lands
  mid-chunk and is not replayed, so its chunk flags divergence —
  conservative (an extra detection, never a miss) and deterministic.

``record_chunk_log`` is the standalone entry point used by the fuzz
replay-determinism oracle and ``benchmarks/bench_replay.py``: record a
fault-free run (optionally replay-checking every chunk); any divergence
without an injected fault is a bug in the recorder or the interpreter.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.engine import make_interpreter
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    ReferenceInterpreter,
    StepEvent,
    Trap,
    _Frame,
)
from repro.runtime.memory import MachineMemory, MemoryError_, Pointer, Word

#: Default chunk length in dynamic instructions.
REPLAY_CHUNK_DEFAULT = 64

#: Opcodes that close the current chunk (region boundaries): aligning
#: chunk ends to recovery-pointer transitions means a divergence is
#: checked while the faulting region's pointer state is still the one
#: the supervisor should judge it under.
REGION_BOUNDARY_OPCODES = frozenset({"set_recovery_ptr", "clear_recovery_ptr"})

#: Opcodes that also close the current chunk (frame transitions).
#: Encore regions are intra-procedural and the recovery pointer lives
#: on the frame, so a chunk that spanned a ``ret`` would have its
#: divergence judged in a frame that never owned the faulting region's
#: pointer — every region-tail detection would escalate as an escape.
#: Sealing before ``call``/``ret`` keeps each chunk inside one frame
#: activation, the same scope as the region it protects.
FRAME_BOUNDARY_OPCODES = frozenset({"call", "ret"})

#: One instrumentation instruction is charged per this many recorded
#: steps (hardware signature accumulation, as in RepTFD).
RECORD_STRIDE = 8

#: Instrumentation instructions charged per chunk-entry snapshot.
SNAPSHOT_COST = 2

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

#: CRC-32 memo for object/block names (bounded by the program text).
_NAME_CRC: Dict[str, int] = {}


def _name_crc(name: str) -> int:
    crc = _NAME_CRC.get(name)
    if crc is None:
        crc = _NAME_CRC[name] = zlib.crc32(name.encode())
    return crc


def _mix(h: int, value: int) -> int:
    return ((h ^ (value & _MASK64)) * _FNV_PRIME) & _MASK64


def _mix_word(h: int, value: Word) -> int:
    # Tag each type so 1, 1.0 and &obj+1 never collide.
    if isinstance(value, Pointer):
        h = _mix(h, 3)
        h = _mix(h, _name_crc(value.obj))
        return _mix(h, value.offset)
    if isinstance(value, float):
        h = _mix(h, 2)
        return _mix(h, int.from_bytes(struct.pack("<d", value), "little"))
    return _mix(_mix(h, 1), int(value))


def digest_step(h: int, interp, event: StepEvent) -> int:
    """Fold one retired instruction into the running chunk digest.

    Covers exactly the architectural effects a transient can corrupt:
    the destination register's new value (``call``/``ret`` excluded —
    their effects surface through the callee/caller steps), every store
    (object, index, written value), and the post-step control state
    (frame, block, ip), which encodes branch outcomes.
    """
    inst = event.inst
    op = inst.opcode
    if op != "call" and op != "ret":
        defs = inst.defs()
        if defs and interp.frames:
            h = _mix_word(h, interp.frames[-1].regs.get(defs[0], 0))
    for name, index in event.stores:
        h = _mix(h, _name_crc(name))
        h = _mix(h, index)
        h = _mix_word(h, interp.memory.read(name, index))
    if interp.frames:
        frame = interp.frames[-1]
        h = _mix(h, frame.id)
        h = _mix(h, _name_crc(frame.block))
        h = _mix(h, frame.ip)
    else:
        h = _mix(h, 0xF1)
    return h


@dataclasses.dataclass(frozen=True)
class _FrameImage:
    """Restorable copy of one activation frame at a chunk entry."""

    id: int
    func: str
    regs: Dict
    block: str
    ip: int
    stack_instances: Dict[str, str]
    ret_dest: Optional[object]
    region_ckpts: Dict[int, Tuple[tuple, ...]]
    recovery_ptr: Optional[Tuple[int, str]]


@dataclasses.dataclass(frozen=True)
class ChunkSnapshot:
    """Everything needed to deterministically re-execute from a chunk
    entry: the frame stack, a memory clone, and the two name counters
    (frame/heap) that make fresh instance names reproducible."""

    events: int
    frame_counter: int
    frames: Tuple[_FrameImage, ...]
    memory: MachineMemory


def take_snapshot(interp) -> ChunkSnapshot:
    """Capture the interpreter state at the entry of the next step."""
    frames = tuple(
        _FrameImage(
            id=frame.id,
            func=frame.func.name,
            regs=dict(frame.regs),
            block=frame.block,
            ip=frame.ip,
            stack_instances=dict(frame.stack_instances),
            ret_dest=frame.ret_dest,
            region_ckpts={
                rid: tuple(records)
                for rid, records in frame.region_ckpts.items()
            },
            recovery_ptr=frame.recovery_ptr,
        )
        for frame in interp.frames
    )
    return ChunkSnapshot(
        events=interp.events,
        frame_counter=interp._frame_counter,
        frames=frames,
        # clone() carries the heap counter, so allocation names replay.
        memory=interp.memory.clone(),
    )


def _restore_frames(interp, snapshot: ChunkSnapshot) -> None:
    interp._started = True
    interp.events = snapshot.events
    interp._frame_counter = snapshot.frame_counter
    interp.frames = []
    for image in snapshot.frames:
        frame = _Frame(image.id, interp.module.function(image.func))
        frame.regs = dict(image.regs)
        frame.block = image.block
        frame.ip = image.ip
        frame.stack_instances = dict(image.stack_instances)
        frame.ret_dest = image.ret_dest
        frame.region_ckpts = {
            rid: list(records) for rid, records in image.region_ckpts.items()
        }
        frame.recovery_ptr = image.recovery_ptr
        interp.frames.append(frame)


@dataclasses.dataclass(frozen=True)
class ChunkRecord:
    """One closed chunk of the record log."""

    index: int
    start_event: int
    length: int
    digest: int


class ReplayDetector:
    """Re-executes chunks from their entry snapshots; divergence = detection.

    The replay interpreter is always a :class:`ReferenceInterpreter`
    with the metadata guard off and no hooks beyond the digest fold, so
    a check is a pure function of ``(module, snapshot, chunk_len)`` —
    identical in every worker process and under either main-run engine.
    """

    def __init__(self, module: Module, externals=None) -> None:
        self.module = module
        self.externals = dict(externals or {})
        self.checks = 0
        self.divergences = 0
        #: Dynamic instructions re-executed by all checks so far — the
        #: replay-side overhead reported by the head-to-head benchmark.
        self.replayed_events = 0

    def check(
        self, snapshot: ChunkSnapshot, chunk_len: int, expected_digest: int
    ) -> bool:
        """Replay one chunk; True when it diverged from the record."""
        self.checks += 1
        interp = ReferenceInterpreter(
            self.module,
            max_steps=snapshot.events + chunk_len + 1,
            externals=self.externals,
            memory_image=snapshot.memory,
        )
        digest = _FNV_OFFSET
        state = {"h": digest}

        def _fold(rinterp, event, _state=state):
            _state["h"] = digest_step(_state["h"], rinterp, event)

        interp.post_step = _fold
        _restore_frames(interp, snapshot)
        executed = 0
        diverged = False
        try:
            while executed < chunk_len:
                if interp._finished:
                    # The replay finished early: the recorded run
                    # executed steps a faithful re-execution does not.
                    diverged = True
                    break
                interp._step()
                executed += 1
        except (Trap, ExecutionLimit, MemoryError_):
            diverged = True
        self.replayed_events += executed
        if not diverged:
            diverged = state["h"] != expected_digest
        if diverged:
            self.divergences += 1
        return diverged


class ChunkRecorder:
    """Interpreter hook pair: digest execution in chunks, replay-check
    each chunk as it closes.

    Install :meth:`on_pre_step` and :meth:`on_post_step` on the main
    interpreter.  Without a ``detector`` the recorder is record-only
    (it just builds ``chunk_log``); with one, every closed chunk is
    replayed and a divergence is reported to ``supervisor.on_detection``
    — the same entry point the analytical detector's deadlines use, so
    the whole rollback/escalation ladder is shared.  ``injector``
    (when given) supplies the fault event the observed latency is
    measured from.
    """

    def __init__(
        self,
        chunk_size: int = REPLAY_CHUNK_DEFAULT,
        detector: Optional[ReplayDetector] = None,
        supervisor=None,
        injector=None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("replay chunk size must be >= 1")
        self.chunk_size = chunk_size
        self.detector = detector
        self.supervisor = supervisor
        self.injector = injector
        self.chunk_log: List[ChunkRecord] = []
        #: Divergent chunks as (end event index, observed latency).
        self.divergences: List[Tuple[int, Optional[int]]] = []
        #: The final partial chunk diverged (checked by ``finalize``,
        #: after the run ended — detected but beyond recovery).
        self.end_divergence = False
        #: Instrumentation cost charged for recording so far.
        self.record_cost = 0
        self._snapshot: Optional[ChunkSnapshot] = None
        self._digest = _FNV_OFFSET
        self._steps = 0
        self._stride = 0

    @property
    def first_latency(self) -> Optional[int]:
        """Observed detection latency of the first divergence."""
        return self.divergences[0][1] if self.divergences else None

    def _charge(self, interp, cost: int) -> None:
        interp.cost += cost
        interp.instrumentation_cost += cost
        self.record_cost += cost

    def on_pre_step(self, interp, event: StepEvent) -> None:
        if self._snapshot is None:
            # Taken at step entry, i.e. after any pending recovery
            # redirect from the previous step was applied — the replay
            # start state is exactly what this step will execute from.
            self._snapshot = take_snapshot(interp)
            self._charge(interp, SNAPSHOT_COST)

    def on_post_step(self, interp, event: StepEvent) -> None:
        self._digest = digest_step(self._digest, interp, event)
        self._steps += 1
        self._stride += 1
        if self._stride >= RECORD_STRIDE:
            self._stride = 0
            self._charge(interp, 1)
        if self._steps >= self.chunk_size or self._at_boundary(interp):
            self._close(interp, event.index, final=False)

    @staticmethod
    def _at_boundary(interp) -> bool:
        """True when the chunk must seal at the *current* step.

        Two cases.  A rollback redirect is pending: control jumps after
        this step, so the chunk ends here (it replays exactly; the next
        chunk snapshots the post-redirect state).  Or the *next*
        instruction is a region or frame boundary: sealing before it
        means a divergence in a region's last chunk is judged while
        that region's recovery pointer and undo log are still live —
        sealing after a ``clear_recovery_ptr`` (or after a ``ret``
        popped the owning frame) would turn every region-tail detection
        into an escape.
        """
        if interp._pending_redirect is not None:
            return True
        if not interp.frames:
            return False
        frame = interp.frames[-1]
        block = frame.func.blocks[frame.block]
        if frame.ip >= len(block.instructions):
            return False
        opcode = block.instructions[frame.ip].opcode
        return (
            opcode in REGION_BOUNDARY_OPCODES
            or opcode in FRAME_BOUNDARY_OPCODES
        )

    def resync(self) -> None:
        """Drop the chunk in progress (trap path: the supervisor redirected
        control outside a step, so the open chunk can never be replayed)."""
        self._snapshot = None
        self._digest = _FNV_OFFSET
        self._steps = 0

    def finalize(self, interp) -> None:
        """Close and check the final partial chunk after the run ended."""
        if interp.events:
            self._close(interp, interp.events - 1, final=True)

    def _close(self, interp, end_index: int, final: bool) -> None:
        snapshot, digest, steps = self._snapshot, self._digest, self._steps
        self._snapshot = None
        self._digest = _FNV_OFFSET
        self._steps = 0
        if snapshot is None or steps == 0:
            return
        self.chunk_log.append(
            ChunkRecord(len(self.chunk_log), snapshot.events, steps, digest)
        )
        if self.detector is None:
            return
        if not self.detector.check(snapshot, steps, digest):
            return
        fault_event = (
            self.injector.fault_event if self.injector is not None else None
        )
        latency = None
        if fault_event is not None and fault_event <= end_index:
            latency = end_index - fault_event
        self.divergences.append((end_index, latency))
        if final:
            self.end_divergence = True
        elif self.supervisor is not None:
            # Same rollback ladder as a model-detector deadline; may
            # raise EscalateTrial (escape/livelock) through the hook.
            self.supervisor.on_detection(interp, end_index)


def record_chunk_log(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    chunk_size: int = REPLAY_CHUNK_DEFAULT,
    externals=None,
    engine: Optional[str] = None,
    max_steps: int = 5_000_000,
    check: bool = False,
) -> Tuple[ExecResult, ChunkRecorder]:
    """Record (and with ``check=True`` replay-verify) one fault-free run.

    Returns ``(result, recorder)``.  This is the fuzz oracle's and the
    benchmark's entry point: ``recorder.chunk_log`` must be identical
    across repeated calls, and with ``check=True`` any entry in
    ``recorder.divergences`` is a replay-determinism bug, because no
    fault was injected.
    """
    detector = ReplayDetector(module, externals=externals) if check else None
    recorder = ChunkRecorder(chunk_size, detector=detector)
    interp = make_interpreter(
        module,
        engine=engine,
        max_steps=max_steps,
        pre_step=recorder.on_pre_step,
        post_step=recorder.on_post_step,
        externals=externals,
    )
    result = interp.run(function, args, output_objects=output_objects)
    recorder.finalize(interp)
    return result, recorder
