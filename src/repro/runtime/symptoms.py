"""Symptom-based fault detection (the ReStore / Shoestring lineage).

The paper assumes a low-cost detector with some latency distribution;
this module builds an actual one, so detection latency becomes a
*measured* quantity instead of an assumption:

* :class:`InvariantProfile` learns, from a training run, the value
  range each instruction site produces (a likely-invariant detector in
  the style of the paper's cited symptom-based work);
* :class:`SymptomMonitor` watches execution and reports the first site
  whose result leaves its learned range (widened by a slack factor to
  suppress borderline noise).  Hardware traps — the other classic
  symptom — are handled by the interpreter already;
* :func:`run_symptom_campaign` runs SFI end-to-end with the real
  detector: inject, watch for the symptom, roll back through Encore,
  and record the *observed* detection latency of every trial.

Because the detector is trained on the same input it guards, a clean
run raises no symptoms and every alarm during a campaign is
fault-induced.  A rollback that fails to silence the symptom (the fault
escaped its region) is retried a bounded number of times and then
declared unrecoverable — the watchdog role a real deployment needs.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    Interpreter,
    StepEvent,
    Trap,
    bitflip,
)
from repro.runtime.memory import Pointer

Site = Tuple[str, str, int]


@dataclasses.dataclass
class ValueRange:
    lo: float
    hi: float

    def widen(self, slack: float) -> "ValueRange":
        span = max(self.hi - self.lo, 1.0)
        return ValueRange(self.lo - slack * span, self.hi + slack * span)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


class InvariantProfile:
    """Learned per-site result ranges (likely invariants)."""

    def __init__(self, slack: float = 1.0) -> None:
        self.slack = slack
        self._ranges: Dict[Site, ValueRange] = {}
        self._widened: Dict[Site, ValueRange] = {}

    def observe(self, site: Site, value) -> None:
        if isinstance(value, Pointer) or isinstance(value, bool):
            return
        if not isinstance(value, (int, float)):
            return
        v = float(value)
        current = self._ranges.get(site)
        if current is None:
            self._ranges[site] = ValueRange(v, v)
        else:
            current.lo = min(current.lo, v)
            current.hi = max(current.hi, v)

    def finalize(self) -> None:
        self._widened = {
            site: rng.widen(self.slack) for site, rng in self._ranges.items()
        }

    def violates(self, site: Site, value) -> bool:
        if isinstance(value, (Pointer, bool)) or not isinstance(value, (int, float)):
            return False
        rng = self._widened.get(site)
        if rng is None:
            return False  # site never trained: no invariant to violate
        return not rng.contains(float(value))

    def __len__(self) -> int:
        return len(self._ranges)


def train_invariants(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    slack: float = 1.0,
    max_steps: int = 5_000_000,
    externals=None,
) -> InvariantProfile:
    """Learn value-range invariants from one training execution."""
    profile = InvariantProfile(slack)

    def hook(interp: Interpreter, event: StepEvent) -> None:
        defs = event.inst.defs()
        if not defs or event.inst.is_instrumentation:
            return
        site = (event.func, event.block, event.inst_index)
        frame = interp.current_frame
        profile.observe(site, frame.regs.get(defs[0]))

    Interpreter(
        module, max_steps=max_steps, post_step=hook, externals=externals
    ).run(function, args)
    profile.finalize()
    return profile


@dataclasses.dataclass
class SymptomTrial:
    outcome: str  # masked | recovered | detected_unrecoverable | sdc
    fault_event: int
    detection_latency: Optional[int]  # observed, in dynamic instructions
    recoveries: int
    trapped: bool = False


@dataclasses.dataclass
class SymptomCampaignResult:
    trials: List[SymptomTrial]

    def fraction(self, outcome: str) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.outcome == outcome) / len(self.trials)

    @property
    def covered_fraction(self) -> float:
        return self.fraction("masked") + self.fraction("recovered")

    def observed_latencies(self) -> List[int]:
        return [
            t.detection_latency
            for t in self.trials
            if t.detection_latency is not None
        ]

    @property
    def mean_latency(self) -> float:
        latencies = self.observed_latencies()
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def detection_rate(self) -> float:
        """Fraction of non-masked faults the symptom detector noticed."""
        active = [t for t in self.trials if t.outcome != "masked"]
        if not active:
            return 0.0
        noticed = [t for t in active if t.detection_latency is not None or t.trapped]
        return len(noticed) / len(active)


class _SymptomDriver:
    """Hook: inject one fault, then watch invariants for the symptom."""

    def __init__(
        self, invariants: InvariantProfile, site: int, bit: int, max_recoveries: int
    ) -> None:
        self.invariants = invariants
        self.site = site
        self.bit = bit
        self.max_recoveries = max_recoveries
        self.fault_event: Optional[int] = None
        self.first_detection: Optional[int] = None
        self.recoveries = 0

    def __call__(self, interp: Interpreter, event: StepEvent) -> None:
        if self.fault_event is None:
            if event.index >= self.site and event.inst.defs():
                dest = event.inst.defs()[0]
                frame = interp.current_frame
                frame.regs[dest] = bitflip(frame.regs.get(dest, 0), self.bit)
                self.fault_event = event.index
            return
        defs = event.inst.defs()
        if not defs or event.inst.is_instrumentation:
            return
        vsite = (event.func, event.block, event.inst_index)
        value = interp.current_frame.regs.get(defs[0])
        if self.invariants.violates(vsite, value):
            if self.first_detection is None:
                self.first_detection = event.index
            if self.recoveries >= self.max_recoveries:
                raise _GiveUp()
            self.recoveries += 1
            if not interp.trigger_recovery():
                raise _GiveUp()


class _GiveUp(Exception):
    """Symptom persists after bounded recoveries: restart required."""


def run_symptom_trial(
    module: Module,
    invariants: InvariantProfile,
    golden: ExecResult,
    site: int,
    bit: int,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_recoveries: int = 8,
    externals=None,
) -> SymptomTrial:
    driver = _SymptomDriver(invariants, site, bit, max_recoveries)
    interp = Interpreter(
        module,
        max_steps=max(golden.events * 6, 10_000),
        post_step=driver,
        externals=externals,
    )
    trapped = False
    result: Optional[ExecResult] = None
    try:
        result = interp.run(function, args, output_objects=output_objects)
    except Trap as trap:
        trapped = True
        if driver.first_detection is None and driver.fault_event is not None:
            driver.first_detection = trap.event_index
        driver.recoveries += 1
        if interp.trigger_recovery(immediate=True):
            try:
                result = interp.resume(output_objects=output_objects)
            except (Trap, ExecutionLimit, _GiveUp):
                result = None
    except (_GiveUp, ExecutionLimit):
        result = None

    fault_event = driver.fault_event if driver.fault_event is not None else -1
    latency = (
        driver.first_detection - driver.fault_event
        if driver.first_detection is not None and driver.fault_event is not None
        else None
    )
    if result is None:
        return SymptomTrial(
            "detected_unrecoverable", fault_event, latency, driver.recoveries,
            trapped=trapped,
        )
    correct = result.output == golden.output and result.value == golden.value
    if correct:
        outcome = "recovered" if driver.recoveries else "masked"
    else:
        outcome = "sdc"
    return SymptomTrial(outcome, fault_event, latency, driver.recoveries, trapped)


def run_symptom_campaign(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    trials: int = 100,
    seed: int = 0,
    slack: float = 1.0,
    invariants: Optional[InvariantProfile] = None,
    externals=None,
) -> SymptomCampaignResult:
    """SFI with the trained invariant detector doing the detecting."""
    if invariants is None:
        invariants = train_invariants(
            module, function, args, slack=slack, externals=externals
        )
    golden = Interpreter(module, externals=externals).run(
        function, args, output_objects=output_objects
    )
    rng = random.Random(seed)
    results: List[SymptomTrial] = []
    for _ in range(trials):
        site = rng.randrange(max(golden.events, 1))
        bit = rng.randrange(4, 32)  # upper bits: architecturally visible
        results.append(
            run_symptom_trial(
                module, invariants, golden, site, bit,
                function=function, args=args, output_objects=output_objects,
                externals=externals,
            )
        )
    return SymptomCampaignResult(results)
